"""Scheduler semantics: determinism, discrete-event timing, failures."""

from __future__ import annotations

import pytest

from repro.sim import (
    DEFAULT_MAX_STEPS,
    Program,
    Simulator,
    run_program,
)


def _linear_program(body):
    return Program(name="p", methods={"Main": body}, main="Main")


class TestDeterminism:
    def test_same_seed_same_trace(self, racy_program):
        a = run_program(racy_program, 123).trace
        b = run_program(racy_program, 123).trace
        sig_a = [(m.key, m.start_time, m.end_time, m.return_value)
                 for m in a.method_executions()]
        sig_b = [(m.key, m.start_time, m.end_time, m.return_value)
                 for m in b.method_executions()]
        assert sig_a == sig_b
        assert a.failed == b.failed

    def test_different_seeds_vary_timing(self, racy_program):
        timings = set()
        for seed in range(20):
            trace = run_program(racy_program, seed).trace
            timings.add(
                tuple(m.start_time for m in trace.method_executions())
            )
        assert len(timings) > 1, "seeds should produce varied interleavings"

    def test_intermittent_failure(self, racy_program):
        outcomes = [run_program(racy_program, s).failed for s in range(150)]
        assert any(outcomes), "some interleavings must fail"
        assert not all(outcomes), "some interleavings must succeed"


class TestDiscreteEventTiming:
    def test_work_occupies_virtual_time(self):
        def main(ctx):
            start = ctx.now()
            yield from ctx.work(100)
            assert ctx.now() - start >= 100
            return "ok"

        result = run_program(_linear_program(main), 0)
        assert not result.failed

    def test_long_work_lets_other_threads_run(self):
        """A thread in work(200) must not block others (DES semantics)."""

        def main(ctx):
            yield from ctx.spawn("quick", "Quick")
            yield from ctx.work(200)
            finished_at = ctx.peek("quick_done")
            assert finished_at is not None, "quick thread starved"
            assert finished_at < ctx.now()
            yield from ctx.join("quick")
            return "ok"

        def quick(ctx):
            yield from ctx.work(5)
            ctx.poke("quick_done", ctx.now())
            return "quick"

        program = Program(
            name="des", methods={"Main": main, "Quick": quick}, main="Main"
        )
        for seed in range(10):
            assert not run_program(program, seed).failed

    def test_durations_control_ordering(self):
        """A 10-tick task always completes before a 300-tick one."""

        def main(ctx):
            yield from ctx.spawn("slowpoke", "Slow")
            yield from ctx.work(10)
            assert ctx.peek("slow_done") is None
            yield from ctx.join("slowpoke")
            assert ctx.peek("slow_done") is not None
            return "ok"

        def slow(ctx):
            yield from ctx.work(300)
            ctx.poke("slow_done", True)
            return "slow"

        program = Program(
            name="order", methods={"Main": main, "Slow": slow}, main="Main"
        )
        for seed in range(10):
            assert not run_program(program, seed).failed

    def test_event_timestamps_strictly_increase_per_thread(self, racy_program):
        trace = run_program(racy_program, 5).trace
        for m in trace.method_executions():
            assert m.end_time > m.start_time
            times = [a.time for a in m.accesses]
            assert times == sorted(times)


class TestFailureModes:
    def test_deadlock_detected(self):
        def main(ctx):
            yield from ctx.spawn("other", "Other")
            yield from ctx.acquire("a")
            yield from ctx.work(10)
            yield from ctx.acquire("b")  # other holds b, wants a
            return "unreachable"

        def other(ctx):
            yield from ctx.acquire("b")
            yield from ctx.work(10)
            yield from ctx.acquire("a")
            return "unreachable"

        program = Program(
            name="dl", methods={"Main": main, "Other": other}, main="Main"
        )
        modes = {run_program(program, s).failure.mode for s in range(5)}
        assert modes == {"deadlock"}

    def test_hang_detected_via_step_budget(self):
        def main(ctx):
            while True:
                yield from ctx.work(1)

        result = Simulator(_linear_program(main), max_steps=500).run(0)
        assert result.failed
        assert result.failure.mode == "hang"

    def test_worker_crash_fails_the_execution(self):
        def main(ctx):
            yield from ctx.spawn("w", "Worker")
            yield from ctx.join("w")
            return "ok"

        def worker(ctx):
            yield from ctx.work(2)
            ctx.throw("Boom", "worker died")

        program = Program(
            name="crash", methods={"Main": main, "Worker": worker}, main="Main"
        )
        result = run_program(program, 0)
        assert result.failed
        assert result.failure.mode == "crash"
        assert result.failure.exception == "Boom"
        assert result.failure.thread == "w"
        assert result.failure.method == "Worker"

    def test_crash_releases_locks(self):
        def main(ctx):
            yield from ctx.spawn("w", "Worker")
            yield from ctx.work(20)
            yield from ctx.acquire("shared")  # must not deadlock
            yield from ctx.release("shared")
            yield from ctx.join("w")
            return "ok"

        def worker(ctx):
            yield from ctx.acquire("shared")
            yield from ctx.work(2)
            ctx.throw("Boom")

        program = Program(
            name="lockcrash", methods={"Main": main, "Worker": worker}, main="Main"
        )
        result = run_program(program, 0)
        assert result.failure.mode == "crash"  # not a deadlock

    def test_failure_signature_stable_across_seeds(self, racy_program):
        signatures = {
            run_program(racy_program, s).failure.signature
            for s in range(200)
            if run_program(racy_program, s).failed
        }
        assert signatures == {"crash/TornRead/Reader"}


class TestThreadLifecycle:
    def test_join_waits_for_completion(self):
        def main(ctx):
            yield from ctx.spawn("w", "Worker")
            yield from ctx.join("w")
            assert ctx.peek("done") is True
            return "ok"

        def worker(ctx):
            yield from ctx.work(50)
            ctx.poke("done", True)
            return None

        program = Program(
            name="join", methods={"Main": main, "Worker": worker}, main="Main"
        )
        for seed in range(10):
            assert not run_program(program, seed).failed

    def test_duplicate_thread_name_rejected(self):
        def main(ctx):
            yield from ctx.spawn("w", "Worker")
            yield from ctx.spawn("w", "Worker")

        def worker(ctx):
            yield from ctx.work(1)

        program = Program(
            name="dup", methods={"Main": main, "Worker": worker}, main="Main"
        )
        with pytest.raises(ValueError, match="duplicate thread name"):
            run_program(program, 0)

    def test_execution_waits_for_all_threads(self):
        def main(ctx):
            yield from ctx.spawn("bg", "Background")
            return "main-done"  # exits without joining

        def background(ctx):
            yield from ctx.work(100)
            ctx.poke("bg_done", True)
            return None

        program = Program(
            name="bg", methods={"Main": main, "Background": background}, main="Main"
        )
        result = run_program(program, 0)
        assert not result.failed
        bg = next(result.trace.executions_of("Background"))
        assert bg.end_time > 100

    def test_default_step_budget_is_generous(self):
        assert DEFAULT_MAX_STEPS >= 10_000
