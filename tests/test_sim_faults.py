"""Fault injection: every intervention type changes execution as specified."""

from __future__ import annotations

from repro.sim import (
    CatchException,
    DelayBefore,
    DelayReturn,
    ForceOrder,
    ForceReturn,
    InterventionSet,
    MethodSelector,
    Program,
    SerializeMethods,
    run_program,
)


def _program():
    def main(ctx):
        yield from ctx.spawn("w", "Worker")
        yield from ctx.work(5)
        value = yield from ctx.call("Compute", 3)
        yield from ctx.join("w")
        return value

    def compute(ctx, x):
        yield from ctx.work(4)
        return x * 10

    def worker(ctx):
        yield from ctx.work(2)
        yield from ctx.call("Risky")
        return "worker-ok"

    def risky(ctx):
        yield from ctx.work(1)
        if ctx.peek("explode"):
            ctx.throw("Explosion")
        return "safe"

    return Program(
        name="faults",
        methods={"Main": main, "Compute": compute, "Worker": worker, "Risky": risky},
        main="Main",
        shared={},
    )


def _first(trace, method):
    return next(trace.executions_of(method))


class TestForceReturn:
    def test_override_keeps_body(self):
        iv = ForceReturn(MethodSelector("Compute"), value=999, skip_body=False)
        trace = run_program(_program(), 0, (iv,)).trace
        compute = _first(trace, "Compute")
        assert compute.return_value == 999
        assert not compute.body_skipped
        assert compute.duration >= 4

    def test_skip_body_is_fast_and_flagged(self):
        baseline = _first(run_program(_program(), 0).trace, "Compute").duration
        iv = ForceReturn(MethodSelector("Compute"), value=7, skip_body=True)
        trace = run_program(_program(), 0, (iv,)).trace
        compute = _first(trace, "Compute")
        assert compute.return_value == 7
        assert compute.body_skipped
        assert compute.duration < baseline

    def test_caller_sees_forced_value(self):
        iv = ForceReturn(MethodSelector("Compute"), value=5, skip_body=True)
        trace = run_program(_program(), 0, (iv,)).trace
        assert _first(trace, "Main").return_value == 5


class TestCatchException:
    def test_swallows_and_returns_fallback(self):
        program = _program()
        program.shared["explode"] = True  # type: ignore[index]
        baseline = run_program(program, 0)
        assert baseline.failed
        iv = CatchException(MethodSelector("Risky"), fallback="fallback")
        repaired = run_program(program, 0, (iv,))
        assert not repaired.failed
        trace = repaired.trace
        assert _first(trace, "Risky").exception is None
        assert _first(trace, "Risky").return_value == "fallback"
        assert _first(trace, "Worker").return_value == "worker-ok"

    def test_noop_when_no_exception(self):
        iv = CatchException(MethodSelector("Risky"), fallback="fallback")
        trace = run_program(_program(), 0, (iv,)).trace
        assert _first(trace, "Risky").return_value == "safe"


class TestDelays:
    def test_delay_return_stretches_duration(self):
        baseline = _first(run_program(_program(), 0).trace, "Compute").duration
        iv = DelayReturn(MethodSelector("Compute"), ticks=50)
        trace = run_program(_program(), 0, (iv,)).trace
        assert _first(trace, "Compute").duration >= baseline + 50

    def test_delay_before_shifts_start(self):
        baseline = _first(run_program(_program(), 0).trace, "Compute").start_time
        iv = DelayBefore(MethodSelector("Compute"), ticks=80)
        trace = run_program(_program(), 0, (iv,)).trace
        assert _first(trace, "Compute").start_time >= baseline + 80


class TestForceOrder:
    def test_blocks_until_first_completes(self):
        iv = ForceOrder(
            first=MethodSelector("Compute"), then=MethodSelector("Risky")
        )
        for seed in range(10):
            trace = run_program(_program(), seed, (iv,)).trace
            compute = _first(trace, "Compute")
            risky = _first(trace, "Risky")
            assert risky.start_time >= compute.end_time


class TestSerializeMethods:
    def test_serialization_removes_overlap(self, racy_program):
        iv = SerializeMethods(
            selectors=(MethodSelector("Updater"), MethodSelector("Reader")),
        )
        for seed in range(60):
            trace = run_program(racy_program, seed, (iv,)).trace
            assert not trace.failed
            updater = _first(trace, "Updater")
            reader = _first(trace, "Reader")
            assert not updater.overlaps(reader)

    def test_without_lock_failures_exist(self, racy_program):
        assert any(run_program(racy_program, s).failed for s in range(60))


class TestSelectors:
    def test_occurrence_pinning(self):
        def main(ctx):
            a = yield from ctx.call("Step")
            b = yield from ctx.call("Step")
            return (a, b)

        def step(ctx):
            yield from ctx.work(1)
            return "real"

        program = Program(
            name="occ", methods={"Main": main, "Step": step}, main="Main"
        )
        iv = ForceReturn(
            MethodSelector("Step", occurrence=1), value="forced", skip_body=True
        )
        trace = run_program(program, 0, (iv,)).trace
        assert _first(trace, "Main").return_value == ("real", "forced")

    def test_thread_pinning(self):
        selector = MethodSelector("M", thread="t1")
        assert selector.matches("M", "t1", 3)
        assert not selector.matches("M", "t2", 3)
        assert not selector.matches("N", "t1", 3)

    def test_intervention_set_plans(self):
        selector = MethodSelector("M")
        ivs = InterventionSet(
            (
                DelayBefore(selector, ticks=3),
                DelayReturn(selector, ticks=4),
                SerializeMethods(selectors=(selector,), lock_name="Lk"),
                CatchException(selector, fallback=0),
            )
        )
        entry = ivs.entry_plan("M", "main", 0)
        exit_ = ivs.exit_plan("M", "main", 0)
        assert entry.delays == 3 and entry.locks == ["Lk"]
        assert exit_.delays == 4 and exit_.locks == ["Lk"]
        assert exit_.catch is not None
        assert not ivs.entry_plan("Other", "main", 0).locks
