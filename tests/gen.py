"""Seeded random-trace generator for the columnar parity harness.

Every function here is a pure function of the :class:`random.Random`
instance passed in, so a test that seeds the generator reproduces the
same corpus on every run and on every machine.  The generator aims for
breadth, not realism: unicode method and thread names, empty traces,
nested/NaN return values, duplicate method keys, self-referential
parents, and every failure shape the trace schema can express — the
corners a columnar encoder is most likely to get wrong.
"""

from __future__ import annotations

import random

from repro.sim.serialize import ImportedTrace, trace_from_dict

#: Deliberately hostile name pools: ASCII, combining marks, CJK, RTL,
#: embedded separators, and strings that look like numbers or JSON.
METHODS = [
    "poll",
    "commit",
    "räce·check",
    "提交偏移",
    "сброс",
    "a/b:c.d",
    'quo"ted',
    "123",
    "null",
    "",
]
THREADS = ["T0", "T1", "T2", "λ-worker", "поток-4"]
EXCEPTIONS = [None, "Timeout", "KafkaException", "Ошибка", "e:—"]
OBJECTS = ["offsets", "журнал", "lock□map", "o1", "o2"]
LOCKS = ["L0", "L1", "замок", "锁"]
FAILURE_MODES = ["assertion", "exception", "超时", "wrong-output"]

#: Return-value palette covering every JSON shape plus the awkward
#: floats (NaN compares unequal to itself; -0.0 canonicalizes oddly).
RETURN_VALUES = [
    None,
    True,
    False,
    0,
    -7,
    2**40,
    1.5,
    -0.0,
    float("nan"),
    "",
    "ok",
    "真",
    [1, [2, None], "x"],
    {"k": [True, 3.25], "и": "v"},
]


def make_payload(rng: random.Random, seed: int, failed: bool) -> dict:
    """One random trace payload in the ``trace_to_dict`` schema."""
    n_calls = rng.choice([0, 1, 2, rng.randrange(3, 12)])
    calls = []
    max_time = 1
    for call_id in range(n_calls):
        method = rng.choice(METHODS)
        thread = rng.choice(THREADS)
        # Duplicate (method, thread) pairs are frequent on purpose so
        # occurrence indexing and key-run grouping get exercised.
        occurrence = sum(
            1
            for c in calls
            if c["method"] == method and c["thread"] == thread
        )
        start = rng.randrange(0, 500)
        end = start + rng.randrange(0, 200)
        max_time = max(max_time, end)
        accesses = [
            {
                "obj": rng.choice(OBJECTS),
                "type": rng.choice(["R", "W"]),
                "time": rng.randrange(start, end + 1),
                "lamport": rng.randrange(0, 1000),
                "locks": sorted(
                    rng.sample(LOCKS, rng.randrange(0, len(LOCKS)))
                ),
            }
            for _ in range(rng.choice([0, 0, 1, 2, 3]))
        ]
        calls.append(
            {
                "call_id": call_id,
                "method": method,
                "thread": thread,
                "occurrence": occurrence,
                "start_time": start,
                "end_time": end,
                "start_lamport": rng.randrange(0, 1000),
                "end_lamport": rng.randrange(0, 1000),
                "parent_call_id": (
                    rng.randrange(0, call_id)
                    if call_id and rng.random() < 0.4
                    else None
                ),
                "return_value": rng.choice(RETURN_VALUES),
                "exception": rng.choice(EXCEPTIONS),
                "body_skipped": rng.random() < 0.15,
                "accesses": accesses,
            }
        )
    failure = None
    if failed:
        failure = {
            "mode": rng.choice(FAILURE_MODES),
            "exception": rng.choice(EXCEPTIONS),
            "method": rng.choice(METHODS + [None]),
            "thread": rng.choice(THREADS + [None]),
            "time": rng.randrange(0, max_time + 1),
        }
    return {
        "schema": 1,
        "program": "gen",
        "seed": seed,
        "end_time": max_time + rng.randrange(0, 10),
        "failure": failure,
        "calls": calls,
    }


def make_corpus(
    seed: int, n_pass: int = 6, n_fail: int = 6
) -> list[dict]:
    """A seeded list of payloads with both labels, dedup-safe seeds."""
    rng = random.Random(seed)
    payloads = []
    for i in range(n_pass + n_fail):
        payloads.append(
            make_payload(rng, seed=seed * 1000 + i, failed=i >= n_pass)
        )
    return payloads


def make_trace(rng: random.Random, seed: int, failed: bool) -> ImportedTrace:
    """Decoded form of :func:`make_payload` (what ``store.load`` returns)."""
    return trace_from_dict(make_payload(rng, seed, failed))
