"""The single-pass evaluation kernel: equivalence pins at every layer.

Property-style assertions that the fast paths equal the reference
walks, byte for byte: indexed ``lookup`` ≡ linear scan, kernel
``evaluate_all`` ≡ per-predicate evaluation (same observations, same
order), propose/calibrate discovery ≡ serial single-phase discovery
(all registered workloads, 1 vs 8 jobs), popcount SD ≡ log rescans,
and whole-session ``SessionReport.to_dict()`` byte-identity across
engine job counts.
"""

from __future__ import annotations

import json

import pytest

from repro.core.evalkernel import (
    BitsetCounter,
    CorpusSummary,
    DistinctCap,
    ordered_cross_thread_pairs,
    popcount_split,
    summarize_corpus,
)
from repro.core.extraction import (
    TWO_PHASE_EXTRACTORS,
    PredicateSuite,
    default_extractors,
)
from repro.core.statistical import (
    IncrementalDebugger,
    PredicateLog,
    StatisticalDebugger,
)
from repro.exec import ExecutionEngine, make_backend
from repro.harness.runner import collect
from repro.harness.session import AIDSession, SessionConfig
from repro.sim.serialize import trace_fingerprint, trace_from_dict, trace_to_dict
from repro.sim.tracing import ExecutionTrace, MethodKey
from repro.workloads.common import REGISTRY

from conftest import racy_counter_program


@pytest.fixture(scope="module")
def corpus(racy_program):
    return collect(racy_program, n_success=20, n_fail=20)


@pytest.fixture(scope="module")
def suite(racy_program, corpus):
    return PredicateSuite.discover(
        corpus.successes, corpus.failures, program=racy_program
    )


@pytest.fixture(scope="module")
def thread8():
    engine = ExecutionEngine(backend=make_backend("thread", 8))
    yield engine
    engine.close()


# ---------------------------------------------------------------------------
# The trace index
# ---------------------------------------------------------------------------


class TestTraceIndex:
    def test_indexed_lookup_equals_linear_scan(self, corpus):
        for trace in corpus.successes[:5] + corpus.failures[:5]:
            completed = trace._completed
            for m in completed:
                # reference: first match of a linear completion-order scan
                linear = next(x for x in completed if x.key == m.key)
                assert trace.lookup(m.key) is linear
            assert trace.lookup(MethodKey("NoSuch", "t", 0)) is None

    def test_method_executions_is_start_time_sorted_copy(self, corpus):
        trace = corpus.successes[0]
        execs = trace.method_executions()
        assert execs == sorted(
            trace._completed, key=lambda m: (m.start_time, m.call_id)
        )
        execs.clear()  # a copy: mutating it must not corrupt the index
        assert trace.method_executions()

    def test_executions_of_uses_the_index(self, corpus):
        trace = corpus.successes[0]
        ordered = trace.method_executions()
        for method in {m.method for m in ordered}:
            assert list(trace.executions_of(method)) == [
                m for m in ordered if m.method == method
            ]
        assert list(trace.executions_of("NoSuch")) == []

    def test_accesses_follow_start_time_order(self, corpus):
        trace = corpus.successes[0]
        flat = [a for m in trace.method_executions() for a in m.accesses]
        assert list(trace.accesses()) == flat

    def test_record_after_read_invalidates_the_index(self):
        """Record → read → record → read must see the new call."""
        trace = ExecutionTrace("inv", seed=0)
        first = trace.begin_call("A", "t0", time=0, lamport=0, parent_call_id=None)
        trace.end_call(first, time=5, lamport=1, return_value=1, exception=None)
        key_a = MethodKey("A", "t0", 0)
        assert trace.lookup(key_a) is not None  # builds the index
        assert len(trace.method_executions()) == 1
        second = trace.begin_call("B", "t1", time=2, lamport=2, parent_call_id=None)
        trace.end_call(second, time=3, lamport=3, return_value=2, exception=None)
        key_b = MethodKey("B", "t1", 0)
        assert trace.lookup(key_b) is not None  # post-write read sees B
        assert [m.method for m in trace.method_executions()] == ["A", "B"]
        assert list(trace.executions_by_key()) == [key_a, key_b]


# ---------------------------------------------------------------------------
# Kernel evaluation ≡ per-predicate evaluation
# ---------------------------------------------------------------------------


class TestKernelEvaluation:
    def _reference(self, suite, trace):
        observations = {}
        for pid, pred in suite.defs.items():
            obs = pred.evaluate(trace)
            if obs is not None:
                observations[pid] = obs
        return observations

    def test_batch_equals_per_predicate(self, suite, corpus):
        logs = suite.evaluate_all(corpus.successes + corpus.failures)
        traces = corpus.successes + corpus.failures
        assert len(logs) == len(traces)
        for trace, log in zip(traces, logs):
            reference = self._reference(suite, trace)
            assert dict(log.observations) == reference
            # same order, not just same content
            assert list(log.observations) == list(reference)
            assert log.failed == trace.failed
            assert log.seed == trace.seed

    def test_kernel_respects_pid_subset(self, suite, corpus):
        trace = corpus.failures[0]
        full = suite.kernel().observations(trace)
        some = frozenset(list(full)[::2])
        sub = suite.kernel().observations(trace, only=some)
        assert sub == {pid: obs for pid, obs in full.items() if pid in some}

    def test_kernel_rebuilds_when_defs_change(self, suite):
        kernel = suite.kernel()
        assert suite.kernel() is kernel  # cached for the frozen suite
        restricted = suite.restrict(suite.pids()[:3])
        assert restricted.kernel() is not kernel
        assert restricted.kernel().pids == tuple(restricted.defs)

    def test_imported_traces_evaluate_identically(self, suite, corpus):
        for trace in corpus.successes[:3] + corpus.failures[:3]:
            imported = trace_from_dict(
                trace_to_dict(trace), fingerprint=trace_fingerprint(trace)
            )
            assert suite.kernel().observations(imported) == self._reference(
                suite, trace
            )


# ---------------------------------------------------------------------------
# Two-phase discovery ≡ serial discovery
# ---------------------------------------------------------------------------


class TestTwoPhaseDiscovery:
    def test_default_catalogue_is_two_phase(self):
        assert {type(e) for e in default_extractors()} <= set(
            TWO_PHASE_EXTRACTORS
        )

    @pytest.mark.parametrize("name", sorted(REGISTRY.names()))
    def test_propose_calibrate_equals_serial(self, name, thread8):
        workload = REGISTRY.build(name)
        corpus = collect(workload.program, n_success=16, n_fail=16)
        corpus = corpus.restrict_failures(corpus.dominant_failure_signature())
        serial = PredicateSuite.discover(
            corpus.successes,
            corpus.failures,
            program=workload.program,
            two_phase=False,
        )
        staged = PredicateSuite.discover(
            corpus.successes, corpus.failures, program=workload.program
        )
        fanned = PredicateSuite.discover(
            corpus.successes,
            corpus.failures,
            program=workload.program,
            engine=thread8,
        )
        reference = json.dumps(serial.to_dict(), sort_keys=True)
        assert json.dumps(staged.to_dict(), sort_keys=True) == reference
        assert json.dumps(fanned.to_dict(), sort_keys=True) == reference
        assert serial.fingerprint == staged.fingerprint == fanned.fingerprint

    def test_summaries_merge_identically_across_chunkings(
        self, corpus, thread8
    ):
        serial = summarize_corpus(corpus.successes, corpus.failures)
        fanned = summarize_corpus(
            corpus.successes, corpus.failures, engine=thread8
        )
        assert serial.n_traces == fanned.n_traces
        assert serial.n_failures == fanned.n_failures
        assert serial.failing == fanned.failing
        assert serial.ordered == fanned.ordered
        assert serial.races == fanned.races
        assert serial.signatures == fanned.signatures
        assert serial.presence == fanned.presence
        assert serial.latest_end == fanned.latest_end
        assert serial.earliest_start == fanned.earliest_start
        assert serial.fail_windows == fanned.fail_windows

    def test_restricted_stack_scopes_the_summary(self, corpus):
        from repro.core.extraction import FailureExtractor

        serial = PredicateSuite.discover(
            corpus.successes,
            corpus.failures,
            extractors=[FailureExtractor()],
            two_phase=False,
        )
        staged = PredicateSuite.discover(
            corpus.successes, corpus.failures, extractors=[FailureExtractor()]
        )
        assert staged.fingerprint == serial.fingerprint
        assert staged.pids() == serial.pids()
        # a signature-only stack must not pay for races/order/stats
        scoped = summarize_corpus(
            corpus.successes,
            corpus.failures,
            need_stats=False,
            need_order=False,
            need_races=False,
        )
        assert scoped.signatures
        assert not scoped.races
        assert scoped.ordered is None
        assert not scoped.succ_stats and not scoped.fail_stats
        assert not scoped.fail_windows

    def test_ordered_pairs_sweep_equals_all_pairs_walk(self, corpus):
        for trace in corpus.successes[:5]:
            execs = {m.key: m for m in trace.method_executions()}
            reference = set()
            for first in execs:
                for second in execs:
                    if first == second:
                        continue
                    mf, ms = execs[first], execs[second]
                    if mf.thread == ms.thread:
                        continue
                    if mf.end_time <= ms.start_time:
                        reference.add((first, second))
            assert (
                ordered_cross_thread_pairs(trace.method_executions())
                == reference
            )


# ---------------------------------------------------------------------------
# Popcount SD ≡ log rescans
# ---------------------------------------------------------------------------


def _rescan_stats(logs):
    """The pre-kernel StatisticalDebugger.stats(): a full log rescan."""
    n_failed = sum(1 for log in logs if log.failed)
    n_success = len(logs) - n_failed
    counts: dict[str, list[int]] = {}
    for log in logs:
        idx = 0 if log.failed else 1
        for pid in log.observations:
            counts.setdefault(pid, [0, 0])[idx] += 1
    return {
        pid: (in_failed, in_success, n_failed, n_success)
        for pid, (in_failed, in_success) in counts.items()
    }


class TestPopcountCounting:
    def test_popcount_split(self):
        assert popcount_split(0b1011, 0b0011) == (2, 1)
        assert popcount_split(0, 0b1111) == (0, 0)

    def test_bitset_counter_matches_manual_counts(self):
        counter = BitsetCounter()
        counter.add_column(["a", "b"], failed=True)
        counter.add_column(["b"], failed=False)
        counter.add_column(["a"], failed=True)
        assert (counter.n_failed, counter.n_success) == (2, 1)
        assert counter.counts("a") == (2, 0)
        assert counter.counts("b") == (1, 1)
        assert counter.counts("missing") == (0, 0)

    def test_debugger_stats_equal_rescan_reference(self, suite, corpus):
        logs = suite.evaluate_all(corpus.successes + corpus.failures)
        debugger = StatisticalDebugger(logs=list(logs))
        reference = _rescan_stats(logs)
        stats = debugger.stats()
        assert set(stats) == set(reference)
        assert list(stats) == sorted(reference)  # sorted-pid order kept
        for pid, s in stats.items():
            assert (
                s.true_in_failed,
                s.true_in_success,
                s.n_failed,
                s.n_success,
            ) == reference[pid]

    def test_debugger_syncs_appends_and_list_swaps(self):
        from repro.core.predicates import Observation

        a = PredicateLog(observations={"p": Observation(0, 1)}, failed=True)
        b = PredicateLog(observations={}, failed=False)
        debugger = StatisticalDebugger()
        assert debugger.stats() == {}
        debugger.add(a)
        assert debugger.observed_in_failed("p") == 1
        debugger.logs.append(b)  # external append, then re-read
        assert (debugger.n_failed, debugger.n_success) == (1, 1)
        debugger.logs = [b]  # wholesale replacement resets the counter
        assert (debugger.n_failed, debugger.n_success) == (0, 1)
        assert debugger.observed_in_failed("p") == 0

    def test_matrix_sd_counters_equal_incremental_adds(self, suite, corpus):
        from repro.corpus.matrix import EvalMatrix

        matrix = EvalMatrix()
        imported = [
            trace_from_dict(
                trace_to_dict(t), fingerprint=trace_fingerprint(t)
            )
            for t in corpus.successes[:8] + corpus.failures[:8]
        ]
        reference = IncrementalDebugger()
        for trace in imported:
            reference.add(matrix.log_for(suite, trace))
        derived = matrix.sd_counters(suite, [t.fingerprint for t in imported])
        assert derived.n_failed == reference.n_failed
        assert derived.n_success == reference.n_success
        assert derived.counts == reference.counts

    def test_distinct_cap_merge_is_order_independent(self):
        streams = (["x"], ["x", "x"], ["x", "y"], [], [None])
        for left in streams:
            for right in streams:
                one = DistinctCap()
                for v in left + right:
                    one.add(v)
                a, b = DistinctCap(), DistinctCap()
                for v in left:
                    a.add(v)
                for v in right:
                    b.add(v)
                a.merge(b)
                assert (a.seen, a.multi) == (one.seen, one.multi)
                if a.seen and not a.multi:
                    assert a.value == one.value

    def test_corpus_summary_merge_equals_single_fold(self, corpus):
        whole = CorpusSummary()
        for t in corpus.successes:
            whole.absorb_trace(t, failed=False)
        for t in corpus.failures:
            whole.absorb_trace(t, failed=True)
        parts = [CorpusSummary(), CorpusSummary(), CorpusSummary()]
        items = [(t, False) for t in corpus.successes] + [
            (t, True) for t in corpus.failures
        ]
        for i, (t, failed) in enumerate(items):
            parts[i % 3].absorb_trace(t, failed)
        merged = parts[0].merge(parts[1]).merge(parts[2])
        assert merged.n_traces == whole.n_traces
        assert merged.failing == whole.failing
        assert merged.ordered == whole.ordered
        assert merged.presence == whole.presence
        assert merged.races == whole.races


# ---------------------------------------------------------------------------
# Whole-session byte-identity across job counts
# ---------------------------------------------------------------------------


class TestSessionByteIdentity:
    def _report(self, engine):
        program = racy_counter_program()
        session = AIDSession(
            program,
            SessionConfig(
                n_success=20, n_fail=20, repeats=10, engine=engine
            ),
        )
        return session.run()

    def test_report_identical_serial_vs_eight_jobs(self, thread8):
        serial = self._report(None)
        fanned = self._report(thread8)
        assert json.dumps(serial.to_dict(), sort_keys=True) == json.dumps(
            fanned.to_dict(), sort_keys=True
        )
        assert serial.suite.fingerprint == fanned.suite.fingerprint

    def test_failure_pid_selection_matches_log_rescan(self, thread8):
        report = self._report(None)
        session_logs = [log for log in report.debugger.logs if log.failed]
        expected = [
            pid
            for pid in report.suite.failure_pids()
            if any(log.observed(pid) for log in session_logs)
        ]
        assert expected  # the rescan reference finds the same winner
        assert report.discovery.failure == expected[0]
