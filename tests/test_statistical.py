"""Statistical debugging: precision, recall, discriminative filtering."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.predicates import Observation
from repro.core.statistical import (
    PredicateLog,
    PredicateStats,
    StatisticalDebugger,
    split_logs,
)


def _log(pids, failed, seed=0):
    return PredicateLog(
        observations={pid: Observation(i, i + 1) for i, pid in enumerate(pids)},
        failed=failed,
        seed=seed,
    )


class TestStats:
    def test_paper_definitions(self):
        # P true in 3 of 4 failed runs and 1 successful run.
        logs = (
            [_log(["P"], True)] * 3
            + [_log([], True)]
            + [_log(["P"], False)]
            + [_log([], False)] * 2
        )
        sd = StatisticalDebugger(logs=logs)
        stats = sd.stats()["P"]
        assert stats.precision == 3 / 4
        assert stats.recall == 3 / 4
        assert 0 < stats.f1 < 1

    def test_fully_discriminative_requires_both_perfect(self):
        logs = [_log(["A", "B"], True), _log(["A"], True), _log(["B"], False)]
        sd = StatisticalDebugger(logs=logs)
        stats = sd.stats()
        assert stats["A"].fully_discriminative
        assert not stats["B"].fully_discriminative  # precision < 1
        assert sd.fully_discriminative_pids() == ["A"]

    def test_invariant_predicate_excluded(self):
        logs = [_log(["INV"], True)] * 5 + [_log(["INV"], False)] * 5
        sd = StatisticalDebugger(logs=logs)
        assert sd.fully_discriminative_pids() == []
        assert sd.stats()["INV"].precision == 0.5

    def test_ranked_orders_by_f1(self):
        logs = [
            _log(["good", "meh"], True),
            _log(["good"], True),
            _log(["meh"], False),
            _log([], False),
        ]
        ranked = StatisticalDebugger(logs=logs).ranked()
        assert [s.pid for s in ranked] == ["good", "meh"]

    def test_zero_counts_do_not_crash(self):
        stats = PredicateStats(
            pid="P", true_in_failed=0, true_in_success=0, n_failed=0, n_success=0
        )
        assert stats.precision == 0.0
        assert stats.recall == 0.0
        assert stats.f1 == 0.0
        assert not stats.fully_discriminative

    def test_split_logs(self):
        logs = [_log([], True), _log([], False), _log([], True)]
        succ, fail = split_logs(logs)
        assert len(succ) == 1 and len(fail) == 2


@given(
    st.lists(
        st.tuples(st.sets(st.sampled_from("ABCDE")), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
def test_property_precision_recall_bounds(corpus):
    """Precision/recall/F1 always land in [0, 1]; counts are consistent."""
    logs = [_log(sorted(pids), failed) for pids, failed in corpus]
    sd = StatisticalDebugger(logs=logs)
    n_failed = sum(1 for __, failed in corpus if failed)
    assert sd.n_failed == n_failed
    assert sd.n_success == len(corpus) - n_failed
    for stats in sd.stats().values():
        assert 0.0 <= stats.precision <= 1.0
        assert 0.0 <= stats.recall <= 1.0
        assert 0.0 <= stats.f1 <= 1.0
        assert stats.true_in_failed <= n_failed


@given(
    st.lists(
        st.tuples(st.sets(st.sampled_from("ABCDE")), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
def test_property_fully_discriminative_iff_label_equivalent(corpus):
    """P is fully discriminative iff 'P observed' ⇔ 'run failed'."""
    logs = [_log(sorted(pids), failed) for pids, failed in corpus]
    sd = StatisticalDebugger(logs=logs)
    has_failure = any(failed for __, failed in corpus)
    fully = set(sd.fully_discriminative_pids())
    for pid in sd.all_pids():
        equivalent = all(
            (pid in pids) == failed for pids, failed in corpus
        )
        assert (pid in fully) == (equivalent and has_failure)
