"""Algorithm 1 (GIWP) and Definition 2 pruning, in isolation.

These tests drive GIWP with a tiny in-test oracle over hand-built causal
models, so every decision the algorithm makes is verifiable without the
simulator.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.core.giwp import GIWP, topological_item_order
from repro.core.intervention import CountingRunner, RunOutcome
from repro.core.pruning import (
    GroupItem,
    counterfactual_violation,
    failure_stopped,
    observational_prunes,
)


class ChainOracle:
    """Oracle for: causal chain C0→…→Ck→F, plus parented noise.

    ``parents[x]`` is the predicate whose occurrence enables noise x
    (None = always occurs).  Mirrors the synthetic workload semantics.
    """

    def __init__(self, causal, parents):
        self.causal = list(causal)
        self.parents = dict(parents)
        self.order = self.causal + sorted(self.parents)

    def run_group(self, pids):
        occurred = set()
        for pid in self.causal:
            if pid in pids:
                break
            occurred.add(pid)
        else:
            pass
        failed = bool(self.causal) and self.causal[-1] in occurred
        for pid, parent in sorted(self.parents.items()):
            if pid in pids:
                continue
            if parent is None or parent in occurred:
                occurred.add(pid)
        return [RunOutcome(observed=frozenset(occurred), failed=failed)]


def _items(pids):
    return [GroupItem.single(p) for p in pids]


def _reaches_from_graph(graph: nx.DiGraph):
    closure = nx.transitive_closure_dag(graph)

    def reaches(a: GroupItem, b: GroupItem) -> bool:
        return closure.has_edge(a.pid, b.pid)

    return reaches


class TestPruningRules:
    def test_failure_stopped(self):
        ok = RunOutcome(observed=frozenset(), failed=False)
        bad = RunOutcome(observed=frozenset(), failed=True)
        assert failure_stopped([ok, ok])
        assert not failure_stopped([ok, bad])

    def test_counterfactual_violation_directions(self):
        item = GroupItem.single("P")
        seen_no_fail = RunOutcome(observed=frozenset({"P"}), failed=False)
        unseen_fail = RunOutcome(observed=frozenset(), failed=True)
        consistent = RunOutcome(observed=frozenset({"P"}), failed=True)
        assert counterfactual_violation(item, [seen_no_fail])
        assert counterfactual_violation(item, [unseen_fail])
        assert not counterfactual_violation(item, [consistent])

    def test_ancestors_of_intervened_never_pruned(self):
        graph = nx.DiGraph([("UP", "C"), ("C", "DOWN")])
        reaches = _reaches_from_graph(graph)
        up, c, down = (GroupItem.single(p) for p in ("UP", "C", "DOWN"))
        # Intervening on C stopped the failure; UP still occurred.
        outcomes = [RunOutcome(observed=frozenset({"UP", "DOWN"}), failed=False)]
        pruned = observational_prunes([up, down], [c], outcomes, reaches)
        assert [i.pid for i in pruned] == ["DOWN"], (
            "UP reaches C (its effect may be muted) — exempt; "
            "DOWN shows P∧¬F — pruned"
        )

    def test_branch_item_observed_by_any_member(self):
        branch = GroupItem.disjunction("branch[b]", frozenset({"x", "y"}))
        assert branch.observed(RunOutcome(observed=frozenset({"y"}), failed=True))
        assert not branch.observed(RunOutcome(observed=frozenset({"z"}), failed=True))


class TestGIWPChain:
    def _solve(self, oracle, pids, graph=None, pruning=True, seed=0):
        runner = CountingRunner(oracle)
        if graph is None:
            reaches = lambda a, b: False  # noqa: E731
        else:
            reaches = _reaches_from_graph(graph)
        giwp = GIWP(runner, reaches=reaches, observational_pruning=pruning)
        items = _items(pids)
        random.Random(seed).shuffle(items)
        return giwp.run(items), runner.budget

    def test_single_causal_found(self):
        oracle = ChainOracle(causal=["C"], parents={"n1": None, "n2": None})
        result, budget = self._solve(oracle, ["C", "n1", "n2"])
        assert result.causal_pids == ["C"]
        assert set(result.spurious_pids) == {"n1", "n2"}
        assert budget.rounds == len(result.rounds)

    def test_all_causal_chain_found(self):
        causal = [f"C{i}" for i in range(4)]
        noise = {f"n{i}": None for i in range(4)}
        oracle = ChainOracle(causal=causal, parents=noise)
        # Observational pruning is only sound WITH the AC-DAG's
        # reachability (the ancestor exemption); supply the chain graph.
        graph = nx.DiGraph(zip(causal, causal[1:]))
        result, __ = self._solve(oracle, causal + sorted(noise), graph=graph)
        assert sorted(result.causal_pids) == causal

    def test_pruning_without_dag_knowledge_is_unsound(self):
        """Definition 2 *requires* the ancestor exemption: running the
        observational prune with no reachability information falsely
        prunes upstream causes — which is precisely why plain group
        testing (TAGT) cannot use it."""
        causal = [f"C{i}" for i in range(4)]
        oracle = ChainOracle(causal=causal, parents={})
        result, __ = self._solve(oracle, causal, graph=None, pruning=True)
        assert sorted(result.causal_pids) != causal

    def test_no_causal_all_spurious(self):
        # The "causal" chain is outside the candidate pool: every
        # intervention leaves the failure standing.
        oracle = ChainOracle(causal=["HIDDEN"], parents={"a": None, "b": None})
        result, __ = self._solve(oracle, ["a", "b"])
        assert result.causal_pids == []
        assert sorted(result.spurious_pids) == ["a", "b"]

    def test_group_discard_when_failure_persists(self):
        """A half with no causal member is discarded in one round."""
        oracle = ChainOracle(
            causal=["C"], parents={f"n{i}": None for i in range(8)}
        )
        __, budget = self._solve(oracle, ["C"] + [f"n{i}" for i in range(8)])
        # 9 predicates resolved in far fewer than 9 rounds.
        assert budget.rounds < 9

    def test_observational_pruning_reduces_rounds(self):
        # Noise hanging off the mid-chain causal predicate gets pruned
        # for free when upstream causes are intervened on.
        causal = ["C0", "C1", "C2"]
        parents = {f"n{i}": "C1" for i in range(6)}
        oracle = ChainOracle(causal=causal, parents=parents)
        graph = nx.DiGraph(
            [("C0", "C1"), ("C1", "C2")] + [("C1", n) for n in parents]
        )
        __, with_pruning = self._solve(oracle, causal + sorted(parents), graph)
        __, without = self._solve(
            oracle, causal + sorted(parents), graph, pruning=False
        )
        assert with_pruning.rounds <= without.rounds

    def test_pruning_disabled_still_correct(self):
        causal = ["C0", "C1"]
        parents = {"n0": "C0", "n1": None}
        oracle = ChainOracle(causal=causal, parents=parents)
        result, __ = self._solve(oracle, causal + sorted(parents), pruning=False)
        assert sorted(result.causal_pids) == causal

    def test_round_records_are_complete(self):
        oracle = ChainOracle(causal=["C"], parents={"n": None})
        result, budget = self._solve(oracle, ["C", "n"])
        resolved = set(result.causal_pids) | set(result.spurious_pids)
        assert resolved == {"C", "n"}
        for record in result.rounds:
            assert record.intervened

    def test_callback_invoked_per_round(self):
        oracle = ChainOracle(causal=["C"], parents={"n": None})
        seen = []
        runner = CountingRunner(oracle)
        giwp = GIWP(
            runner, reaches=lambda a, b: False, on_round=seen.append
        )
        giwp.run(_items(["C", "n"]))
        assert len(seen) == runner.budget.rounds


class TestTopologicalItemOrder:
    def test_levels_respected_ties_shuffled(self):
        items = _items(["a", "b", "c", "d"])
        levels = [["a", "b"], ["c", "d"]]
        order1 = topological_item_order(items, levels, random.Random(1))
        order2 = topological_item_order(items, levels, random.Random(2))
        for order in (order1, order2):
            assert {i.pid for i in order[:2]} == {"a", "b"}
            assert {i.pid for i in order[2:]} == {"c", "d"}

    def test_unknown_items_sort_last(self):
        items = _items(["a", "zz"])
        order = topological_item_order(items, [["a"]], random.Random(0))
        assert [i.pid for i in order] == ["a", "zz"]


@pytest.mark.parametrize("n_noise", [0, 3, 10])
@pytest.mark.parametrize("n_causal", [1, 2, 5])
def test_giwp_exactness_grid(n_causal, n_noise):
    causal = [f"C{i}" for i in range(n_causal)]
    parents = {f"n{i}": (causal[0] if i % 2 else None) for i in range(n_noise)}
    oracle = ChainOracle(causal=causal, parents=parents)
    runner = CountingRunner(oracle)
    giwp = GIWP(runner, reaches=lambda a, b: False, observational_pruning=False)
    result = giwp.run(_items(causal + sorted(parents)))
    assert sorted(result.causal_pids) == causal
    assert sorted(result.spurious_pids) == sorted(parents)
