"""Property/fuzz tests: random programs and interventions never break
the simulator's structural invariants.

Hypothesis generates small random multi-threaded programs (work, shared
reads/writes, locks, nested calls, occasional throws) and random
intervention sets; every resulting trace must be structurally sound.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.sim import (
    CatchException,
    DelayReturn,
    ForceReturn,
    MethodSelector,
    Program,
    SerializeMethods,
    run_program,
)

# One op: (kind, arg) where kind picks the ctx operation.
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["work", "read", "write", "locked_write", "call"]),
        st.integers(1, 8),
    ),
    min_size=1,
    max_size=6,
)


def _make_method(ops, callee_name):
    def method(ctx, _ops=tuple(ops)):
        for kind, arg in _ops:
            if kind == "work":
                yield from ctx.work(arg)
            elif kind == "read":
                yield from ctx.read(f"v{arg % 3}")
            elif kind == "write":
                yield from ctx.write(f"v{arg % 3}", arg)
            elif kind == "locked_write":
                yield from ctx.acquire("L")
                yield from ctx.write(f"v{arg % 3}", arg)
                yield from ctx.release("L")
            elif kind == "call" and callee_name is not None:
                yield from ctx.call(callee_name)
        return "done"

    return method


def _build_program(worker_ops, helper_ops, n_workers):
    def main(ctx):
        for i in range(n_workers):
            yield from ctx.spawn(f"w{i}", "Worker")
        yield from ctx.call("Worker")
        for i in range(n_workers):
            yield from ctx.join(f"w{i}")
        return "main-done"

    return Program(
        name="fuzz",
        methods={
            "Main": main,
            "Worker": _make_method(worker_ops, "Helper"),
            "Helper": _make_method(helper_ops, None),
        },
        main="Main",
        shared={"v0": 0, "v1": 0, "v2": 0},
        readonly_methods=frozenset({"Helper"}),
    )


def _check_trace_invariants(trace):
    executions = trace.method_executions()
    seen_keys = set()
    for m in executions:
        # windows well-formed, occurrences unique per (thread, method)
        assert m.end_time >= m.start_time
        assert m.key not in seen_keys
        seen_keys.add(m.key)
        # accesses inside the window, times non-decreasing
        previous = None
        for access in m.accesses:
            assert m.start_time <= access.time <= m.end_time
            if previous is not None:
                assert access.time >= previous
            previous = access.time
    # parent windows contain children
    by_id = {m.call_id: m for m in executions}
    for m in executions:
        if m.parent_call_id is not None and m.parent_call_id in by_id:
            parent = by_id[m.parent_call_id]
            assert parent.start_time <= m.start_time
            assert m.end_time <= parent.end_time
    # occurrence numbering dense per (thread, method)
    per_key: dict = {}
    for m in executions:
        per_key.setdefault((m.thread, m.method), []).append(m.occurrence)
    for occurrences in per_key.values():
        assert sorted(occurrences) == list(range(len(occurrences)))


@settings(max_examples=40, deadline=None)
@given(worker_ops=_OPS, helper_ops=_OPS, n_workers=st.integers(0, 3),
       seed=st.integers(0, 1000))
def test_property_random_programs_produce_wellformed_traces(
    worker_ops, helper_ops, n_workers, seed
):
    program = _build_program(worker_ops, helper_ops, n_workers)
    result = run_program(program, seed)
    _check_trace_invariants(result.trace)
    assert not result.failed  # no throws in this op set


@settings(max_examples=40, deadline=None)
@given(
    worker_ops=_OPS,
    helper_ops=_OPS,
    seed=st.integers(0, 1000),
    iv_choice=st.lists(st.sampled_from(["catch", "force", "delay", "lock"]),
                       max_size=3),
)
def test_property_random_interventions_keep_traces_wellformed(
    worker_ops, helper_ops, seed, iv_choice
):
    program = _build_program(worker_ops, helper_ops, 1)
    interventions = []
    for kind in iv_choice:
        if kind == "catch":
            interventions.append(
                CatchException(MethodSelector("Helper"), fallback=None)
            )
        elif kind == "force":
            interventions.append(
                ForceReturn(MethodSelector("Helper"), value=0, skip_body=True)
            )
        elif kind == "delay":
            interventions.append(DelayReturn(MethodSelector("Worker"), ticks=7))
        else:
            interventions.append(
                SerializeMethods(
                    selectors=(MethodSelector("Worker"),), lock_name="Lx"
                )
            )
    result = run_program(program, seed, tuple(interventions))
    _check_trace_invariants(result.trace)


@settings(max_examples=20, deadline=None)
@given(worker_ops=_OPS, seed=st.integers(0, 200))
def test_property_determinism_under_fuzz(worker_ops, seed):
    program = _build_program(worker_ops, [("work", 1)], 2)
    first = run_program(program, seed).trace
    second = run_program(program, seed).trace
    sig = lambda t: [  # noqa: E731
        (m.key, m.start_time, m.end_time) for m in t.method_executions()
    ]
    assert sig(first) == sig(second)
