"""Predicate extraction: each extractor, the suite, and safety filtering."""

from __future__ import annotations

import pytest

from repro.core.extraction import (
    DataRaceExtractor,
    DurationExtractor,
    FailureExtractor,
    MethodExecutedExtractor,
    MethodFailsExtractor,
    OrderViolationExtractor,
    PredicateSuite,
    WrongReturnExtractor,
    default_extractors,
)
from repro.core.predicates import PredicateKind
from repro.harness.runner import collect
from repro.sim import run_program


@pytest.fixture(scope="module")
def corpus(racy_program):
    return collect(racy_program, n_success=25, n_fail=25)


class TestExtractors:
    def test_data_race_extractor_finds_the_race(self, corpus):
        preds = DataRaceExtractor().discover(corpus.successes, corpus.failures)
        assert len(preds) == 1
        (race,) = preds
        assert race.obj == "counter"
        assert {race.a.method, race.b.method} == {"Updater", "Reader"}

    def test_method_fails_extractor(self, corpus):
        preds = MethodFailsExtractor().discover(corpus.successes, corpus.failures)
        kinds = {(p.key.method, p.exc_kind) for p in preds}
        assert ("Reader", "TornRead") in kinds

    def test_wrong_return_extractor(self, corpus):
        preds = WrongReturnExtractor().discover(corpus.successes, corpus.failures)
        by_method = {p.key.method: p for p in preds}
        assert "CheckValue" in by_method
        assert by_method["CheckValue"].correct_value is True

    def test_failure_extractor_one_per_signature(self, corpus):
        preds = FailureExtractor().discover(corpus.successes, corpus.failures)
        assert len(preds) == 1
        assert preds[0].signature == corpus.failures[0].failure.signature

    def test_executed_extractor_skips_invariants(self, corpus):
        preds = MethodExecutedExtractor().discover(
            corpus.successes, corpus.failures
        )
        # Reader/Updater/Main run in every trace → never candidates.
        assert all(p.key.method not in {"Main", "Updater"} for p in preds)

    def test_duration_extractor_slack(self, corpus):
        extractor = DurationExtractor(slack_fraction=0.25, slack_min=5)
        preds = extractor.discover(corpus.successes, corpus.failures)
        for p in preds:
            if p.kind is PredicateKind.TOO_SLOW:
                durations = [
                    m.duration
                    for t in corpus.successes
                    for m in t.method_executions()
                    if m.key == p.key
                ]
                assert p.threshold >= max(durations) + 5

    def test_order_extractor_requires_cross_thread(self, corpus):
        preds = OrderViolationExtractor().discover(
            corpus.successes, corpus.failures
        )
        for p in preds:
            assert p.first.thread != p.second.thread


class TestSuite:
    def test_discover_and_evaluate_roundtrip(self, corpus, racy_program):
        suite = PredicateSuite.discover(
            corpus.successes, corpus.failures, program=racy_program
        )
        assert len(suite) > 0
        log = suite.evaluate(corpus.failures[0])
        assert log.failed
        assert any(pid.startswith("race(") for pid in log.observations)
        ok = suite.evaluate(corpus.successes[0])
        assert not ok.failed

    def test_safety_filter_drops_unsafe_value_interventions(
        self, corpus, racy_program
    ):
        safe = PredicateSuite.discover(
            corpus.successes, corpus.failures, program=racy_program, safe_only=True
        )
        unsafe = PredicateSuite.discover(
            corpus.successes, corpus.failures, program=racy_program, safe_only=False
        )
        assert set(safe.pids()) <= set(unsafe.pids())
        dropped = set(unsafe.pids()) - set(safe.pids())
        for pid in dropped:
            assert not unsafe[pid].is_safe(racy_program)
        # Races are timing interventions — always safe, never dropped.
        assert all(not pid.startswith("race(") for pid in dropped)

    def test_failure_predicates_survive_safety_filter(
        self, corpus, racy_program
    ):
        suite = PredicateSuite.discover(
            corpus.successes, corpus.failures, program=racy_program
        )
        assert suite.failure_pids()

    def test_restrict(self, corpus, racy_program):
        suite = PredicateSuite.discover(
            corpus.successes, corpus.failures, program=racy_program
        )
        keep = suite.pids()[:2]
        small = suite.restrict(keep)
        assert small.pids() == sorted(keep)

    def test_evaluate_all_sets_seeds(self, corpus, racy_program):
        suite = PredicateSuite.discover(
            corpus.successes, corpus.failures, program=racy_program
        )
        logs = suite.evaluate_all(corpus.failures)
        assert [log.seed for log in logs] == [t.seed for t in corpus.failures]

    def test_default_extractor_list_is_complete(self):
        kinds = {type(e).__name__ for e in default_extractors()}
        assert kinds == {
            "DataRaceExtractor",
            "MethodFailsExtractor",
            "DurationExtractor",
            "WrongReturnExtractor",
            "OrderViolationExtractor",
            "MethodExecutedExtractor",
            "FailureExtractor",
        }

    def test_evaluation_consistent_on_intervened_traces(
        self, corpus, racy_program
    ):
        """The frozen suite evaluates intervened traces (the mechanism
        behind interpreting intervention outcomes)."""
        suite = PredicateSuite.discover(
            corpus.successes, corpus.failures, program=racy_program
        )
        race_pid = next(p for p in suite.pids() if p.startswith("race("))
        interventions = suite[race_pid].interventions()
        trace = run_program(
            racy_program, corpus.failing_seeds[0], interventions
        ).trace
        log = suite.evaluate(trace)
        assert race_pid not in log.observations
        assert not log.failed
