"""Documentation stays truthful: every ``repro`` invocation in the
docs' shell blocks must name real subcommands and live flags."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "scripts"))

from check_docs import (  # noqa: E402
    check_file,
    check_invocation,
    extract_invocation,
    iter_shell_lines,
)
from repro.cli import build_parser  # noqa: E402


@pytest.fixture(scope="module")
def parser():
    return build_parser()


DOC_FILES = sorted((REPO_ROOT / "docs").glob("*.md")) + [REPO_ROOT / "README.md"]


def test_docs_tree_exists():
    names = {p.name for p in DOC_FILES}
    assert "architecture.md" in names
    assert "corpus.md" in names
    assert "perf.md" in names
    assert "README.md" in names


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_doc_cli_invocations_parse(path, parser):
    assert check_file(path, parser) == []


def test_docs_actually_exercise_the_cli(parser):
    """The docs must contain real invocations (the checker is not
    silently matching nothing)."""
    total = 0
    for path in DOC_FILES:
        for _, line in iter_shell_lines(path.read_text()):
            if extract_invocation(line) is not None:
                total += 1
    assert total >= 10


class TestChecker:
    def test_flags_are_validated(self, parser):
        assert check_invocation(["corpus", "analyze", "d", "--jobs", "8"], parser) == []
        errors = check_invocation(["corpus", "analyze", "d", "--no-such"], parser)
        assert errors and "--no-such" in errors[0]

    def test_subcommands_are_validated(self, parser):
        assert check_invocation(["corpus", "shard-stats", "d"], parser) == []
        errors = check_invocation(["corpus", "defragment", "d"], parser)
        assert errors and "defragment" in errors[0]
        errors = check_invocation(["debgu", "kafka"], parser)
        assert errors and "debgu" in errors[0]

    def test_invocation_extraction(self):
        assert extract_invocation(
            "PYTHONPATH=src python -m repro corpus analyze DIR --jobs 8"
        ) == ["corpus", "analyze", "DIR", "--jobs", "8"]
        assert extract_invocation("repro list") == ["list"]
        assert extract_invocation("# a comment about repro list") is None
        assert extract_invocation("pip install -e .") is None

    def test_shell_blocks_only(self):
        text = "\n".join(
            [
                "```python",
                "import repro  # not a CLI line",
                "```",
                "```sh",
                "repro list",
                "```",
            ]
        )
        lines = [line for _, line in iter_shell_lines(text)]
        assert lines == ["repro list"]
