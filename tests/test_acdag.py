"""AC-DAG construction: edges, invariants, junctions, branches."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.acdag import ACDag, GraphInvariantError
from repro.core.predicates import (
    ExecutedPredicate,
    FailurePredicate,
    Observation,
)
from repro.core.statistical import PredicateLog
from repro.sim.tracing import MethodKey

F = "FAILURE[f]"


def _defs(pids):
    defs = {
        pid: ExecutedPredicate(key=MethodKey(pid, "t", 0)) for pid in pids
    }
    failure = FailurePredicate(signature="f")
    defs[F] = failure
    return defs


def _log(times: dict[str, int], f_time: int, seed=0) -> PredicateLog:
    observations = {pid: Observation(t, t) for pid, t in times.items()}
    observations[F] = Observation(f_time, f_time)
    return PredicateLog(observations=observations, failed=True, seed=seed)


class TestBuild:
    def test_consistent_order_creates_edge(self):
        defs = _defs(["A", "B"])
        logs = [_log({"A": 1, "B": 5}, 9), _log({"A": 2, "B": 7}, 9)]
        dag = ACDag.build(defs, logs, F)
        assert dag.reaches("A", "B")
        assert not dag.reaches("B", "A")
        assert dag.reaches("A", F) and dag.reaches("B", F)

    def test_inconsistent_order_creates_no_edge(self):
        defs = _defs(["A", "B"])
        logs = [_log({"A": 1, "B": 5}, 9), _log({"A": 7, "B": 2}, 9)]
        dag = ACDag.build(defs, logs, F)
        assert not dag.reaches("A", "B")
        assert not dag.reaches("B", "A")

    def test_tie_creates_no_edge_between_predicates(self):
        defs = _defs(["A", "B"])
        logs = [_log({"A": 3, "B": 3}, 9)]
        dag = ACDag.build(defs, logs, F)
        assert not dag.reaches("A", "B") and not dag.reaches("B", "A")

    def test_failure_tie_still_precedes_failure(self):
        """F is terminal: a predicate anchored AT the failure instant
        still precedes it (the crash records both simultaneously)."""
        defs = _defs(["A"])
        dag = ACDag.build(defs, [_log({"A": 9}, 9)], F)
        assert dag.reaches("A", F)

    def test_post_failure_predicates_discarded(self):
        defs = _defs(["A", "CLEANUP"])
        logs = [_log({"A": 1, "CLEANUP": 20}, 9)]
        dag = ACDag.build(defs, logs, F)
        assert "CLEANUP" not in dag
        assert "no temporal path" in dag.discarded["CLEANUP"]

    def test_unreachable_side_predicates_discarded(self):
        # X is incomparable with F (before in one log, after in another).
        defs = _defs(["A", "X"])
        logs = [_log({"A": 1, "X": 5}, 9), _log({"A": 1, "X": 12}, 9)]
        dag = ACDag.build(defs, logs, F)
        assert "X" not in dag

    def test_missing_in_some_failed_log_discarded(self):
        defs = _defs(["A", "FLAKY"])
        logs = [_log({"A": 1, "FLAKY": 2}, 9), _log({"A": 1}, 9)]
        dag = ACDag.build(defs, logs, F)
        assert "FLAKY" not in dag
        assert "every failed log" in dag.discarded["FLAKY"]

    def test_requires_failed_logs(self):
        with pytest.raises(GraphInvariantError):
            ACDag.build(_defs([]), [], F)

    def test_rejects_cyclic_graph(self):
        graph = nx.DiGraph([("A", "B"), ("B", "A"), ("A", F)])
        with pytest.raises(GraphInvariantError):
            ACDag(graph=graph, failure=F)

    def test_failure_must_be_present(self):
        with pytest.raises(GraphInvariantError):
            ACDag(graph=nx.DiGraph([("A", "B")]), failure=F)


def _chain_dag(*chains, merge=None):
    """Transitively-closed DAG of parallel chains merging into F."""
    graph = nx.DiGraph()
    graph.add_node(F)
    for chain in chains:
        for i, a in enumerate(chain):
            graph.add_edge(a, F)
            for b in chain[i + 1 :]:
                graph.add_edge(a, b)
            if merge:
                graph.add_edge(a, merge)
    if merge:
        graph.add_edge(merge, F)
    return ACDag(graph=graph, failure=F)


class TestStructure:
    def test_topological_levels_of_parallel_chains(self):
        dag = _chain_dag(["A1", "A2"], ["B1", "B2"])
        levels = dag.topological_levels(among=dag.predicates)
        assert levels[0] == ["A1", "B1"]
        assert levels[1] == ["A2", "B2"]

    def test_minimal_elements_shrink_as_processed(self):
        dag = _chain_dag(["A1", "A2"], ["B1"])
        assert dag.minimal_elements(among={"A2", "B1"}) == ["A2", "B1"]

    def test_branches_exclude_shared_descendants(self):
        dag = _chain_dag(["A1", "A2"], ["B1", "B2"], merge="M")
        branches = {b.head: b for b in dag.branches_at(["A1", "B1"])}
        assert branches["A1"].members == {"A1", "A2"}
        assert branches["B1"].members == {"B1", "B2"}
        # M is reachable from both heads → in neither branch; F never is.

    def test_remove_keeps_failure(self):
        dag = _chain_dag(["A1", "A2"])
        dag.remove(["A1", F])
        assert F in dag
        assert "A1" not in dag

    def test_transitive_reduction_and_dot(self):
        dag = _chain_dag(["A1", "A2", "A3"])
        reduced = dag.transitive_reduction()
        assert reduced.has_edge("A1", "A2")
        assert not reduced.has_edge("A1", "A3")
        dot = dag.to_dot()
        assert "doubleoctagon" in dot and "A1" in dot

    def test_copy_is_independent(self):
        dag = _chain_dag(["A1", "A2"])
        clone = dag.copy()
        clone.remove(["A1"])
        assert "A1" in dag and "A1" not in clone


@settings(max_examples=40)
@given(
    st.lists(
        st.lists(st.integers(0, 60), min_size=1, max_size=6),
        min_size=2,
        max_size=6,
    )
)
def test_property_built_dag_is_acyclic_and_transitive(log_times):
    """For arbitrary anchor patterns the built AC-DAG is a transitively
    closed DAG whose nodes are all ancestors of F."""
    width = min(len(log) for log in log_times)
    pids = [f"P{i}" for i in range(width)]
    defs = _defs(pids)
    logs = []
    for row in log_times:
        times = {pid: row[i] for i, pid in enumerate(pids)}
        logs.append(_log(times, f_time=100))
    dag = ACDag.build(defs, logs, F)
    graph = dag.graph
    assert nx.is_directed_acyclic_graph(graph)
    for a, b in graph.edges:
        for c in graph.successors(b):
            if c != a:
                assert graph.has_edge(a, c), "transitive closure broken"
    for node in dag.predicates:
        assert dag.reaches(node, F)
