"""Shared fixtures: programs, corpora, and cached case-study sessions."""

from __future__ import annotations

import time
from typing import Callable

import pytest

from repro.harness.session import AIDSession, SessionConfig
from repro.sim import Program
from repro.workloads.common import REGISTRY


def wait_until(
    predicate: Callable[[], object],
    timeout: float = 10.0,
    interval: float = 0.005,
    message: str = "condition",
):
    """Deadline-bounded polling: return ``predicate()``'s first truthy
    value, failing loudly at the deadline.

    The replacement for fixed ``time.sleep`` pacing in cross-thread
    tests — a fixed sleep pays its worst case on every run *and* still
    flakes on a machine slower than the guess, while a poll returns the
    moment the condition holds and fails with a message when it never
    does.
    """
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= deadline:
            raise AssertionError(
                f"timed out after {timeout}s waiting for {message}"
            )
        time.sleep(interval)


def racy_counter_program(window: int = 10, jitter: int = 40) -> Program:
    """A minimal sandwich-race program used across sim/core tests.

    ``Updater`` rewrites a counter through a two-write protocol
    (sentinel −1, then the restored value); ``Reader`` reads it without
    synchronization and crashes when it observes the sentinel.
    """

    def main(ctx):
        yield from ctx.spawn("reader", "Reader")
        yield from ctx.work(ctx.randint(0, jitter))
        yield from ctx.call("Updater")
        yield from ctx.join("reader")
        return "done"

    def updater(ctx):
        value = ctx.peek("counter")
        yield from ctx.write("counter", -1)
        yield from ctx.work(window)
        yield from ctx.write("counter", value)
        return "updated"

    def reader(ctx):
        yield from ctx.work(ctx.randint(0, jitter))
        value = yield from ctx.read("counter")
        checked = yield from ctx.call("CheckValue", value)
        if not checked:
            ctx.throw("TornRead", f"saw {value}")
        return value

    def check_value(ctx, value):
        yield from ctx.work(1)
        return value >= 0

    return Program(
        name="racy-counter",
        methods={
            "Main": main,
            "Updater": updater,
            "Reader": reader,
            "CheckValue": check_value,
        },
        main="Main",
        shared={"counter": 7},
        readonly_methods=frozenset({"Reader", "CheckValue"}),
    )


@pytest.fixture(scope="session")
def racy_program() -> Program:
    return racy_counter_program()


@pytest.fixture(scope="session")
def racy_session(racy_program) -> AIDSession:
    session = AIDSession(
        racy_program, SessionConfig(n_success=30, n_fail=30, repeats=15)
    )
    session.build_dag()
    return session


_SESSION_CACHE: dict[str, AIDSession] = {}


def case_study_session(name: str) -> AIDSession:
    """Build (once per test run) a full session for a case study."""
    if name not in _SESSION_CACHE:
        workload = REGISTRY.build(name)
        session = AIDSession(workload.program, SessionConfig())
        session.build_dag()
        _SESSION_CACHE[name] = session
    return _SESSION_CACHE[name]


@pytest.fixture(params=sorted(REGISTRY.names()))
def workload_name(request) -> str:
    return request.param
