"""Synthetic generator and oracle: invariants the paper's setup requires."""

from __future__ import annotations

import math

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.intervention import RunOutcome
from repro.workloads.synthetic import (
    FAILURE_PID,
    SyntheticSpec,
    generate_app,
    generate_batch,
    spec_for_maxt,
)


class TestGeneratorInvariants:
    def test_causal_path_is_a_chain_in_the_dag(self):
        for seed in range(30):
            app = generate_app(seed, spec_for_maxt(12))
            path = app.causal_path
            assert path, "at least one causal predicate"
            for a, b in zip(path, path[1:]):
                assert app.dag.reaches(a, b), (seed, a, b)

    def test_noise_parents_precede_children(self):
        for seed in range(30):
            app = generate_app(seed, spec_for_maxt(12))
            for child, parent in app.parents.items():
                if parent is not None:
                    assert app.dag.reaches(parent, child), (seed, parent, child)

    def test_d_within_paper_range(self):
        for seed in range(50):
            app = generate_app(seed, spec_for_maxt(20))
            n = app.n_predicates
            cap = max(1, int(n / math.log2(n))) if n > 2 else 1
            assert 1 <= app.n_causal <= max(cap, 1)

    def test_graph_is_transitively_closed_dag(self):
        app = generate_app(3, spec_for_maxt(8))
        graph = app.dag.graph
        assert nx.is_directed_acyclic_graph(graph)
        for a, b in graph.edges:
            for c in graph.successors(b):
                if c != a:
                    assert graph.has_edge(a, c)

    def test_every_predicate_reaches_failure(self):
        app = generate_app(11, spec_for_maxt(8))
        for pid in app.dag.predicates:
            assert app.dag.reaches(pid, FAILURE_PID)

    def test_batch_seeds_are_distinct(self):
        batch = generate_batch(10, seed=5)
        assert len({app.seed for app in batch}) == 10

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SyntheticSpec(max_threads=1, min_threads=2).validate()
        with pytest.raises(ValueError):
            SyntheticSpec(phases=(3, 2)).validate()

    def test_reproducible(self):
        a = generate_app(42, spec_for_maxt(10))
        b = generate_app(42, spec_for_maxt(10))
        assert a.causal_path == b.causal_path
        assert a.parents == b.parents
        assert set(a.dag.graph.edges) == set(b.dag.graph.edges)


class TestOracleSemantics:
    def test_unintervened_run_fails_with_everything_observed(self):
        app = generate_app(1, spec_for_maxt(6))
        (outcome,) = app.runner().run_group(frozenset())
        assert outcome.failed
        assert FAILURE_PID in outcome.observed
        assert set(app.causal_path) <= outcome.observed

    def test_intervening_any_causal_stops_failure(self):
        app = generate_app(2, spec_for_maxt(10))
        runner = app.runner()
        for pid in app.causal_path:
            (outcome,) = runner.run_group(frozenset({pid}))
            assert not outcome.failed, pid
            assert pid not in outcome.observed

    def test_intervening_on_causal_mutes_downstream_chain(self):
        app = generate_app(4, spec_for_maxt(10))
        if app.n_causal < 2:
            pytest.skip("need a chain of at least 2")
        runner = app.runner()
        mid = app.causal_path[len(app.causal_path) // 2]
        (outcome,) = runner.run_group(frozenset({mid}))
        idx = app.causal_path.index(mid)
        for upstream in app.causal_path[:idx]:
            assert upstream in outcome.observed
        for downstream in app.causal_path[idx:]:
            assert downstream not in outcome.observed

    def test_intervening_noise_never_stops_failure(self):
        app = generate_app(5, spec_for_maxt(10))
        runner = app.runner()
        noise = sorted(set(app.dag.predicates) - set(app.causal_path))
        (outcome,) = runner.run_group(frozenset(noise))
        assert outcome.failed
        for pid in noise:
            assert pid not in outcome.observed

    def test_noise_follows_parent_occurrence(self):
        app = generate_app(6, spec_for_maxt(10))
        runner = app.runner()
        root = app.causal_path[0]
        (outcome,) = runner.run_group(frozenset({root}))
        for child, parent in app.parents.items():
            if parent is None:
                assert child in outcome.observed
            else:
                assert (child in outcome.observed) == (
                    parent in outcome.observed
                )

    def test_outcome_type(self):
        app = generate_app(7, spec_for_maxt(4))
        (outcome,) = app.runner().run_group(frozenset())
        assert isinstance(outcome, RunOutcome)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), maxt=st.integers(2, 42))
def test_property_generator_sound(seed, maxt):
    """Any generated app satisfies the core soundness triplet."""
    app = generate_app(seed, spec_for_maxt(maxt))
    # (1) the DAG is acyclic with F on top;
    assert nx.is_directed_acyclic_graph(app.dag.graph)
    # (2) the unintervened execution fails;
    (baseline,) = app.runner().run_group(frozenset())
    assert baseline.failed
    # (3) repairing the root cause alone repairs the program.
    (repaired,) = app.runner().run_group(frozenset({app.causal_path[0]}))
    assert not repaired.failed
