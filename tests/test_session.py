"""Harness: corpus collection, session pipeline, counting runner."""

from __future__ import annotations

import pytest

from repro.core.intervention import (
    CountingRunner,
    InterventionBudget,
    RunOutcome,
    ScriptedRunner,
)
from repro.harness.runner import CollectionError, LabeledCorpus, collect
from repro.harness.session import AIDSession, SessionConfig, debug
from repro.sim import Program


class TestCollect:
    def test_quotas_met(self, racy_program):
        corpus = collect(racy_program, n_success=10, n_fail=10)
        assert len(corpus.successes) == 10
        assert len(corpus.failures) == 10
        assert all(t.failed for t in corpus.failures)
        assert not any(t.failed for t in corpus.successes)

    def test_failing_seeds_replayable(self, racy_program):
        from repro.sim import run_program

        corpus = collect(racy_program, n_success=5, n_fail=5)
        for seed in corpus.failing_seeds:
            assert run_program(racy_program, seed).failed

    def test_collection_error_on_never_failing_program(self):
        def main(ctx):
            yield from ctx.work(1)
            return "ok"

        program = Program(name="healthy", methods={"Main": main}, main="Main")
        with pytest.raises(CollectionError):
            collect(program, n_success=2, n_fail=2, max_attempts=50)

    def test_signature_grouping(self):
        corpus = LabeledCorpus()
        assert corpus.dominant_failure_signature() is None
        assert corpus.failure_rate == 0.0


class TestSessionPipeline:
    def test_stage_caching(self, racy_session):
        assert racy_session.collect() is racy_session.collect()
        assert racy_session.analyze() is racy_session.analyze()
        assert racy_session.build_dag() is racy_session.build_dag()

    def test_failure_pid_excluded_from_candidates(self, racy_session):
        assert racy_session.failure_pid not in racy_session.fully_discriminative

    def test_runner_replays_failing_seeds_first(self, racy_session):
        runner = racy_session.make_runner()
        failing = racy_session.collect().failing_seeds
        assert runner.seeds[: len(failing[:15])] == failing[:15]

    def test_debug_one_call(self, racy_program):
        report = debug(
            racy_program,
            config=SessionConfig(n_success=20, n_fail=20, repeats=12),
        )
        assert report.causal_path[-1] == report.dag.failure
        assert report.n_causal >= 1
        assert "race(counter)" in report.discovery.root_cause

    def test_report_properties(self, racy_session):
        report = racy_session.run("AID")
        assert report.n_sd_predicates == len(report.fully_discriminative)
        assert report.n_rounds == report.discovery.n_rounds
        assert report.approach.value == "AID"


class TestCountingRunner:
    def test_budget_accumulates(self):
        ok = RunOutcome(observed=frozenset(), failed=False)
        bad = RunOutcome(observed=frozenset(), failed=True)
        inner = ScriptedRunner(script={}, default=[ok, bad])
        runner = CountingRunner(inner)
        runner.run_group(frozenset({"a"}))
        runner.run_group(frozenset({"b", "c"}))
        assert runner.budget.rounds == 2
        assert runner.budget.executions == 4
        assert runner.budget.history[0] == (frozenset({"a"}), True)

    def test_scripted_runner_raises_on_unknown(self):
        runner = ScriptedRunner(script={})
        with pytest.raises(KeyError):
            runner.run_group(frozenset({"x"}))

    def test_budget_default_state(self):
        budget = InterventionBudget()
        assert budget.rounds == 0 and budget.executions == 0


class TestSimulationRunnerBehaviour:
    def test_early_stop_on_first_failure(self, racy_session):
        runner = racy_session.make_runner()
        noise = next(
            pid
            for pid in racy_session.fully_discriminative
            if not pid.startswith("race(")
        )
        outcomes = runner.run_group(frozenset({noise}))
        # Early stop: at most one failing outcome, and it is the last.
        failing = [o for o in outcomes if o.failed]
        assert len(failing) <= 1
        if failing:
            assert outcomes[-1].failed

    def test_causal_intervention_runs_all_seeds(self, racy_session):
        runner = racy_session.make_runner()
        race = next(
            pid
            for pid in racy_session.fully_discriminative
            if pid.startswith("race(")
        )
        outcomes = runner.run_group(frozenset({race}))
        assert len(outcomes) == len(runner.seeds)
        assert not any(o.failed for o in outcomes)

    def test_needs_seeds(self, racy_session):
        from repro.core.intervention import SimulationRunner
        from repro.sim import Simulator

        with pytest.raises(ValueError):
            SimulationRunner(
                simulator=Simulator(racy_session.program),
                suite=racy_session._suite,
                failure_pid=racy_session.failure_pid,
                seeds=[],
            )
