"""Precedence policies and the structural acyclicity guarantee."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.precedence import (
    EndTimePolicy,
    KindAnchorPolicy,
    StartTimePolicy,
    default_policy,
)
from repro.core.predicates import (
    MethodFailsPredicate,
    Observation,
    TooSlowPredicate,
    WrongReturnPredicate,
    ExecutedPredicate,
)
from repro.sim.tracing import MethodKey


def _fails(name="M"):
    return MethodFailsPredicate(key=MethodKey(name, "t", 0), exc_kind="E")


def _exec(name="M"):
    return ExecutedPredicate(key=MethodKey(name, "t", 0))


class TestAnchoring:
    def test_end_anchored_kinds(self):
        policy = KindAnchorPolicy()
        obs = Observation(10, 25)
        assert policy.anchor(_fails(), obs) == 25.0
        assert (
            policy.anchor(
                WrongReturnPredicate(key=MethodKey("M", "t", 0), correct_value=1),
                obs,
            )
            == 25.0
        )

    def test_start_anchored_kinds(self):
        policy = KindAnchorPolicy()
        obs = Observation(10, 25)
        assert policy.anchor(_exec(), obs) == 10.0
        slow = TooSlowPredicate(key=MethodKey("M", "t", 0), threshold=5)
        # TooSlow observations already start at the excess point.
        assert policy.anchor(slow, obs) == 10.0

    def test_overrides(self):
        from repro.core.predicates import PredicateKind

        policy = KindAnchorPolicy(overrides={PredicateKind.METHOD_FAILS: "start"})
        assert policy.anchor(_fails(), Observation(10, 25)) == 10.0

    def test_uniform_policies(self):
        obs = Observation(3, 9)
        assert StartTimePolicy().anchor(_fails(), obs) == 3.0
        assert EndTimePolicy().anchor(_exec(), obs) == 9.0

    def test_default_is_kind_anchored(self):
        assert isinstance(default_policy(), KindAnchorPolicy)

    def test_paper_case1_slow_callee_precedes_slow_caller(self):
        """foo() awaits bar(); both slow ⇒ bar precedes foo (Case 1).

        foo spans [0, 100] with threshold 50, bar spans [20, 90] with
        threshold 20 — bar exceeds its envelope at 40, foo at 50.
        """
        policy = default_policy()
        foo = TooSlowPredicate(key=MethodKey("foo", "t", 0), threshold=50)
        bar = TooSlowPredicate(key=MethodKey("bar", "t", 0), threshold=20)
        foo_obs = Observation(0 + 50, 100)
        bar_obs = Observation(20 + 20, 90)
        assert policy.precedes(bar, bar_obs, foo, foo_obs)
        assert not policy.precedes(foo, foo_obs, bar, bar_obs)


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["fails", "exec", "slow"]),
            st.integers(0, 100),
            st.integers(0, 50),
        ),
        min_size=2,
        max_size=8,
    )
)
def test_property_precedence_is_strict_within_a_log(items):
    """Per log, `precedes` is irreflexive and asymmetric for any policy —
    the property that makes AC-DAG acyclicity structural."""
    policy = default_policy()
    preds = []
    for i, (kind, start, length) in enumerate(items):
        key = MethodKey(f"M{i}", "t", 0)
        if kind == "fails":
            pred = MethodFailsPredicate(key=key, exc_kind="E")
        elif kind == "exec":
            pred = ExecutedPredicate(key=key)
        else:
            pred = TooSlowPredicate(key=key, threshold=1)
        preds.append((pred, Observation(start, start + length)))
    for p1, o1 in preds:
        assert not policy.precedes(p1, o1, p1, o1)
        for p2, o2 in preds:
            if policy.precedes(p1, o1, p2, o2):
                assert not policy.precedes(p2, o2, p1, o1)


class TestLamportPolicy:
    def test_prefers_lamport_when_available(self):
        from repro.core.precedence import LamportAnchorPolicy

        policy = LamportAnchorPolicy()
        obs = Observation(10, 25, start_lamport=3, end_lamport=9)
        assert policy.anchor(_exec(), obs) == 3.0
        assert policy.anchor(_fails(), obs) == 9.0

    def test_falls_back_to_virtual_time(self):
        from repro.core.precedence import LamportAnchorPolicy

        policy = LamportAnchorPolicy()
        obs = Observation(10, 25)
        assert policy.anchor(_exec(), obs) == 10.0
        assert policy.anchor(_fails(), obs) == 25.0

    def test_full_pipeline_under_lamport_anchors(self, racy_session):
        """Swapping the clock basis still recovers the race root cause."""
        from repro.core.precedence import LamportAnchorPolicy
        from repro.harness.session import AIDSession, SessionConfig

        session = AIDSession(
            racy_session.program,
            SessionConfig(
                n_success=25, n_fail=25, repeats=12,
                policy=LamportAnchorPolicy(),
            ),
        )
        report = session.run("AID")
        assert report.discovery.root_cause.startswith("race(counter)")
