"""The sharded corpus layout: v1/v2→v3 migration, shard-parallel analyze
determinism, AC-DAG partial merging, and compaction."""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.acdag import ACDag, GraphInvariantError
from repro.core.extraction import PredicateSuite
from repro.core.predicates import ExecutedPredicate, FailurePredicate, Observation
from repro.core.statistical import IncrementalDebugger, PredicateLog
from repro.corpus import (
    CorpusError,
    EvalMatrix,
    IncrementalPipeline,
    TraceStore,
    merge_matrices,
    split_matrix,
)
from repro.exec import ExecutionEngine, make_backend
from repro.harness.runner import collect
from repro.sim.tracing import MethodKey


@pytest.fixture(scope="module")
def corpus(racy_program):
    return collect(racy_program, n_success=12, n_fail=12)


def _build_store(root, racy_program, corpus, shard_width=2) -> TraceStore:
    store = TraceStore.init(
        root, program=racy_program.name, shard_width=shard_width
    )
    for trace in corpus.successes + corpus.failures:
        store.ingest(trace)
    store.save()
    return store


def _downgrade_to_v1(v2_root: Path, v1_root: Path) -> None:
    """Write the v1 (flat) layout equivalent of a sharded corpus —
    manifest, trace bodies, and the single-file eval matrix."""
    store = TraceStore.open(v2_root)
    (v1_root / "traces").mkdir(parents=True)
    rows = {}
    for fp, entry in sorted(store.entries.items()):
        rows[fp] = {
            "label": entry.label,
            "seed": entry.seed,
            "signature": entry.signature,
        }
        shutil.copy(store.trace_path(fp), v1_root / "traces" / f"{fp}.json")
    (v1_root / "manifest.json").write_text(
        json.dumps(
            {"version": 1, "program": store.program, "traces": rows},
            indent=2,
            sort_keys=True,
        )
    )
    matrix = store.eval_matrix()
    matrix.load_all()
    merged = merge_matrices(
        matrix.shard(sid) for sid in matrix.persisted_shard_ids()
    )
    if merged.traces:
        merged.save(v1_root / "evalmatrix.json")


class TestShardLayout:
    def test_traces_land_in_their_prefix_shard(
        self, tmp_path, racy_program, corpus
    ):
        store = _build_store(tmp_path / "c", racy_program, corpus)
        for fp in store.entries:
            assert store.shard_id(fp) == fp[:2]
            assert store.trace_path(fp).exists()
            assert store.trace_path(fp).parent.parent.name == fp[:2]
        top = json.loads((tmp_path / "c" / "manifest.json").read_text())
        assert top["version"] == 3
        assert top["shards"] == store.shard_ids

    def test_width_zero_is_a_single_bucket(
        self, tmp_path, racy_program, corpus
    ):
        store = _build_store(
            tmp_path / "c", racy_program, corpus, shard_width=0
        )
        assert store.shard_ids == ["all"]
        reopened = TraceStore.open(tmp_path / "c")
        assert reopened.shard_width == 0
        assert set(reopened.entries) == set(store.entries)

    def test_matrix_files_are_per_shard_with_index(
        self, tmp_path, racy_program, corpus
    ):
        store = _build_store(tmp_path / "c", racy_program, corpus)
        pipeline = IncrementalPipeline(store, program=racy_program)
        pipeline.bootstrap()
        pipeline.save()
        index = json.loads((tmp_path / "c" / "evalmatrix.json").read_text())
        assert index["version"] == 2
        assert index["shards"] == store.shard_ids
        for sid in store.shard_ids:
            assert store.shard_matrix_path(sid).exists()

    def test_evict_removes_entry_and_body(self, tmp_path, racy_program, corpus):
        store = _build_store(tmp_path / "c", racy_program, corpus)
        fp = sorted(store.entries)[0]
        path = store.trace_path(fp)
        assert store.evict(fp)
        assert fp not in store.entries
        assert not path.exists()
        assert not store.evict(fp)
        store.save()
        assert fp not in TraceStore.open(tmp_path / "c").entries


class TestMigration:
    def test_v1_opens_as_current_version_in_place(
        self, tmp_path, racy_program, corpus
    ):
        reference = _build_store(tmp_path / "ref", racy_program, corpus)
        ref_pipeline = IncrementalPipeline(reference, program=racy_program)
        ref_pipeline.bootstrap()
        ref_pipeline.save()

        v1 = tmp_path / "v1"
        _downgrade_to_v1(tmp_path / "ref", v1)
        migrated = TraceStore.open(v1)

        manifest = json.loads((v1 / "manifest.json").read_text())
        assert manifest["version"] == 3
        assert manifest["shard_width"] == 2
        assert not (v1 / "traces").exists()
        assert set(migrated.entries) == set(reference.entries)
        # and it stays open-able (idempotent end state)
        again = TraceStore.open(v1)
        assert set(again.entries) == set(migrated.entries)

    def test_migrated_analyze_is_warm_and_identical(
        self, tmp_path, racy_program, corpus
    ):
        reference = _build_store(tmp_path / "ref", racy_program, corpus)
        ref_pipeline = IncrementalPipeline(reference, program=racy_program)
        ref_pipeline.bootstrap()
        ref_pipeline.save()

        v1 = tmp_path / "v1"
        _downgrade_to_v1(tmp_path / "ref", v1)
        pipeline = IncrementalPipeline(
            TraceStore.open(v1), program=racy_program
        )
        pipeline.bootstrap()
        # every memoized pair survived the split: zero re-evaluations
        assert pipeline.matrix.pair_evaluations == 0
        assert pipeline.matrix.pair_hits > 0
        assert pipeline.fully == ref_pipeline.fully
        assert pipeline.dag.structure() == ref_pipeline.dag.structure()
        for mine, theirs in zip(pipeline.logs, ref_pipeline.logs):
            assert dict(mine.observations) == dict(theirs.observations)
            assert mine.failed == theirs.failed

    def test_split_then_merge_round_trips(self, tmp_path, racy_program, corpus):
        store = _build_store(tmp_path / "c", racy_program, corpus)
        pipeline = IncrementalPipeline(store, program=racy_program)
        pipeline.bootstrap()
        pipeline.save()
        sharded = store.eval_matrix()
        sharded.load_all()
        merged = merge_matrices(
            sharded.shard(sid) for sid in sharded.persisted_shard_ids()
        )
        again = split_matrix(merged, store.shard_id)
        for sid, shard in again.items():
            original = sharded.shard(sid)
            assert shard.traces == original.traces
            assert shard.evaluated == original.evaluated
            assert shard.observed == original.observed
            assert shard.observations == original.observations

    def test_unsupported_version_still_rejected(self, tmp_path):
        root = tmp_path / "c"
        root.mkdir()
        (root / "manifest.json").write_text(json.dumps({"version": 99}))
        with pytest.raises(CorpusError, match="unsupported corpus version"):
            TraceStore.open(root)


class TestShardParallelDeterminism:
    def test_cli_jobs_1_equals_jobs_8(self, tmp_path, capsys):
        # Two identical corpora so both runs are cold; the printed
        # report (including evaluation counts) must match byte for byte.
        outs = []
        for name, jobs in (("a", None), ("b", "8")):
            corpus_dir = str(tmp_path / name)
            assert main(["corpus", "init", corpus_dir, "--workload", "network"]) == 0
            assert main(["corpus", "ingest", corpus_dir, "--runs", "6"]) == 0
            capsys.readouterr()
            argv = ["corpus", "analyze", corpus_dir]
            if jobs:
                argv += ["--jobs", jobs]
            assert main(argv) == 0
            outs.append(capsys.readouterr().out)
        assert outs[0] == outs[1]

    def test_engine_bootstrap_matches_serial(
        self, tmp_path, racy_program, corpus
    ):
        serial_store = _build_store(tmp_path / "s", racy_program, corpus)
        serial = IncrementalPipeline(serial_store, program=racy_program)
        serial.bootstrap()

        engine = ExecutionEngine(backend=make_backend("thread", 8))
        try:
            parallel = IncrementalPipeline(
                _build_store(tmp_path / "p", racy_program, corpus),
                program=racy_program,
            )
            parallel.bootstrap(engine=engine)
        finally:
            engine.close()

        assert parallel.fully == serial.fully
        assert parallel.failure_pid == serial.failure_pid
        assert parallel.dag.structure() == serial.dag.structure()
        assert parallel.debugger.counts == serial.debugger.counts
        assert parallel.dag.n_failed_logs == serial.dag.n_failed_logs
        for a, b in zip(parallel.logs, serial.logs):
            assert dict(a.observations) == dict(b.observations)
            assert (a.failed, a.seed) == (b.failed, b.seed)

    def test_prefrozen_suite_skips_discovery_and_matches(
        self, tmp_path, racy_program, corpus
    ):
        store = _build_store(tmp_path / "c", racy_program, corpus)
        reference = IncrementalPipeline(store, program=racy_program)
        reference.bootstrap()

        engine = ExecutionEngine(backend=make_backend("thread", 4))
        try:
            warm = IncrementalPipeline(
                _build_store(tmp_path / "w", racy_program, corpus),
                program=racy_program,
                suite=reference.suite,
            )
            warm.bootstrap(engine=engine)
        finally:
            engine.close()
        assert warm.fully == reference.fully
        assert warm.dag.structure() == reference.dag.structure()
        for a, b in zip(warm.logs, reference.logs):
            assert dict(a.observations) == dict(b.observations)
            assert (a.failed, a.seed) == (b.failed, b.seed)

    def test_merged_dag_equals_rebuild(self, tmp_path, racy_program, corpus):
        store = _build_store(tmp_path / "c", racy_program, corpus)
        pipeline = IncrementalPipeline(store, program=racy_program)
        pipeline.bootstrap()
        assert pipeline.dag.structure() == pipeline.rebuild().structure()


def _obs(t: int) -> Observation:
    return Observation(start=t, end=t)


class TestACDagMerge:
    """Handcrafted partial DAGs: the merge is the intersection."""

    F = "FAILURE[f]"

    def _defs(self):
        defs = {
            pid: ExecutedPredicate(key=MethodKey(pid, "t", 0))
            for pid in ("A", "B", "C")
        }
        fail = FailurePredicate(signature="f")
        defs = {d.pid: d for d in defs.values()}
        defs[fail.pid] = fail
        return defs

    def _pid(self, name: str) -> str:
        return self.F if name == "F" else f"exec[t:{name}#0]"

    def _log(self, times: dict[str, int]) -> PredicateLog:
        return PredicateLog(
            observations={self._pid(n): _obs(t) for n, t in times.items()},
            failed=True,
        )

    def test_merge_equals_global_build(self):
        logs_a = [self._log({"A": 1, "B": 2, "C": 3, "F": 4})] * 2
        # B drifts after C in the second slice: the B->C edge must die
        # in the merged DAG even though slice A supports it.
        logs_b = [self._log({"A": 1, "B": 5, "C": 3, "F": 6})]
        build = lambda logs: ACDag.build(
            defs=self._defs(), failed_logs=logs, failure=self.F
        )
        merged = ACDag.merge([build(logs_a), build(logs_b)])
        rebuilt = build(logs_a + logs_b)
        assert merged.structure() == rebuilt.structure()
        assert merged.n_failed_logs == 3
        for _, _, support in merged.graph.edges(data="support"):
            assert support == 3

    def test_merge_is_order_insensitive(self):
        logs_a = [self._log({"A": 1, "B": 2, "C": 3, "F": 4})]
        logs_b = [self._log({"A": 3, "B": 2, "C": 4, "F": 5})]
        build = lambda logs: ACDag.build(
            defs=self._defs(), failed_logs=logs, failure=self.F
        )
        ab = ACDag.merge([build(logs_a), build(logs_b)])
        ba = ACDag.merge([build(logs_b), build(logs_a)])
        assert ab.structure() == ba.structure()

    def test_merge_rejects_mismatched_failures(self):
        logs = [self._log({"A": 1, "F": 2})]
        dag = ACDag.build(defs=self._defs(), failed_logs=logs, failure=self.F)
        other_defs = dict(self._defs())
        other_fail = FailurePredicate(signature="g")
        other_defs[other_fail.pid] = other_fail
        other = ACDag.build(
            defs=other_defs,
            failed_logs=[
                PredicateLog(
                    observations={
                        self._pid("A"): _obs(1),
                        other_fail.pid: _obs(2),
                    },
                    failed=True,
                )
            ],
            failure=other_fail.pid,
        )
        with pytest.raises(GraphInvariantError, match="different failure"):
            ACDag.merge([dag, other])

    def test_merge_of_one_copies(self):
        logs = [self._log({"A": 1, "B": 2, "F": 3})]
        dag = ACDag.build(defs=self._defs(), failed_logs=logs, failure=self.F)
        merged = ACDag.merge([dag])
        assert merged is not dag
        assert merged.structure() == dag.structure()


class TestIncrementalDebuggerMerge:
    def test_merge_equals_extend(self):
        logs_a = [
            PredicateLog(observations={"p": _obs(1)}, failed=True),
            PredicateLog(observations={"q": _obs(1)}, failed=False),
        ]
        logs_b = [
            PredicateLog(observations={"p": _obs(2), "q": _obs(3)}, failed=True),
        ]
        whole = IncrementalDebugger()
        whole.extend(logs_a + logs_b)
        left, right = IncrementalDebugger(), IncrementalDebugger()
        left.extend(logs_a)
        right.extend(logs_b)
        merged = IncrementalDebugger().merge(left).merge(right)
        assert merged.counts == whole.counts
        assert merged.n_failed == whole.n_failed
        assert merged.n_success == whole.n_success


class TestCompaction:
    def _analyzed(self, tmp_path, racy_program, corpus):
        store = _build_store(tmp_path / "c", racy_program, corpus)
        pipeline = IncrementalPipeline(store, program=racy_program)
        pipeline.bootstrap()
        pipeline.save()
        return store, pipeline

    def test_compact_reclaims_shadowed_rows_and_evicted_columns(
        self, tmp_path, racy_program, corpus
    ):
        store, pipeline = self._analyzed(tmp_path, racy_program, corpus)
        # Shadow a row: a predicate from a long-gone suite lingers in
        # one shard's matrix file with its own digest.
        sid = store.shard_ids[0]
        shard = EvalMatrix(store.shard_matrix_path(sid))
        ghost = "ghost[old:Predicate#0]"
        shard.evaluated[ghost] = (1 << len(shard.traces)) - 1
        shard.observed[ghost] = 1
        shard.digests[ghost] = "digest-of-a-dropped-definition"
        shard.observations.setdefault(shard.traces[0], {})[ghost] = [0, 1, 0, 1]
        shard.save()
        # Evict one trace; its matrix column survives until compaction.
        evicted = sorted(store.entries)[-1]
        assert store.evict(evicted)
        store.save()

        fresh = IncrementalPipeline(
            TraceStore.open(store.root), program=racy_program
        )
        fresh.bootstrap()
        assert fresh.matrix.pair_evaluations == 0  # eviction costs nothing
        stats = fresh.compact()
        assert stats.dropped_rows >= 1
        assert stats.dropped_columns >= 1
        assert stats.bytes_reclaimed > 0

        compacted = EvalMatrix(store.shard_matrix_path(sid))
        assert ghost not in compacted.evaluated
        assert ghost not in compacted.digests
        # and the surviving pairs still answer from the memo
        warm = IncrementalPipeline(
            TraceStore.open(store.root), program=racy_program
        )
        warm.bootstrap()
        assert warm.matrix.pair_evaluations == 0
        assert warm.fully == fresh.fully

    def test_compact_reclaims_fully_emptied_shards(
        self, tmp_path, racy_program, corpus
    ):
        store, pipeline = self._analyzed(tmp_path, racy_program, corpus)
        victim_sid = store.shard_ids[0]
        for fp in list(store.shard_entries(victim_sid)):
            assert store.evict(fp)
        store.save()
        fresh = IncrementalPipeline(
            TraceStore.open(store.root), program=racy_program
        )
        fresh.bootstrap()
        stats = fresh.compact()
        assert stats.bytes_reclaimed > 0
        # the emptied shard's matrix file and index entry are gone, so
        # evicted columns cannot resurrect on reopen
        assert not store.shard_matrix_path(victim_sid).exists()
        reopened = TraceStore.open(store.root).eval_matrix()
        assert victim_sid not in reopened.persisted_shard_ids()
        assert reopened.n_traces == len(TraceStore.open(store.root))

    def test_rebootstrap_rediscovers_unless_suite_injected(
        self, tmp_path, racy_program
    ):
        first = collect(racy_program, n_success=8, n_fail=8)
        more = collect(racy_program, n_success=12, n_fail=12)
        held_back = [
            t
            for t in more.successes + more.failures
            if t.seed not in {x.seed for x in first.successes + first.failures}
        ]
        store = _build_store(tmp_path / "c", racy_program, first)
        pipeline = IncrementalPipeline(store, program=racy_program)
        pipeline.bootstrap()
        frozen_by_bootstrap = pipeline.suite
        for trace in held_back:
            pipeline.ingest(trace)
        pipeline.bootstrap()  # a grown corpus gets a fresh discovery
        assert pipeline.suite is not frozen_by_bootstrap

        injected = IncrementalPipeline(
            _build_store(tmp_path / "i", racy_program, first),
            program=racy_program,
            suite=frozen_by_bootstrap,
        )
        injected.bootstrap()
        injected.bootstrap()  # explicit injection survives re-bootstrap
        assert injected.suite is frozen_by_bootstrap

    def test_compact_cli_reports_reclaimed_bytes(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "c")
        assert main(["corpus", "init", corpus_dir, "--workload", "network"]) == 0
        assert main(["corpus", "ingest", corpus_dir, "--runs", "4"]) == 0
        assert main(["corpus", "analyze", corpus_dir]) == 0
        capsys.readouterr()
        # evict a trace behind the CLI's back, then compact
        store = TraceStore.open(corpus_dir)
        assert store.evict(sorted(store.entries)[0])
        store.save()
        assert main(["corpus", "compact", corpus_dir]) == 0
        out = capsys.readouterr().out
        assert "evicted trace columns" in out
        assert "reclaimed" in out


class TestShardStatsCLI:
    def test_shard_stats_lists_populated_shards(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "c")
        assert main(["corpus", "init", corpus_dir, "--workload", "network"]) == 0
        assert main(["corpus", "ingest", corpus_dir, "--runs", "3"]) == 0
        capsys.readouterr()
        assert main(["corpus", "shard-stats", corpus_dir]) == 0
        out = capsys.readouterr().out
        assert "shards (width 2)" in out
        assert "memo pairs" in out
        store = TraceStore.open(corpus_dir)
        for sid in store.shard_ids:
            assert sid in out
