"""The trace-corpus subsystem: store, eval matrix, incremental pipeline,
corpus sessions, and the ``repro corpus`` CLI."""

from __future__ import annotations

import json
import re

import pytest

from repro.cli import main
from repro.core.acdag import ACDag
from repro.core.predicates import ExecutedPredicate, FailurePredicate, Observation
from repro.core.statistical import (
    IncrementalDebugger,
    PredicateLog,
    StatisticalDebugger,
)
from repro.corpus import (
    CorpusError,
    CorpusSession,
    EvalMatrix,
    IncrementalPipeline,
    TraceStore,
)
from repro.exec.cache import RunRequest
from repro.harness.runner import collect
from repro.harness.session import AIDSession, SessionConfig
from repro.sim.serialize import (
    stable_digest,
    trace_fingerprint,
    trace_from_json,
    trace_to_json,
)
from repro.sim.tracing import MethodKey


@pytest.fixture(scope="module")
def corpus(racy_program):
    return collect(racy_program, n_success=20, n_fail=20)


@pytest.fixture
def store(tmp_path, racy_program, corpus):
    """A store seeded with 15+15 traces (5+5 held back for ingestion)."""
    store = TraceStore.init(tmp_path / "corpus", program=racy_program.name)
    for trace in corpus.successes[:15] + corpus.failures[:15]:
        _, added = store.ingest(trace)
        assert added
    store.save()
    return store


class TestFingerprints:
    def test_stable_digest_is_order_insensitive(self):
        assert stable_digest({"a": 1, "b": 2}) == stable_digest({"b": 2, "a": 1})
        assert stable_digest({"a": 1}) != stable_digest({"a": 2})

    def test_trace_fingerprint_survives_round_trip(self, corpus):
        trace = corpus.failures[0]
        restored = trace_from_json(trace_to_json(trace))
        assert trace_fingerprint(trace) == trace_fingerprint(restored)

    def test_run_request_shares_the_scheme(self):
        a = RunRequest(workload="w", seed=3, pids=frozenset({"p", "q"}))
        b = RunRequest(workload="w", seed=3, pids=frozenset({"q", "p"}))
        assert a.fingerprint == b.fingerprint
        assert len(a.fingerprint) == len(trace_fingerprint_sample())
        c = RunRequest(workload="w", seed=4, pids=frozenset({"p", "q"}))
        assert a.fingerprint != c.fingerprint


def trace_fingerprint_sample() -> str:
    return stable_digest({})


class TestTraceStore:
    def test_ingest_dedups_by_content(self, store, corpus):
        fp, added = store.ingest(corpus.successes[0])
        assert not added
        assert len(store) == 30

    def test_ingest_payload_dedups_against_live(self, store, corpus):
        payload = json.loads(trace_to_json(corpus.failures[0]))
        fp, added = store.ingest_payload(payload)
        assert not added

    def test_labels_and_signatures(self, store, corpus):
        assert store.n_pass == 15
        assert store.n_fail == 15
        sig = corpus.failures[0].failure.signature
        assert store.dominant_failure_signature() == sig
        assert store.signature_counts() == {sig: 15}

    def test_loaded_traces_carry_fingerprints(self, store):
        for trace in store.traces():
            assert trace.fingerprint in store
            assert trace_fingerprint(trace) == trace.fingerprint

    def test_labeled_corpus_round_trips(self, store, corpus):
        loaded = store.labeled_corpus()
        assert len(loaded.successes) == 15
        assert len(loaded.failures) == 15
        original = {trace_fingerprint(t) for t in corpus.failures[:15]}
        assert {t.fingerprint for t in loaded.failures} == original

    def test_warm_reopen(self, store):
        reopened = TraceStore.open(store.root)
        assert len(reopened) == len(store)
        assert reopened.program == store.program
        assert set(reopened.entries) == set(store.entries)

    def test_init_refuses_to_clobber(self, store):
        with pytest.raises(CorpusError, match="already holds"):
            TraceStore.init(store.root)

    def test_open_requires_a_corpus(self, tmp_path):
        with pytest.raises(CorpusError, match="not a corpus"):
            TraceStore.open(tmp_path / "nowhere")

    def test_rejects_foreign_program(self, store, corpus):
        payload = json.loads(trace_to_json(corpus.successes[1]))
        payload["program"] = "some-other-program"
        with pytest.raises(CorpusError, match="some-other-program"):
            store.ingest_payload(payload)


class TestEvalMatrix:
    def _suite(self, racy_program, store):
        from repro.core.extraction import PredicateSuite

        loaded = store.labeled_corpus()
        return PredicateSuite.discover(
            loaded.successes, loaded.failures, program=racy_program
        )

    def test_each_pair_evaluated_exactly_once(self, racy_program, store):
        suite = self._suite(racy_program, store)
        matrix = EvalMatrix()
        traces = list(store.traces())
        logs = [matrix.log_for(suite, t) for t in traces]
        first_pass = matrix.pair_evaluations
        assert first_pass == len(suite) * len(traces)
        again = [matrix.log_for(suite, t) for t in traces]
        assert matrix.pair_evaluations == first_pass  # zero new
        assert matrix.pair_hits == first_pass
        for a, b in zip(logs, again):
            assert dict(a.observations) == dict(b.observations)
            assert a.failed == b.failed

    def test_matrix_logs_equal_direct_evaluation(self, racy_program, store):
        suite = self._suite(racy_program, store)
        matrix = EvalMatrix()
        for trace in store.traces():
            direct = suite.evaluate(trace, seed=trace.seed)
            memoized = matrix.log_for(suite, trace)
            assert dict(direct.observations) == dict(memoized.observations)

    def test_persistence_round_trip(self, tmp_path, racy_program, store):
        suite = self._suite(racy_program, store)
        path = tmp_path / "matrix.json"
        matrix = EvalMatrix(path)
        for trace in store.traces():
            matrix.log_for(suite, trace)
        matrix.save()
        warm = EvalMatrix(path)
        for trace in store.traces():
            warm.log_for(suite, trace)
        assert warm.pair_evaluations == 0
        assert warm.pair_hits == matrix.pair_evaluations

    def test_definition_drift_invalidates_the_row(self, racy_program, store):
        from repro.core.extraction import PredicateSuite
        from repro.core.predicates import TooSlowPredicate

        key = MethodKey("Updater", "main", 0)
        slow_a = TooSlowPredicate(key=key, threshold=5)
        slow_b = TooSlowPredicate(key=key, threshold=500)
        assert slow_a.pid == slow_b.pid  # same pid, different meaning
        assert slow_a.definition_digest() != slow_b.definition_digest()
        matrix = EvalMatrix()
        trace = next(store.traces())
        matrix.log_for(PredicateSuite(defs={slow_a.pid: slow_a}), trace)
        assert matrix.pair_evaluations == 1
        matrix.log_for(PredicateSuite(defs={slow_b.pid: slow_b}), trace)
        assert matrix.pair_evaluations == 2  # re-evaluated, not served stale

    def test_bitset_counts_match_batch_sd(self, racy_program, store):
        suite = self._suite(racy_program, store)
        matrix = EvalMatrix()
        logs = [matrix.log_for(suite, t) for t in store.traces()]
        batch = StatisticalDebugger(logs=logs).stats()
        for pid, stats in batch.items():
            in_failed, in_success = matrix.counts(pid)
            assert (in_failed, in_success) == (
                stats.true_in_failed,
                stats.true_in_success,
            )


class TestIncrementalDebugger:
    def test_matches_batch_debugger(self, racy_program, store):
        from repro.core.extraction import PredicateSuite

        loaded = store.labeled_corpus()
        suite = PredicateSuite.discover(
            loaded.successes, loaded.failures, program=racy_program
        )
        logs = suite.evaluate_all(loaded.successes + loaded.failures)
        batch = StatisticalDebugger(logs=logs)
        inc = IncrementalDebugger()
        inc.extend(logs)
        assert inc.n_failed == batch.n_failed
        assert inc.n_success == batch.n_success
        assert inc.all_pids() == batch.all_pids()
        batch_stats = batch.stats()
        for pid, stats in inc.stats().items():
            assert stats == batch_stats[pid]
        assert (
            inc.fully_discriminative_pids()
            == batch.fully_discriminative_pids()
        )

    def test_empty(self):
        inc = IncrementalDebugger()
        assert inc.fully_discriminative_pids() == []
        assert inc.stats() == {}


def _obs(t: int) -> Observation:
    return Observation(start=t, end=t)


class TestIncrementalACDag:
    """Handcrafted logs: edge death, node death, and rebuild equality."""

    F = "FAILURE[f]"

    def _defs(self):
        defs = {
            pid: ExecutedPredicate(key=MethodKey(pid, "t", 0))
            for pid in ("A", "B", "C")
        }
        fail = FailurePredicate(signature="f")
        defs = {d.pid: d for d in defs.values()}
        defs[fail.pid] = fail
        return defs

    def _log(self, times: dict[str, int]) -> PredicateLog:
        observations = {
            self._pid(name): _obs(t) for name, t in times.items()
        }
        return PredicateLog(observations=observations, failed=True)

    def _pid(self, name: str) -> str:
        # MethodKey renders as thread:method#occurrence
        return self.F if name == "F" else f"exec[t:{name}#0]"

    def _build(self, logs):
        return ACDag.build(
            defs=self._defs(), failed_logs=logs, failure=self.F
        )

    def test_update_only_removes(self):
        logs = [self._log({"A": 1, "B": 2, "C": 3, "F": 4})] * 2
        dag = self._build(logs)
        before_edges = set(dag.graph.edges)
        # B now lands after C: the B->C edge must die, nothing may appear.
        new = self._log({"A": 1, "B": 5, "C": 3, "F": 6})
        removed = dag.update_failed_log(new)
        assert removed == set()
        assert set(dag.graph.edges) < before_edges
        assert (self._pid("B"), self._pid("C")) not in dag.graph.edges
        rebuilt = self._build(logs + [new])
        assert dag.structure() == rebuilt.structure()

    def test_unobserved_node_drops(self):
        logs = [self._log({"A": 1, "B": 2, "C": 3, "F": 4})] * 2
        dag = self._build(logs)
        new = self._log({"A": 1, "B": 2, "F": 4})  # C vanished
        removed = dag.update_failed_log(new)
        assert self._pid("C") in removed
        assert self._pid("C") not in dag
        rebuilt = ACDag.build(
            defs=self._defs(),
            failed_logs=logs + [new],
            failure=self.F,
            candidate_pids=[self._pid("A"), self._pid("B")],
        )
        assert dag.structure() == rebuilt.structure()

    def test_support_counters_track_log_count(self):
        logs = [self._log({"A": 1, "B": 2, "C": 3, "F": 4})] * 3
        dag = self._build(logs)
        assert dag.n_failed_logs == 3
        dag.update_failed_log(self._log({"A": 1, "B": 2, "C": 3, "F": 4}))
        assert dag.n_failed_logs == 4
        for _, _, support in dag.graph.edges(data="support"):
            assert support == 4

    def test_missing_failure_predicate_raises(self):
        logs = [self._log({"A": 1, "F": 2})]
        dag = self._build(logs)
        from repro.core.acdag import GraphInvariantError

        with pytest.raises(GraphInvariantError, match="unobserved"):
            dag.update_failed_log(self._log({"A": 1}))

    def test_restrict_to_prunes_disconnected(self):
        logs = [self._log({"A": 1, "B": 2, "C": 3, "F": 4})] * 2
        dag = self._build(logs)
        removed = dag.restrict_to({self._pid("A"), self._pid("C")})
        assert self._pid("B") in removed
        assert set(dag.graph.nodes) == {self._pid("A"), self._pid("C"), self.F}
        rebuilt = ACDag.build(
            defs=self._defs(),
            failed_logs=logs,
            failure=self.F,
            candidate_pids=[self._pid("A"), self._pid("C")],
        )
        assert dag.structure() == rebuilt.structure()


class TestIncrementalPipeline:
    def test_incremental_equals_rebuild_per_ingest(
        self, racy_program, store, corpus
    ):
        pipeline = IncrementalPipeline(store, program=racy_program)
        pipeline.bootstrap()
        held_back = corpus.successes[15:] + corpus.failures[15:]
        for trace in held_back:
            result = pipeline.ingest(trace)
            assert result.added
            rebuilt = pipeline.rebuild()
            assert pipeline.dag.structure() == rebuilt.structure()
            batch = StatisticalDebugger(logs=list(pipeline.logs))
            assert set(pipeline.debugger.fully_discriminative_pids()) == set(
                batch.fully_discriminative_pids()
            )
        assert pipeline.dag.n_failed_logs == 20

    def test_duplicate_ingest_is_a_no_op(self, racy_program, store, corpus):
        pipeline = IncrementalPipeline(store, program=racy_program)
        pipeline.bootstrap()
        before = pipeline.dag.structure()
        n_logs = len(pipeline.logs)
        result = pipeline.ingest(corpus.failures[0])
        assert not result.added
        assert pipeline.dag.structure() == before
        assert len(pipeline.logs) == n_logs

    def test_warm_restart_reevaluates_nothing(self, racy_program, store):
        pipeline = IncrementalPipeline(store, program=racy_program)
        pipeline.bootstrap()
        assert pipeline.matrix.pair_evaluations > 0
        pipeline.save()
        warm = IncrementalPipeline(TraceStore.open(store.root), program=racy_program)
        warm.bootstrap()
        assert warm.matrix.pair_evaluations == 0
        assert warm.matrix.pair_hits > 0
        assert warm.fully == pipeline.fully
        assert warm.dag.structure() == pipeline.dag.structure()

    def test_ingest_requires_bootstrap(self, racy_program, store, corpus):
        pipeline = IncrementalPipeline(store, program=racy_program)
        with pytest.raises(CorpusError, match="bootstrap"):
            pipeline.ingest(corpus.successes[0])


class TestCorpusSession:
    def test_matches_live_session_and_warm_equals_cold(
        self, tmp_path, racy_program
    ):
        # repeats >= n_fail so live and corpus sessions replay the same
        # seed set (store iteration order is fingerprint-sorted, so a
        # strict prefix would pick different seeds).
        config = SessionConfig(n_success=15, n_fail=15, repeats=15)
        live = AIDSession(racy_program, config)
        live_report = live.run()
        # Archive exactly the corpus the live session learned from.
        store = TraceStore.init(tmp_path / "c", program=racy_program.name)
        live_corpus = live.collect()
        for trace in live_corpus.successes + live_corpus.failures:
            store.ingest(trace)
        store.save()

        cold = CorpusSession(racy_program, store, config)
        cold_report = cold.run()
        assert cold.matrix.pair_evaluations > 0
        cold.save()
        assert cold_report.causal_path == live_report.causal_path
        assert (
            cold_report.fully_discriminative
            == live_report.fully_discriminative
        )

        warm = CorpusSession(racy_program, TraceStore.open(store.root), config)
        warm_report = warm.run()
        assert warm.matrix.pair_evaluations == 0  # zero already-seen pairs
        assert warm.matrix.pair_hits == cold.matrix.pair_evaluations
        assert warm_report.causal_path == cold_report.causal_path
        assert warm_report.explanation.render() == cold_report.explanation.render()

    def test_rejects_mismatched_program(self, tmp_path, racy_program):
        store = TraceStore.init(tmp_path / "c", program="something-else")
        with pytest.raises(CorpusError, match="something-else"):
            CorpusSession(racy_program, store)

    def test_empty_corpus_refused(self, tmp_path, racy_program):
        store = TraceStore.init(tmp_path / "c", program=racy_program.name)
        session = CorpusSession(racy_program, store)
        with pytest.raises(CorpusError, match="no failed traces"):
            session.collect()


class TestCorpusCLI:
    def test_full_round_trip(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "c1")
        trace_file = str(tmp_path / "t3.json")

        assert main(["corpus", "init", corpus_dir, "--workload", "network"]) == 0
        assert "initialized empty corpus" in capsys.readouterr().out

        assert main(["trace", "network", "--seed", "3", "-o", trace_file]) == 0
        capsys.readouterr()

        assert main(["corpus", "ingest", corpus_dir, trace_file]) == 0
        assert "ingested 1 new, 0 duplicate" in capsys.readouterr().out
        assert main(["corpus", "ingest", corpus_dir, trace_file]) == 0
        assert "ingested 0 new, 1 duplicate" in capsys.readouterr().out

        assert main(["corpus", "ingest", corpus_dir, "--runs", "8"]) == 0
        capsys.readouterr()

        assert main(["corpus", "stats", corpus_dir]) == 0
        out = capsys.readouterr().out
        assert "8 fail" in out
        assert "network-controlplane" in out

        evaluation = re.compile(r"evaluation: (\d+) fresh, (\d+) answered")

        assert main(["corpus", "analyze", corpus_dir]) == 0
        cold = capsys.readouterr().out
        assert "fully discriminative" in cold
        fresh, hits = map(int, evaluation.search(cold).groups())
        assert fresh > 0 and hits == 0

        assert main(["corpus", "analyze", corpus_dir]) == 0
        warm = capsys.readouterr().out
        fresh, hits = map(int, evaluation.search(warm).groups())
        assert fresh == 0 and hits > 0

        assert main(["debug", "network", "--corpus", corpus_dir]) == 0
        out = capsys.readouterr().out
        assert "0 fresh predicate evaluations" in out
        assert "root cause" in out

    def test_ingest_rejects_bad_files_cleanly(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "c3")
        assert main(["corpus", "init", corpus_dir]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="cannot read"):
            main(["corpus", "ingest", corpus_dir, str(tmp_path / "missing.json")])
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="not a trace file"):
            main(["corpus", "ingest", corpus_dir, str(bad)])

    def test_midbatch_failure_keeps_earlier_traces(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "c4")
        good = str(tmp_path / "good.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["corpus", "init", corpus_dir]) == 0
        assert main(["trace", "network", "--seed", "1", "-o", good]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(["corpus", "ingest", corpus_dir, good, str(bad)])
        # the good trace made it into the manifest before the failure
        store = TraceStore.open(corpus_dir)
        assert len(store) == 1

    def test_ingest_runs_continues_past_stored_seeds(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "c5")
        assert main(["corpus", "init", corpus_dir, "--workload", "network"]) == 0
        assert main(["corpus", "ingest", corpus_dir, "--runs", "4"]) == 0
        capsys.readouterr()
        # a repeat sweep starts past the stored seeds -> fresh traces
        assert main(["corpus", "ingest", corpus_dir, "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "ingested 4 new" in out

    def test_debug_corpus_missing_dir(self, tmp_path, capsys):
        with pytest.raises(SystemExit, match="not a corpus"):
            main(["debug", "network", "--corpus", str(tmp_path / "nope")])

    def test_analyze_empty_corpus_fails_cleanly(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "c2")
        assert main(["corpus", "init", corpus_dir]) == 0
        with pytest.raises(SystemExit, match="no failed traces"):
            main(["corpus", "analyze", corpus_dir])
