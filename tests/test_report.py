"""Explanation rendering and experiment table formatting."""

from __future__ import annotations

from repro.core.discovery import DiscoveryResult
from repro.core.intervention import InterventionBudget
from repro.core.predicates import ExecutedPredicate, FailurePredicate
from repro.core.report import explain
from repro.harness.tables import render_table
from repro.sim.tracing import MethodKey


def _result(path):
    budget = InterventionBudget()
    budget.rounds = 6
    budget.executions = 42
    return DiscoveryResult(
        causal_path=path, failure=path[-1], spurious=[], budget=budget
    )


def _defs(pids):
    defs = {}
    for pid in pids:
        if pid.startswith("FAILURE"):
            defs[pid] = FailurePredicate(signature="sig")
        else:
            defs[pid] = ExecutedPredicate(key=MethodKey(pid, "t", 0))
    return defs


class TestExplanation:
    def test_roles_and_numbering(self):
        path = ["root", "mid", "FAILURE[sig]"]
        explanation = explain(_result(path), _defs(path))
        roles = [s.role for s in explanation.steps]
        assert roles == ["root cause", "effect", "failure"]
        assert [s.index for s in explanation.steps] == [1, 2, 3]
        assert explanation.root_cause.pid == "root"

    def test_render_mentions_everything(self):
        path = ["root", "FAILURE[sig]"]
        text = explain(_result(path), _defs(path)).render()
        assert "(1) [root cause]" in text
        assert "6 intervention rounds" in text
        assert "42 executions" in text

    def test_empty_path_renders_gracefully(self):
        path = ["FAILURE[sig]"]
        explanation = explain(_result(path), _defs(path))
        assert explanation.root_cause is None
        assert "No causal predicate" in explanation.render()

    def test_unknown_pid_falls_back_to_pid(self):
        path = ["mystery", "FAILURE[sig]"]
        explanation = explain(_result(path), _defs(["FAILURE[sig]"]))
        assert explanation.steps[0].description == "mystery"


class TestTables:
    def test_alignment_and_title(self):
        text = render_table(
            headers=["name", "value"],
            rows=[["a", 1], ["long-name", 123456]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert len(set(len(line) for line in lines[1:3])) == 1

    def test_float_formatting(self):
        text = render_table(["x"], [[1.0], [2.375], [1.23e9]])
        assert text.splitlines()[2].strip() == "1"  # integral floats
        assert "2.38" in text  # rounded to two decimals
        assert "e+09" in text  # scientific for huge values


class TestSDRanking:
    def test_renders_ranked_list(self, racy_session):
        from repro.core.report import render_sd_ranking

        debugger = racy_session.analyze()
        text = render_sd_ranking(
            debugger.ranked(), racy_session._suite.defs, limit=3
        )
        assert "P=1.00 R=1.00" in text
        assert "more predicates" in text
        assert "suspect" in text

    def test_limit_zero_hides_everything(self, racy_session):
        from repro.core.report import render_sd_ranking

        debugger = racy_session.analyze()
        text = render_sd_ranking(debugger.ranked(), {}, limit=0)
        assert "more predicates" in text
