"""AID on non-crash failure modes: deadlocks and hangs.

The paper targets crashes, unresponsiveness (hangs), and data
corruption.  These tests build two bonus bug programs — a lock-ordering
deadlock and an infinite-retry hang — and verify the full pipeline
localizes both.
"""

from __future__ import annotations

import pytest

from repro.core import Approach
from repro.harness.session import AIDSession, SessionConfig
from repro.sim import Program, run_program


def _deadlock_program() -> Program:
    """Classic lock-ordering bug: a rarely-taken path reverses the
    acquisition order of two locks."""

    def main(ctx):
        ctx.poke("reversed", ctx.rand() < 0.35)
        yield from ctx.spawn("worker", "TransferWorker")
        yield from ctx.call("LedgerSweep")
        yield from ctx.join("worker")
        return "ok"

    def ledger_sweep(ctx):
        yield from ctx.acquire("accounts")
        yield from ctx.work(15)
        yield from ctx.acquire("journal")
        yield from ctx.work(3)
        yield from ctx.release("journal")
        yield from ctx.release("accounts")
        return "swept"

    def transfer_worker(ctx):
        yield from ctx.work(2)
        if ctx.peek("reversed"):
            # The buggy fast path takes the locks in the wrong order.
            yield from ctx.call("FastTransfer")
        else:
            yield from ctx.call("SafeTransfer")
        return "transferred"

    def fast_transfer(ctx):
        yield from ctx.acquire("journal")
        yield from ctx.work(15)
        yield from ctx.acquire("accounts")
        yield from ctx.release("accounts")
        yield from ctx.release("journal")
        return "fast"

    def safe_transfer(ctx):
        yield from ctx.acquire("accounts")
        yield from ctx.work(3)
        yield from ctx.acquire("journal")
        yield from ctx.release("journal")
        yield from ctx.release("accounts")
        return "safe"

    return Program(
        name="deadlock-bug",
        methods={
            "Main": main,
            "LedgerSweep": ledger_sweep,
            "TransferWorker": transfer_worker,
            "FastTransfer": fast_transfer,
            "SafeTransfer": safe_transfer,
        },
        main="Main",
        readonly_methods=frozenset({"FastTransfer", "SafeTransfer"}),
    )


def _hang_program() -> Program:
    """Unresponsiveness: a doomed path spins in an unbounded retry loop."""

    def main(ctx):
        ctx.poke("flaky_backend", ctx.rand() < 0.35)
        yield from ctx.call("SubmitJob")
        return "ok"

    def submit_job(ctx):
        status = yield from ctx.call("PushToBackend")
        if status != "accepted":
            yield from ctx.call("RetryForever")
        return status

    def push_to_backend(ctx):
        yield from ctx.work(3)
        return "rejected" if ctx.peek("flaky_backend") else "accepted"

    def retry_forever(ctx):
        while True:  # the bug: no retry budget
            yield from ctx.work(5)

    return Program(
        name="hang-bug",
        methods={
            "Main": main,
            "SubmitJob": submit_job,
            "PushToBackend": push_to_backend,
            "RetryForever": retry_forever,
        },
        main="Main",
        readonly_methods=frozenset({"PushToBackend", "RetryForever"}),
    )


class TestDeadlock:
    @pytest.fixture(scope="class")
    def session(self):
        s = AIDSession(
            _deadlock_program(),
            SessionConfig(n_success=30, n_fail=30, repeats=15, max_steps=3000),
        )
        s.build_dag()
        return s

    def test_failure_mode_is_deadlock(self, session):
        corpus = session.collect()
        assert all(t.failure.mode == "deadlock" for t in corpus.failures)

    def test_intermittent(self):
        program = _deadlock_program()
        outcomes = [
            run_program(program, s, max_steps=3000).failed for s in range(60)
        ]
        assert any(outcomes) and not all(outcomes)

    def test_aid_blames_the_reversed_path(self, session):
        report = session.run(Approach.AID)
        root = report.discovery.root_cause
        assert root is not None
        assert "FastTransfer" in root, report.causal_path

    def test_repair_unblocks_the_program(self, session):
        from repro.sim import Simulator

        report = session.run(Approach.AID)
        injections = session._suite[report.discovery.root_cause].interventions()
        simulator = Simulator(session.program, max_steps=3000)
        for seed in range(60):
            assert not simulator.run(seed, injections).failed


class TestHang:
    @pytest.fixture(scope="class")
    def session(self):
        s = AIDSession(
            _hang_program(),
            SessionConfig(n_success=30, n_fail=30, repeats=15, max_steps=2000),
        )
        s.build_dag()
        return s

    def test_failure_mode_is_hang(self, session):
        corpus = session.collect()
        assert all(t.failure.mode == "hang" for t in corpus.failures)

    def test_aid_blames_the_rejection_or_retry(self, session):
        report = session.run(Approach.AID)
        path = " ".join(report.causal_path)
        assert "PushToBackend" in path or "RetryForever" in path

    def test_explanation_produced(self, session):
        report = session.run(Approach.AID)
        assert "[root cause]" in report.explanation.render()
