"""Compound conjunctions (paper Section 3.2): modeling nondeterminism.

The target program fails only when TWO independent conditions coincide
(a slow fetch AND a stale cache flag).  Each condition alone also occurs
in successful runs, so no single predicate is fully discriminative — but
their conjunction is, and AID equipped with the compound extractor finds
it as the root cause.
"""

from __future__ import annotations

import pytest

from repro.core import Approach, PredicateKind
from repro.core.extraction import (
    CompoundConjunctionExtractor,
    default_extractors,
)
from repro.harness.session import AIDSession, SessionConfig
from repro.sim import Program


def _conjunction_program() -> Program:
    """Fails iff the slow-fetch path AND the stale-cache path both run.

    Each path alone also occurs in successful runs (≈45% of the time),
    so ``exec[RetrySlowFetch]`` and ``exec[EvictStaleEntry]`` each have
    perfect recall but imperfect precision — only their conjunction is
    fully discriminative, the paper's Section 3.2 scenario.
    """

    def main(ctx):
        ctx.poke("slow", ctx.rand() < 0.45)
        ctx.poke("stale", ctx.rand() < 0.45)
        yield from ctx.call("FetchRecord")
        yield from ctx.call("RefreshCache")
        yield from ctx.call("Assemble")
        return "ok"

    def fetch_record(ctx):
        yield from ctx.work(3)
        if ctx.peek("slow"):
            yield from ctx.call("RetrySlowFetch")
        return "record"

    def retry_slow_fetch(ctx):
        yield from ctx.work(10)
        ctx.poke("degraded_fetch", True)
        return "retried"

    def refresh_cache(ctx):
        yield from ctx.work(3)
        if ctx.peek("stale"):
            yield from ctx.call("EvictStaleEntry")
        return "refreshed"

    def evict_stale_entry(ctx):
        yield from ctx.work(4)
        ctx.poke("evicted", True)
        return "evicted"

    def assemble(ctx):
        yield from ctx.work(2)
        if ctx.peek("degraded_fetch") and ctx.peek("evicted"):
            # Degraded fetch + evicted entry: nothing valid to serve.
            ctx.throw("StaleAssembly", "no valid source")
        return "assembled"

    return Program(
        name="conjunction",
        methods={
            "Main": main,
            "FetchRecord": fetch_record,
            "RetrySlowFetch": retry_slow_fetch,
            "RefreshCache": refresh_cache,
            "EvictStaleEntry": evict_stale_entry,
            "Assemble": assemble,
        },
        main="Main",
        readonly_methods=frozenset(
            {"FetchRecord", "RetrySlowFetch", "RefreshCache",
             "EvictStaleEntry", "Assemble"}
        ),
    )


@pytest.fixture(scope="module")
def session():
    extractors = default_extractors() + [CompoundConjunctionExtractor()]
    s = AIDSession(
        _conjunction_program(),
        SessionConfig(n_success=40, n_fail=40, repeats=20, extractors=extractors),
    )
    s.build_dag()
    return s


class TestCompoundExtraction:
    def test_no_single_predicate_is_fully_discriminative(self, session):
        singles = [
            pid
            for pid in session.fully_discriminative
            if not pid.startswith("and(")
            # the downstream crash symptom is genuinely discriminative
            and not pid.startswith("fails(StaleAssembly)")
        ]
        assert singles == []

    def test_conjunction_is_fully_discriminative(self, session):
        compounds = [
            pid for pid in session.fully_discriminative if pid.startswith("and(")
        ]
        assert compounds, "the slow∧stale conjunction must survive SD"
        compound = compounds[0]
        assert "exec[main:RetrySlowFetch#0]" in compound
        assert "exec[main:EvictStaleEntry#0]" in compound

    def test_compound_kind_and_parts(self, session):
        pid = next(
            p for p in session.fully_discriminative if p.startswith("and(")
        )
        pred = session._suite[pid]
        assert pred.kind is PredicateKind.COMPOUND_AND
        assert len(pred.parts) == 2

    def test_aid_confirms_the_conjunction_as_root_cause(self, session):
        report = session.run(Approach.AID)
        root = report.discovery.root_cause
        assert root is not None and root.startswith("and("), report.causal_path
        # Repairing the conjunction (both parts) stops the failure:
        assert report.n_causal >= 1

    def test_explanation_renders_both_conjuncts(self, session):
        report = session.run(Approach.AID)
        text = report.explanation.render()
        assert " AND " in text


class TestExtractorEdgeCases:
    def test_no_compounds_when_singles_suffice(self, racy_session):
        corpus = racy_session.collect()
        extractor = CompoundConjunctionExtractor()
        compounds = extractor.discover(corpus.successes, corpus.failures)
        # The race predicate is already fully discriminative; compounds
        # built from *imperfect* parts may exist but never duplicate it.
        for compound in compounds:
            assert all(
                not part.pid.startswith("race(") for part in compound.parts
            )

    def test_max_compounds_cap(self, session):
        corpus = session.collect()
        capped = CompoundConjunctionExtractor(max_compounds=1)
        assert len(capped.discover(corpus.successes, corpus.failures)) <= 1
