"""Every example script must run cleanly (they are living documentation)."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py"),
    key=lambda p: p.name,
)

#: Expected snippets in each example's stdout.
EXPECTED = {
    "quickstart.py": ["root cause", "data race on 'balance'", "digraph"],
    "npgsql_data_race.py": ["fully discriminative: 14", "root cause"],
    "synthetic_sweep.py": ["Figure 8", "exact causal path: True"],
    "custom_predicates.py": ["negret[", "root cause"],
    "theory_bounds.py": ["Lemma 1", "agree=True"],
    "offline_corpus.py": [
        "archived",
        "AC-DAG from the archived corpus",
        "warm re-analysis: 0 fresh evaluations",
        "equals a full rebuild",
    ],
}


def test_every_example_is_covered():
    assert {p.name for p in EXAMPLES} == set(EXPECTED)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    env = dict(os.environ, REPRO_APPS="5")  # keep the sweep example quick
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for snippet in EXPECTED[script.name]:
        assert snippet in result.stdout, (script.name, snippet)
