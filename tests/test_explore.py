"""Schedule-space exploration: strategies, replay, driver, spec, CLI."""

from __future__ import annotations

import json

import pytest

from repro.api.events import EventBus, EventLog
from repro.api.registry import (
    RegistryError,
    strategies,
    strategy_factory,
)
from repro.api.spec import CollectionSpec, RunSpec, WorkloadSpec
from repro.corpus import CorpusSession, TraceStore
from repro.explore import (
    DelayStrategy,
    ExplorationDriver,
    ExploreConfig,
    PCTStrategy,
    explore,
)
from repro.harness.session import SessionConfig
from repro.sim import (
    RandomStrategy,
    ReplayStrategy,
    Schedule,
    ScheduleError,
    Simulator,
)
from repro.sim.serialize import stable_digest, trace_to_dict
from repro.workloads.common import REGISTRY


def _digest(result) -> str:
    return stable_digest(trace_to_dict(result.trace))


@pytest.fixture(scope="module")
def npgsql():
    return REGISTRY.build("npgsql").program


# ---------------------------------------------------------------------------
# The strategy seam
# ---------------------------------------------------------------------------


class TestStrategySeam:
    def test_default_path_is_random_strategy(self, npgsql):
        """run(seed) and run(seed, strategy=RandomStrategy(seed)) are
        the same execution — the refactor's byte-identity contract."""
        sim = Simulator(npgsql)
        for seed in range(5):
            implicit = sim.run(seed)
            explicit = sim.run(seed, strategy=RandomStrategy(seed))
            assert _digest(implicit) == _digest(explicit)
            assert implicit.schedule.decisions == explicit.schedule.decisions

    @pytest.mark.parametrize(
        "factory",
        [
            lambda seed: RandomStrategy(seed),
            lambda seed: PCTStrategy(seed, depth=3),
            lambda seed: DelayStrategy(seed, delays=2),
        ],
        ids=["random", "pct", "delay"],
    )
    def test_every_strategy_is_deterministic(self, npgsql, factory):
        sim = Simulator(npgsql)
        for seed in (0, 7, 23):
            a = sim.run(seed, strategy=factory(seed))
            b = sim.run(seed, strategy=factory(seed))
            assert _digest(a) == _digest(b)
            assert a.schedule == b.schedule

    def test_strategies_explore_different_schedules(self, npgsql):
        sim = Simulator(npgsql)
        seed = 3
        sigs = {
            name: sim.run(
                seed, strategy=strategy_factory(name, {})(seed)
            ).schedule.signature()
            for name in ("random", "pct", "delay")
        }
        assert len(set(sigs.values())) > 1

    def test_bad_strategy_choice_rejected(self, npgsql):
        class Liar:
            def choose(self, point):
                return "no-such-thread"

        with pytest.raises(ScheduleError):
            Simulator(npgsql).run(0, strategy=Liar())

    def test_strategy_factory_carries_params(self, npgsql):
        factory = strategy_factory("pct", {"depth": 5})
        strategy = factory(9)
        assert isinstance(strategy, PCTStrategy)
        assert strategy.depth == 5 and strategy.seed == 9

    def test_unknown_strategy_fails_fast(self):
        with pytest.raises(RegistryError, match="pct"):
            strategy_factory("does-not-exist")

    def test_param_validation(self):
        with pytest.raises(ValueError):
            PCTStrategy(seed=0, depth=0)
        with pytest.raises(ValueError):
            DelayStrategy(seed=0, delays=-1)

    def test_registered_names(self):
        assert {"random", "pct", "delay", "replay"} <= set(
            strategies.names()
        )


# ---------------------------------------------------------------------------
# Recorded schedules and replay
# ---------------------------------------------------------------------------


class TestSchedule:
    def test_round_trip(self, tmp_path):
        schedule = Schedule(
            program="p", seed=4, decisions=("main", "t1", "main")
        )
        assert Schedule.from_json(schedule.to_json()) == schedule
        path = schedule.save(tmp_path / "s.json")
        assert Schedule.load(path) == schedule

    def test_signature_excludes_seed(self):
        a = Schedule(program="p", seed=1, decisions=("main", "t1"))
        b = Schedule(program="p", seed=99, decisions=("main", "t1"))
        assert a.signature() == b.signature()
        assert a.signature() != Schedule(
            program="p", seed=1, decisions=("t1", "main")
        ).signature()

    def test_transitions_include_start_edge(self):
        schedule = Schedule(program="p", seed=0, decisions=("a", "b", "a"))
        assert schedule.transitions() == frozenset(
            {("", "a"), ("a", "b"), ("b", "a")}
        )

    def test_rejects_bad_documents(self):
        with pytest.raises(ScheduleError):
            Schedule.from_json("not json")
        with pytest.raises(ScheduleError):
            Schedule.from_dict({"schema": 999, "program": "p", "seed": 0})
        with pytest.raises(ScheduleError):
            Schedule.from_dict(
                {"schema": 1, "program": "p", "seed": 0, "decisions": [1]}
            )

    def test_replay_reproduces_recording(self, npgsql):
        sim = Simulator(npgsql)
        for seed in range(8):
            recorded = sim.run(seed, strategy=PCTStrategy(seed, depth=3))
            replayed = sim.run(
                seed, strategy=ReplayStrategy(schedule=recorded.schedule)
            )
            assert _digest(replayed) == _digest(recorded)
            assert replayed.schedule == recorded.schedule

    def test_replay_round_trips_through_disk(self, npgsql, tmp_path):
        sim = Simulator(npgsql)
        recorded = sim.run(5, strategy=DelayStrategy(5, delays=2))
        path = recorded.schedule.save(tmp_path / "s.json")
        loaded = Schedule.load(path)
        replayed = sim.run(
            loaded.seed, strategy=ReplayStrategy(schedule=loaded)
        )
        assert _digest(replayed) == _digest(recorded)

    def test_replay_reproduces_under_interventions(self, npgsql):
        """The reproducibility contract interventions depend on: same
        (program, interventions, schedule) -> same trace."""
        from repro.sim import DelayBefore, MethodSelector

        sim = Simulator(npgsql)
        method = npgsql.main
        injection = (
            DelayBefore(selector=MethodSelector(method=method), ticks=3),
        )
        recorded = sim.run(2, injection, strategy=PCTStrategy(2))
        replayed = sim.run(
            2, injection, strategy=ReplayStrategy(schedule=recorded.schedule)
        )
        assert _digest(replayed) == _digest(recorded)

    def test_replay_flags_divergence(self, npgsql):
        sim = Simulator(npgsql)
        recorded = sim.run(0).schedule
        # A foreign decision list cannot follow this program's ready
        # sets to the end; the strategy falls back and flags it.
        bogus = Schedule(
            program=recorded.program,
            seed=0,
            decisions=("main",) * (len(recorded) + 40),
        )
        strategy = ReplayStrategy(schedule=bogus)
        sim.run(0, strategy=strategy)
        assert strategy.diverged

    def test_prefix_replay_allows_novel_tail(self, npgsql):
        sim = Simulator(npgsql)
        recorded = sim.run(1)
        cut = max(1, len(recorded.schedule) // 2)
        strategy = ReplayStrategy(
            schedule=recorded.schedule,
            prefix=cut,
            tail=RandomStrategy(999),
        )
        mutated = sim.run(1, strategy=strategy)
        assert (
            mutated.schedule.decisions[:cut]
            == recorded.schedule.decisions[:cut]
        )
        assert not strategy.diverged


# ---------------------------------------------------------------------------
# The exploration driver
# ---------------------------------------------------------------------------


class TestDriver:
    def test_run_is_deterministic(self, npgsql):
        cfg = ExploreConfig(budget=60, strategy="pct")
        a = explore(npgsql, cfg).to_dict()
        b = explore(npgsql, cfg).to_dict()
        assert a == b

    def test_finds_and_verifies_failures(self, npgsql):
        result = explore(npgsql, ExploreConfig(budget=80, strategy="pct"))
        assert result.failures, "80 executions must surface a failure"
        assert result.all_replays_verified
        assert all(
            f.replay_verified is True for f in result.failures
        )

    def test_frontier_dedups_by_coverage(self, npgsql):
        driver = ExplorationDriver(npgsql, ExploreConfig(budget=80))
        driver.run()
        sigs = [s.signature() for s in driver.frontier]
        assert len(sigs) == len(set(sigs))
        # every frontier member earned its place with a novel edge, and
        # the union of frontier transitions is within global coverage
        for schedule in driver.frontier:
            assert schedule.transitions() <= driver.coverage

    def test_distinct_failing_signatures_deduped(self, npgsql):
        result = explore(npgsql, ExploreConfig(budget=80))
        # one recorded failure per observable trace: interleaving
        # signatures are unique, fingerprints are unique, and a second
        # schedule reproducing an already-recorded trace is dropped
        assert len(result.failures) <= result.distinct_failing_signatures
        sigs = [f.signature for f in result.failures]
        assert len(sigs) == len(set(sigs))
        fps = [f.fingerprint for f in result.failures]
        assert len(fps) == len(set(fps))

    def test_emits_typed_events(self, npgsql):
        log = EventLog()
        explore(
            npgsql,
            ExploreConfig(budget=60, stats_every=20),
            bus=EventBus([log]),
        )
        kinds = set(log.kinds())
        assert {
            "exploration-started",
            "execution-explored",
            "novel-coverage",
            "failure-found",
            "frontier-stats",
            "exploration-finished",
        } <= kinds
        finished = log.first("exploration-finished")
        assert finished.executions == 60

    def test_events_round_trip_through_runlog(self):
        from repro.obs.runlog import EVENT_TYPES, _event_from, _event_payload
        from repro.api import events as ev

        for cls in (
            ev.ExplorationStarted,
            ev.ExecutionExplored,
            ev.NovelCoverage,
            ev.FailureFound,
            ev.FrontierStats,
            ev.ExplorationFinished,
        ):
            assert cls.kind in EVENT_TYPES
        event = ev.FailureFound(
            signature="abc",
            failure_signature="crash/X/Y",
            seed=3,
            replay_verified=True,
        )
        assert _event_from(event.kind, _event_payload(event)) == event

    def test_corpus_ingestion_and_schedule_stamping(self, npgsql, tmp_path):
        store = TraceStore.init(tmp_path / "c", program=npgsql.name)
        driver = ExplorationDriver(
            npgsql, ExploreConfig(budget=100, strategy="pct"), store=store
        )
        result = driver.run()
        assert result.ingested_fail == len(result.failures)
        reopened = TraceStore.open(tmp_path / "c")
        counts = reopened.schedule_counts()
        assert counts["fail"] == len(result.failures)
        assert counts["pass"] == result.ingested_pass
        # every ingested row carries its interleaving signature
        assert all(
            e.schedule is not None for e in reopened.entries.values()
        )
        # the pipeline bootstrapped mid-run and kept the views patched
        assert driver.pipeline is not None
        assert driver.pipeline.dag is not None

    def test_fuzzed_corpus_warm_analyze_is_memoized(self, npgsql, tmp_path):
        """Driver-ingest parity: a fuzzed corpus is a first-class corpus
        — CorpusSession analyzes it, and the second analyze answers
        every (predicate, trace) pair from the matrix."""
        store = TraceStore.init(tmp_path / "c", program=npgsql.name)
        explore(
            npgsql, ExploreConfig(budget=100, strategy="pct"), store=store
        )
        warm = TraceStore.open(tmp_path / "c")
        session = CorpusSession(npgsql, warm)
        session.analyze()
        session.save()
        assert warm.eval_matrix() is not None
        second = TraceStore.open(tmp_path / "c")
        resession = CorpusSession(npgsql, second)
        resession.analyze()
        assert resession.matrix.pair_evaluations == 0
        assert resession.matrix.pair_hits > 0


# ---------------------------------------------------------------------------
# Spec plumbing
# ---------------------------------------------------------------------------


class TestCollectionSpecStrategy:
    def test_round_trip_toml_and_json(self):
        spec = RunSpec(
            workload=WorkloadSpec(name="npgsql"),
            collection=CollectionSpec(
                n_success=10,
                n_fail=10,
                strategy="pct",
                strategy_params={"depth": 3, "horizon": 500},
            ),
        )
        assert spec.problems() == []
        assert RunSpec.from_toml(spec.to_toml()) == spec
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_unknown_strategy_rejected(self):
        spec = RunSpec(
            workload=WorkloadSpec(name="npgsql"),
            collection=CollectionSpec(strategy="zigzag"),
        )
        problems = spec.problems()
        assert any("zigzag" in p and "pct" in p for p in problems)

    def test_params_require_strategy(self):
        spec = CollectionSpec(strategy_params={"depth": 3})
        assert any(
            "requires" in p for p in spec.problems()
        )

    def test_params_must_be_scalars(self):
        spec = CollectionSpec(
            strategy="pct", strategy_params={"depth": [1, 2]}
        )
        assert any("scalars" in p for p in spec.problems())

    def test_session_workload_key_includes_strategy(self, npgsql):
        from repro.harness.session import AIDSession

        plain = AIDSession(npgsql, SessionConfig())._workload_key()
        pct = AIDSession(
            npgsql,
            SessionConfig(strategy="pct", strategy_params={"depth": 3}),
        )._workload_key()
        assert plain != pct
        assert "pct" in pct and "depth=3" in pct

    def test_spec_run_under_strategy(self):
        """A whole declarative run under pct: collection and
        intervention re-execution schedule identically, so the report
        is reproducible."""
        import repro

        spec = RunSpec(
            workload=WorkloadSpec(name="network"),
            collection=CollectionSpec(
                n_success=20,
                n_fail=20,
                strategy="pct",
                strategy_params={"depth": 3},
            ),
        )
        a = repro.api.run(spec).to_dict()
        b = repro.api.run(spec).to_dict()
        assert a == b


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_explore_json(self, capsys, tmp_path):
        from repro.cli import main

        assert (
            main(
                [
                    "explore",
                    "npgsql",
                    "--budget",
                    "60",
                    "--strategy",
                    "pct",
                    "--strategy-param",
                    "depth=3",
                    "--corpus",
                    str(tmp_path / "c"),
                    "--schedule-dir",
                    str(tmp_path / "s"),
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 2
        assert payload["executions"] == 60
        assert payload["failures_found"] >= 1
        assert payload["all_replays_verified"] is True
        for failure in payload["failures"]:
            assert (tmp_path / "s" / f"{failure['signature']}.json").exists()

    def test_explore_then_trace_replay(self, capsys, tmp_path):
        from repro.cli import main

        assert (
            main(
                [
                    "explore",
                    "npgsql",
                    "--budget",
                    "60",
                    "--schedule-dir",
                    str(tmp_path / "s"),
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        failure = payload["failures"][0]
        schedule_file = tmp_path / "s" / f"{failure['signature']}.json"
        assert (
            main(
                [
                    "trace",
                    "npgsql",
                    "--schedule",
                    str(schedule_file),
                    "-o",
                    str(tmp_path / "replayed.json"),
                ]
            )
            == 0
        )
        replayed = json.loads((tmp_path / "replayed.json").read_text())
        assert stable_digest(replayed) == failure["fingerprint"]

    def test_explore_accepts_spec_file(self, capsys, tmp_path):
        from repro.cli import main

        spec = RunSpec(
            workload=WorkloadSpec(name="npgsql"),
            collection=CollectionSpec(
                strategy="delay", strategy_params={"delays": 2}
            ),
        )
        path = tmp_path / "spec.toml"
        spec.save(path)
        assert main(["explore", str(path), "--budget", "40"]) == 0
        out = capsys.readouterr().out
        assert "under delay" in out

    def test_explore_rejects_bad_target(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="explore"):
            main(["explore", str(tmp_path / "nope.toml")])

    def test_debug_strategy_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["debug", "network", "--strategy", "pct",
             "--strategy-param", "depth=4"]
        )
        assert args.strategy == "pct"
        assert args.strategy_param == ["depth=4"]

    def test_strategy_param_coercion(self):
        from repro.cli import _parse_strategy_params

        assert _parse_strategy_params(
            ["depth=3", "rate=0.5", "flag=true", "name=x"]
        ) == {"depth": 3, "rate": 0.5, "flag": True, "name": "x"}
        with pytest.raises(SystemExit):
            _parse_strategy_params(["oops"])

    def test_corpus_stats_reports_schedules(self, capsys, tmp_path):
        from repro.cli import main

        assert (
            main(
                [
                    "explore",
                    "npgsql",
                    "--budget",
                    "60",
                    "--corpus",
                    str(tmp_path / "c"),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["corpus", "stats", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "distinct failing" in out
        assert main(
            ["corpus", "stats", str(tmp_path / "c"), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schedules"]["fail"] >= 1
        assert payload["schedules"]["by_signature"]
