"""Focused unit tests for behaviours not covered elsewhere:
probe-all-first, branch decomposition edge cases, experiment helpers,
intervention deduplication, and selector plumbing."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.core.acdag import ACDag
from repro.core.branch import branch_prune
from repro.core.giwp import GIWP
from repro.core.intervention import CountingRunner, RunOutcome
from repro.core.pruning import GroupItem
from repro.harness.experiments import (
    CASE_STUDY_ORDER,
    Figure8Cell,
    figure8,
)
from repro.sim.faults import MethodSelector, SerializeMethods
from repro.sim.tracing import MethodKey
from repro.workloads.common import REGISTRY


class _FlatOracle:
    """Failure persists unless a member of ``causal`` is intervened."""

    def __init__(self, causal):
        self.causal = set(causal)
        self.calls = 0

    def run_group(self, pids):
        self.calls += 1
        failed = not (self.causal & pids)
        observed = frozenset()  # irrelevant here
        return [RunOutcome(observed=observed, failed=failed)]


class TestProbeAllFirst:
    def test_all_noise_pool_resolved_in_one_round(self):
        oracle = _FlatOracle(causal={"hidden"})
        runner = CountingRunner(oracle)
        giwp = GIWP(
            runner,
            reaches=lambda a, b: False,
            observational_pruning=False,
            probe_all_first=True,
        )
        items = [GroupItem.single(f"n{i}") for i in range(8)]
        result = giwp.run(items)
        assert runner.budget.rounds == 1
        assert len(result.spurious) == 8 and not result.causal

    def test_causal_pool_pays_one_extra_round(self):
        causal = {"c"}
        items = [GroupItem.single(p) for p in ["c", "n0", "n1", "n2"]]

        def rounds(probe_all):
            runner = CountingRunner(_FlatOracle(causal))
            giwp = GIWP(
                runner,
                reaches=lambda a, b: False,
                observational_pruning=False,
                probe_all_first=probe_all,
            )
            result = giwp.run(list(items))
            assert result.causal_pids == ["c"]
            return runner.budget.rounds

        assert rounds(True) == rounds(False) + 1

    def test_single_item_pool_skips_the_probe(self):
        runner = CountingRunner(_FlatOracle(causal={"c"}))
        giwp = GIWP(
            runner, reaches=lambda a, b: False, probe_all_first=True
        )
        result = giwp.run([GroupItem.single("c")])
        assert runner.budget.rounds == 1
        assert result.causal_pids == ["c"]


class TestBranchDecompositionDetails:
    def _dag(self, edges, failure="F"):
        graph = nx.transitive_closure_dag(nx.DiGraph(edges))
        return ACDag(graph=graph, failure=failure)

    def test_all_singleton_junction_walked_past(self):
        # Junction {A, B} where both are leaves feeding F directly:
        # no group advantage exists, so no interventions happen.
        dag = self._dag([("A", "F"), ("B", "F")])
        oracle = _FlatOracle(causal={"A"})
        runner = CountingRunner(oracle)
        result = branch_prune(dag, runner, rng=random.Random(0))
        assert runner.budget.rounds == 0
        assert result.junctions == 0
        assert dag.predicates == {"A", "B"}

    def test_merge_node_survives_branch_removal(self):
        # Two branches with a shared merge M before F; the causal path
        # runs through the right branch and M.
        dag = self._dag(
            [
                ("L1", "L2"), ("L2", "M"),
                ("R1", "R2"), ("R2", "M"),
                ("M", "F"),
            ]
        )

        class Oracle:
            def run_group(self, pids):
                failed = not ({"R1", "R2", "M"} & pids)
                observed = frozenset(
                    {"L1", "L2", "R1", "R2", "M"} - pids
                )
                return [RunOutcome(observed=observed, failed=failed)]

        runner = CountingRunner(Oracle())
        branch_prune(dag, runner, rng=random.Random(1))
        assert "M" in dag.predicates
        assert "R1" in dag.predicates

    def test_progress_guard_on_everything_causal(self):
        # Pathological: interventions on either branch stop the failure
        # (violating the single-path assumption); the loop must still
        # terminate via the processed-heads guard.
        dag = self._dag([("A", "F"), ("B", "F"), ("A", "A2"), ("B", "B2")])

        class AlwaysStops:
            def run_group(self, pids):
                return [RunOutcome(observed=frozenset(), failed=False)]

        runner = CountingRunner(AlwaysStops())
        result = branch_prune(dag, runner, rng=random.Random(0))
        assert result is not None  # terminated


class TestExperimentHelpers:
    def test_case_study_order_matches_registry(self):
        assert sorted(CASE_STUDY_ORDER) == REGISTRY.names()
        assert CASE_STUDY_ORDER[0] == "npgsql"  # the paper's row order

    def test_figure8_cell_statistics(self):
        cell = Figure8Cell(maxt=2, approach=None, rounds=[3, 5, 10])
        assert cell.average == 6.0
        assert cell.worst == 10
        empty = Figure8Cell(maxt=2, approach=None)
        assert empty.average == 0.0 and empty.worst == 0

    def test_figure8_series_accessor(self):
        from repro.core.variants import Approach

        result = figure8(maxt_values=(2, 10), apps_per_setting=4, seed=1)
        series = result.series(Approach.AID, "average")
        assert len(series) == 2
        worst = result.series(Approach.TAGT, "worst")
        assert all(isinstance(x, int) for x in worst)


class TestInterventionPlumbing:
    def test_interventions_for_deduplicates(self, racy_session):
        runner = racy_session.make_runner()
        race = next(
            p for p in racy_session.fully_discriminative
            if p.startswith("race(")
        )
        once = runner.interventions_for([race])
        twice = runner.interventions_for([race, race])
        assert once == twice

    def test_selector_roundtrip_and_str(self):
        key = MethodKey("M", "worker", 2)
        selector = MethodSelector.from_key(key)
        assert selector.matches_key(key)
        assert str(selector) == "worker:M#2"
        wild = MethodSelector("M")
        assert str(wild) == "*:M#*"
        assert wild.matches_key(key)

    def test_serialize_methods_describe(self):
        iv = SerializeMethods(
            selectors=(MethodSelector("A"), MethodSelector("B")),
            lock_name="Lk",
        )
        text = iv.describe()
        assert "Lk" in text and "A" in text and "B" in text

    def test_intervention_set_describe(self, racy_session):
        from repro.sim.faults import InterventionSet

        runner = racy_session.make_runner()
        pids = racy_session.fully_discriminative[:3]
        ivs = InterventionSet(runner.interventions_for(pids))
        assert len(ivs.describe()) == len(ivs)
