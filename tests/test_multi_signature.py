"""Multi-signature debugging: one root cause per failure group."""

from __future__ import annotations

import pytest

from repro.harness.multi import debug_all
from repro.harness.session import SessionConfig
from repro.sim import Program


def _two_bugs_program() -> Program:
    """Two independent intermittent bugs with distinct signatures."""

    def main(ctx):
        ctx.poke("parse_bug", ctx.rand() < 0.30)
        ctx.poke("quota_bug", ctx.rand() < 0.30)
        yield from ctx.call("ParseInput")
        yield from ctx.call("CheckQuota")
        yield from ctx.call("Serve")
        return "ok"

    def parse_input(ctx):
        yield from ctx.work(3)
        mangled = yield from ctx.call("DecodeHeader")
        if mangled:
            ctx.throw("ParseError", "mangled header")
        return "parsed"

    def decode_header(ctx):
        yield from ctx.work(2)
        return bool(ctx.peek("parse_bug"))

    def check_quota(ctx):
        yield from ctx.work(3)
        exceeded = yield from ctx.call("ReadQuotaGauge")
        if exceeded:
            ctx.throw("QuotaExceeded", "gauge past limit")
        return "within-quota"

    def read_quota_gauge(ctx):
        yield from ctx.work(2)
        return bool(ctx.peek("quota_bug"))

    def serve(ctx):
        yield from ctx.work(2)
        return "served"

    return Program(
        name="twobugs",
        methods={
            "Main": main,
            "ParseInput": parse_input,
            "DecodeHeader": decode_header,
            "CheckQuota": check_quota,
            "ReadQuotaGauge": read_quota_gauge,
            "Serve": serve,
        },
        main="Main",
        readonly_methods=frozenset(
            {"ParseInput", "DecodeHeader", "CheckQuota", "ReadQuotaGauge"}
        ),
    )


@pytest.fixture(scope="module")
def multi_report():
    return debug_all(
        _two_bugs_program(),
        config=SessionConfig(n_success=40, n_fail=40, repeats=15),
        min_failures=8,
    )


class TestDebugAll:
    def test_both_signatures_found(self, multi_report):
        assert len(multi_report.signature_counts) == 2
        signatures = set(multi_report.signature_counts)
        assert any("ParseError" in s for s in signatures)
        assert any("QuotaExceeded" in s for s in signatures)

    def test_each_signature_gets_its_own_root_cause(self, multi_report):
        roots = {
            sig: report.discovery.root_cause
            for sig, report in multi_report.reports.items()
        }
        for sig, root in roots.items():
            assert root is not None, sig
            if "ParseError" in sig:
                assert "DecodeHeader" in root or "ParseInput" in root
            else:
                assert "ReadQuotaGauge" in root or "CheckQuota" in root

    def test_cross_bug_predicates_not_fully_discriminative(self, multi_report):
        """Within one signature's session, the *other* bug's predicates
        cannot be fully discriminative (they fire independently)."""
        for sig, report in multi_report.reports.items():
            other = "ReadQuotaGauge" if "ParseError" in sig else "DecodeHeader"
            assert all(
                other not in pid for pid in report.causal_path
            ), (sig, report.causal_path)

    def test_render(self, multi_report):
        text = multi_report.render()
        assert "root cause" in text
        assert "×" in text

    def test_min_failures_skips_rare_signatures(self):
        report = debug_all(
            _two_bugs_program(),
            config=SessionConfig(n_success=30, n_fail=30, repeats=10),
            min_failures=10_000,  # absurd: everything gets skipped
        )
        assert not report.reports
        assert report.skipped
        assert "not debugged" in report.render()
