"""The six case studies: Figure 7 reproduction, per workload.

For each case study we assert:

* the SD predicate count is close to the paper's (exact for five of the
  six by construction);
* the causal path length matches the paper exactly;
* the discovered path matches the workload's ground-truth markers in
  order (root cause included);
* AID needs strictly fewer intervention rounds than TAGT, and both find
  the identical path;
* the failure is genuinely intermittent (both labels occur).
"""

from __future__ import annotations

import pytest

from repro.core import Approach
from repro.workloads.common import REGISTRY

from conftest import case_study_session

#: Allowed deviation of measured SD-predicate counts from the paper.
SD_COUNT_TOLERANCE = 2


@pytest.fixture(scope="module")
def results():
    cache = {}
    for name in REGISTRY.names():
        session = case_study_session(name)
        cache[name] = {
            "workload": REGISTRY.build(name),
            "session": session,
            "aid": session.run(Approach.AID),
            "tagt": session.run(Approach.TAGT),
        }
    return cache


def _case(results, name):
    return results[name]


@pytest.mark.parametrize("name", sorted(REGISTRY.names()))
class TestFigure7Row:
    def test_intermittency(self, results, name):
        corpus = _case(results, name)["session"].collect()
        assert len(corpus.successes) == 50
        assert len(corpus.failures) == 50

    def test_sd_predicate_count_near_paper(self, results, name):
        case = _case(results, name)
        measured = case["aid"].n_sd_predicates
        expected = case["workload"].paper.sd_predicates
        assert abs(measured - expected) <= SD_COUNT_TOLERANCE, (
            f"{name}: measured {measured}, paper {expected}"
        )

    def test_causal_path_length_matches_paper(self, results, name):
        case = _case(results, name)
        assert case["aid"].n_causal == case["workload"].paper.causal_path_len

    def test_path_matches_ground_truth_markers(self, results, name):
        case = _case(results, name)
        path = case["aid"].causal_path
        markers = case["workload"].expected_path_markers
        assert len(path) - 1 == len(markers)
        for marker, pid in zip(markers, path):
            assert marker in pid, f"{name}: expected {marker} got {pid}"

    def test_root_cause_identified(self, results, name):
        case = _case(results, name)
        root = case["aid"].discovery.root_cause
        assert root is not None
        assert case["workload"].root_marker in root

    def test_aid_beats_tagt(self, results, name):
        case = _case(results, name)
        assert case["aid"].n_rounds < case["tagt"].n_rounds

    def test_aid_and_tagt_agree_on_the_path(self, results, name):
        case = _case(results, name)
        assert case["aid"].causal_path == case["tagt"].causal_path

    def test_sd_alone_overwhelms(self, results, name):
        """The paper's motivation: SD returns far more predicates than
        the causal path (except the tiny Network study)."""
        case = _case(results, name)
        assert case["aid"].n_sd_predicates >= 3 * case["aid"].n_causal

    def test_explanation_mentions_root_cause(self, results, name):
        case = _case(results, name)
        text = case["aid"].explanation.render()
        assert "[root cause]" in text
        assert "[failure]" in text


class TestWorkloadSpecifics:
    def test_kafka_discards_post_failure_predicates(self, results):
        """The paper: 30 of Kafka's 72 predicates have no temporal path
        to the failure and are discarded at AC-DAG construction."""
        dag = _case(results, "kafka")["session"].build_dag()
        no_path = [
            pid
            for pid, reason in dag.discarded.items()
            if "no temporal path" in reason
        ]
        assert len(no_path) == 30
        assert all("CleanupStep" in pid for pid in no_path)

    def test_npgsql_root_is_the_data_race(self, results):
        root = _case(results, "npgsql")["aid"].discovery.root_cause
        assert root.startswith("race(_nextSlot)")

    def test_network_single_predicate_path(self, results):
        aid = _case(results, "network")["aid"]
        assert aid.n_causal == 1

    def test_healthtelemetry_is_the_deepest_chain(self, results):
        lengths = {
            name: _case(results, name)["aid"].n_causal
            for name in REGISTRY.names()
        }
        assert max(lengths, key=lengths.get) == "healthtelemetry"
        assert lengths["healthtelemetry"] == 10

    def test_registry_names(self):
        assert REGISTRY.names() == [
            "buildandtest",
            "cosmosdb",
            "healthtelemetry",
            "kafka",
            "network",
            "npgsql",
        ]
        with pytest.raises(KeyError):
            REGISTRY.build("nonexistent")

    def test_ablation_ladder_on_a_case_study(self, results):
        """AID ≤ AID-P ≤ (roughly) TAGT on a real workload too."""
        session = _case(results, "kafka")["session"]
        aid = _case(results, "kafka")["aid"].n_rounds
        aid_p = session.run(Approach.AID_P).n_rounds
        tagt = _case(results, "kafka")["tagt"].n_rounds
        assert aid <= aid_p <= tagt
