"""repro.obs: envelopes, spans, metrics, JSONL run logs, and the CLI.

Covers the observability invariants:

* the bus envelope (monotonic timestamps, contiguous sequence numbers,
  one run id) without touching the frozen event dataclasses;
* a poisoned observer warns once and never aborts the run or starves
  later observers;
* span tracing nests correctly and per-round spans land inside the
  ``interventions`` phase;
* a JSONL run log round-trips into an :class:`EventLog` replay, and a
  future-versioned log is rejected;
* event phase ordering in corpus-session mode (live and incremental are
  asserted in test_api) plus span placement in incremental mode;
* the report is byte-identical with observability on vs off, modulo the
  additive ``meta`` key;
* ``repro obs summary|compare|tail``, ``--log-dir/--progress/
  --metrics/--profile``, and ``repro corpus stats --json``.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.api import CorpusSpec, RunSpec, run
from repro.api.events import (
    DagBuilt,
    EventBus,
    EventLog,
    SuiteFrozen,
    new_run_id,
)
from repro.api.spec import CollectionSpec, WorkloadSpec
from repro.cli import main
from repro.core.report import validate_report_dict
from repro.obs import (
    JsonlRunLog,
    MetricsObserver,
    MetricsRegistry,
    ObsContext,
    ObsOptions,
    RunLogError,
    latest_run_log,
    read_run_log,
    render_compare,
    render_summary,
    summarize,
)
from repro.obs.runlog import RUN_LOG_SCHEMA_VERSION


def small_spec(**overrides) -> RunSpec:
    base = dict(
        workload=WorkloadSpec("network"),
        collection=CollectionSpec(n_success=15, n_fail=15),
    )
    base.update(overrides)
    return RunSpec(**base)


def canonical(report) -> str:
    return json.dumps(report.to_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def logged_run(tmp_path_factory):
    """One shared observed live run: (obs, report, log dir)."""
    log_dir = tmp_path_factory.mktemp("obs") / "runs"
    obs = ObsContext(ObsOptions(log_dir=str(log_dir), metrics=True))
    report = run(small_spec(), obs=obs)
    return obs, report, log_dir


@pytest.fixture(scope="module")
def seeded_corpus(tmp_path_factory):
    corpus_dir = tmp_path_factory.mktemp("obs-corpus") / "corpus"
    assert main(["corpus", "init", str(corpus_dir), "--workload", "network"]) == 0
    assert main(["corpus", "ingest", str(corpus_dir), "--runs", "5"]) == 0
    return str(corpus_dir)


# ---------------------------------------------------------------------------
# envelopes
# ---------------------------------------------------------------------------


class TestEnvelope:
    def test_envelope_context_is_stamped_at_emit_time(self):
        seen = []

        class Enveloped:
            def on_enveloped(self, envelope):
                seen.append(envelope)

        bus = EventBus([Enveloped()])
        for n in range(3):
            bus.emit(DagBuilt(n_nodes=n, n_edges=0))
        assert [e.seq for e in seen] == [1, 2, 3]
        assert [e.event.n_nodes for e in seen] == [0, 1, 2]
        times = [e.t for e in seen]
        assert times == sorted(times) and all(t >= 0 for t in times)
        assert {e.run_id for e in seen} == {bus.run_id}

    def test_plain_observers_still_get_bare_events(self):
        log = EventLog()
        bus = EventBus([log])
        bus.emit(SuiteFrozen(n_predicates=1))
        assert log.kinds() == ["suite-frozen"]

    def test_run_ids_are_unique_and_sortable(self):
        ids = {new_run_id() for _ in range(32)}
        assert len(ids) == 32
        assert all("T" in run_id and "-" in run_id for run_id in ids)

    def test_events_stay_frozen(self):
        event = SuiteFrozen(n_predicates=3)
        with pytest.raises(AttributeError):
            event.n_predicates = 4


# ---------------------------------------------------------------------------
# hardened emit (the poisoned observer)
# ---------------------------------------------------------------------------


class TestPoisonedObserver:
    def test_poisoned_observer_warns_once_and_never_starves_later_ones(self):
        class Poisoned:
            def on_event(self, event):
                raise ValueError("boom")

        log = EventLog()
        bus = EventBus([Poisoned(), log])
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            bus.emit(SuiteFrozen(n_predicates=1))
            bus.emit(DagBuilt(n_nodes=1, n_edges=0))
        # both events reached the healthy observer, in order
        assert log.kinds() == ["suite-frozen", "dag-built"]
        # the broken one produced exactly one warning
        ours = [w for w in caught if "Poisoned" in str(w.message)]
        assert len(ours) == 1
        assert "boom" in str(ours[0].message)

    def test_poisoned_observer_does_not_abort_a_real_run(self):
        class Poisoned:
            def on_event(self, event):
                raise RuntimeError("observer bug")

        log = EventLog()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            report = run(small_spec(), observers=[Poisoned(), log])
        assert report.discovery is not None
        assert log.kinds()[-1] == "run-finished"

    def test_observers_never_affect_results(self):
        class Poisoned:
            def on_event(self, event):
                raise RuntimeError("observer bug")

        clean = run(small_spec())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            poisoned = run(small_spec(), observers=[Poisoned()])
        assert canonical(clean) == canonical(poisoned)


# ---------------------------------------------------------------------------
# span tracing
# ---------------------------------------------------------------------------


class TestSpans:
    def test_spans_nest_with_depth_and_parent(self):
        log = EventLog()
        bus = EventBus([log])
        with bus.span("outer"):
            with bus.span("inner"):
                pass
        inner, outer = log.of_kind("span-closed")
        assert (inner.name, inner.depth, inner.parent) == ("inner", 1, "outer")
        assert (outer.name, outer.depth, outer.parent) == ("outer", 0, None)
        assert outer.duration >= inner.duration >= 0.0
        assert outer.started <= inner.started

    def test_emit_span_nests_under_the_open_span(self):
        log = EventLog()
        bus = EventBus([log])
        with bus.span("phase"):
            bus.emit_span("round:x#1", 0.5)
        round_span = log.first("span-closed")
        assert round_span.name == "round:x#1"
        assert round_span.depth == 1 and round_span.parent == "phase"
        assert round_span.duration == 0.5

    def test_session_phases_and_round_spans(self, logged_run):
        _, _, log_dir = logged_run
        replay = read_run_log(latest_run_log(log_dir))
        spans = {e.name: e for e in replay.events.of_kind("span-closed")}
        for phase in (
            "collection", "discovery", "evaluate", "dag-build",
            "interventions",
        ):
            assert phase in spans and spans[phase].depth == 0
        rounds = [n for n in spans if n.startswith("round:")]
        assert rounds, "no per-round spans recorded"
        assert all(spans[n].parent == "interventions" for n in rounds)
        # every round span closes inside the interventions phase
        kinds = replay.events.kinds()
        hi = [
            i for i, e in enumerate(replay.events.events)
            if e.kind == "span-closed" and e.name == "interventions"
        ][0]
        for i, event in enumerate(replay.events.events):
            if event.kind == "span-closed" and event.name.startswith("round:"):
                assert i < hi
        assert kinds[-1] == "run-finished"

    def test_exceptions_still_close_the_span(self):
        log = EventLog()
        bus = EventBus([log])
        with pytest.raises(ValueError):
            with bus.span("doomed"):
                raise ValueError("nope")
        closed = log.first("span-closed")
        assert closed is not None and closed.name == "doomed"
        assert bus._span_stack == []


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_registry_counters_gauges_timers(self):
        registry = MetricsRegistry()
        registry.count("c")
        registry.count("c", 2)
        registry.gauge("g", 1.5)
        registry.time("t", 0.25)
        registry.time("t", 0.75)
        registry.register_provider(lambda: {"p": 7})
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 3}
        assert snapshot["gauges"] == {"g": 1.5, "p": 7}
        assert snapshot["timers"]["t"] == {
            "count": 2, "total": 1.0, "mean": 0.5,
        }

    def test_observer_folds_events_into_the_registry(self):
        observer = MetricsObserver()
        bus = EventBus([observer])
        bus.emit(SuiteFrozen(n_predicates=9, source="persisted"))
        bus.emit(DagBuilt(n_nodes=4, n_edges=6))
        snapshot = observer.registry.snapshot()
        assert snapshot["counters"]["events.total"] == 2
        assert snapshot["counters"]["suite.source.persisted"] == 1
        assert snapshot["gauges"]["suite.predicates"] == 9
        assert snapshot["gauges"]["dag.nodes"] == 4

    def test_run_snapshot_covers_exec_and_eval_and_spans(self, logged_run):
        obs, report, _ = logged_run
        snapshot = obs.final_snapshot()
        gauges = snapshot["gauges"]
        assert gauges["exec.executed"] > 0
        assert gauges["collection.n_success"] == 15
        assert "span.interventions" in snapshot["timers"]
        assert "span.round:giwp" in snapshot["timers"] or any(
            name.startswith("span.round:") for name in snapshot["timers"]
        )
        # the report carries the identical snapshot
        assert report.metrics == snapshot

    def test_corpus_run_reports_kernel_metrics(self, seeded_corpus, tmp_path):
        obs = ObsContext(ObsOptions(metrics=True))
        run(
            RunSpec(corpus=CorpusSpec(dir=seeded_corpus, mode="incremental")),
            obs=obs,
        )
        gauges = obs.final_snapshot()["gauges"]
        assert gauges["eval.kernel_calls"] >= 1
        assert gauges["eval.fresh_pairs"] >= 1
        assert gauges["eval.kernel_batch_mean"] > 0


# ---------------------------------------------------------------------------
# the JSONL run log
# ---------------------------------------------------------------------------


class TestRunLog:
    def test_round_trip_replays_the_exact_events(self, tmp_path):
        log_dir = tmp_path / "runs"
        live = EventLog()
        obs = ObsContext(ObsOptions(log_dir=str(log_dir)))
        run(small_spec(), observers=[live], obs=obs)
        replay = read_run_log(obs.log_path)
        assert replay.run_id == obs.run_id
        assert replay.schema == RUN_LOG_SCHEMA_VERSION
        assert replay.events.kinds() == live.kinds()
        # typed equality for everything but run-finished (whose live
        # payload is the report object; the log stores its dict)
        for live_event, replayed in zip(live.events, replay.events.events):
            if live_event.kind == "run-finished":
                assert replayed.report == live_event.report.to_dict()
            else:
                assert replayed == live_event
        # envelope context survives in the raw records
        seqs = [row["seq"] for row in replay.records]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_metrics_snapshot_lands_in_the_log(self, logged_run):
        obs, _, _ = logged_run
        replay = read_run_log(obs.log_path)
        assert replay.metrics == obs.final_snapshot()

    def test_future_schema_is_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps(
                {"schema": RUN_LOG_SCHEMA_VERSION + 1, "run_id": "x"}
            )
            + "\n"
        )
        with pytest.raises(RunLogError, match="schema"):
            read_run_log(path)

    def test_garbage_is_rejected(self, tmp_path):
        not_a_log = tmp_path / "notes.jsonl"
        not_a_log.write_text('{"hello": "world"}\n')
        with pytest.raises(RunLogError, match="missing schema header"):
            read_run_log(not_a_log)
        missing = tmp_path / "missing.jsonl"
        with pytest.raises(RunLogError, match="cannot read"):
            read_run_log(missing)

    def test_unknown_event_kind_is_rejected(self, tmp_path):
        path = tmp_path / "odd.jsonl"
        path.write_text(
            json.dumps({"schema": RUN_LOG_SCHEMA_VERSION, "run_id": "x"})
            + "\n"
            + json.dumps(
                {"seq": 1, "t": 0.0, "wall": 0.0, "kind": "warp-drive",
                 "data": {}}
            )
            + "\n"
        )
        with pytest.raises(RunLogError, match="warp-drive"):
            read_run_log(path)

    def test_crashed_run_leaves_a_valid_prefix(self, tmp_path):
        log = JsonlRunLog(tmp_path / "runs")
        bus = EventBus([log])
        bus.emit(SuiteFrozen(n_predicates=2))
        log.close()  # the run died before run-finished
        replay = read_run_log(latest_run_log(tmp_path / "runs"))
        assert replay.events.kinds() == ["suite-frozen"]
        assert replay.metrics is None


# ---------------------------------------------------------------------------
# phase ordering (corpus-session mode; live + incremental in test_api)
# ---------------------------------------------------------------------------


class TestPhaseOrdering:
    def test_corpus_session_event_ordering(self, seeded_corpus):
        log = EventLog()
        run(
            small_spec(corpus=CorpusSpec(dir=seeded_corpus)),
            observers=[log],
        )
        kinds = log.kinds()
        milestones = [
            "run-started",
            "corpus-loaded",
            "collection-finished",
            "suite-frozen",
            "logs-evaluated",
            "dag-built",
            "intervention-round",
            "engine-finished",
            "run-finished",
        ]
        indices = [kinds.index(kind) for kind in milestones]
        assert indices == sorted(indices), kinds

    def test_incremental_span_placement(self, seeded_corpus, tmp_path):
        obs = ObsContext(ObsOptions(log_dir=str(tmp_path / "runs")))
        run(
            RunSpec(corpus=CorpusSpec(dir=seeded_corpus, mode="incremental")),
            obs=obs,
        )
        replay = read_run_log(obs.log_path)
        kinds = replay.events.kinds()
        milestones = [
            "run-started",
            "corpus-loaded",
            "suite-frozen",
            "logs-evaluated",
            "dag-built",
            "engine-finished",
            "run-finished",
        ]
        indices = [kinds.index(kind) for kind in milestones]
        assert indices == sorted(indices), kinds
        spans = [e.name for e in replay.events.of_kind("span-closed")]
        assert "evaluate" in spans and "dag-build" in spans


# ---------------------------------------------------------------------------
# the report meta key
# ---------------------------------------------------------------------------


class TestReportMeta:
    def test_meta_defaults_to_inert(self):
        payload = run(small_spec()).to_dict()
        assert payload["meta"] == {
            "schema_version": payload["schema"],
            "run_id": None,
            "metrics": None,
        }
        assert validate_report_dict(payload) == []

    def test_observed_report_is_identical_modulo_meta(self, logged_run):
        _, observed, _ = logged_run
        plain = run(small_spec())
        observed_payload = observed.to_dict()
        plain_payload = plain.to_dict()
        assert observed_payload["meta"]["run_id"] is not None
        assert observed_payload["meta"]["metrics"] is not None
        observed_payload.pop("meta")
        plain_payload.pop("meta")
        assert json.dumps(observed_payload, sort_keys=True) == json.dumps(
            plain_payload, sort_keys=True
        )

    def test_stamped_meta_validates(self, logged_run):
        _, observed, _ = logged_run
        assert validate_report_dict(observed.to_dict()) == []

    def test_meta_is_additive_for_old_payloads(self):
        payload = run(small_spec()).to_dict()
        del payload["meta"]
        assert validate_report_dict(payload) == []

    def test_meta_problems_are_caught(self):
        payload = run(small_spec()).to_dict()
        payload["meta"] = {"schema_version": 99}
        problems = validate_report_dict(payload)
        assert any("meta.run_id" in p for p in problems)
        assert any("meta.schema_version" in p for p in problems)


# ---------------------------------------------------------------------------
# the CLI surface
# ---------------------------------------------------------------------------


class TestObsCli:
    @pytest.fixture(scope="class")
    def cli_log_dir(self, tmp_path_factory):
        log_dir = tmp_path_factory.mktemp("obs-cli") / "runs"
        assert main([
            "debug", "network", "--runs", "10",
            "--log-dir", str(log_dir),
        ]) == 0
        assert main([
            "debug", "network", "--runs", "12",
            "--log-dir", str(log_dir),
        ]) == 0
        return log_dir

    def test_summary_reconstructs_phases_offline(self, cli_log_dir, capsys):
        assert main(["obs", "summary", str(cli_log_dir)]) == 0
        out = capsys.readouterr().out
        for phase in ("collection", "discovery", "interventions"):
            assert phase in out
        assert "metrics" in out

    def test_summary_of_a_single_file(self, cli_log_dir, capsys):
        newest = latest_run_log(cli_log_dir)
        assert main(["obs", "summary", str(newest), "--no-metrics"]) == 0
        out = capsys.readouterr().out
        assert newest.stem in out and "metrics" not in out

    def test_compare_two_runs(self, cli_log_dir, capsys):
        logs = sorted(cli_log_dir.glob("*.jsonl"))
        assert len(logs) == 2
        assert main(["obs", "compare", str(logs[0]), str(logs[1])]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out and "B/A" in out

    def test_tail_prints_every_line(self, cli_log_dir, capsys):
        assert main(["obs", "tail", str(cli_log_dir)]) == 0
        out = capsys.readouterr().out
        assert "[header]" in out and "run-finished" in out

    def test_summary_json_is_the_versioned_dict(self, cli_log_dir, capsys):
        newest = latest_run_log(cli_log_dir)
        assert main(["obs", "summary", str(newest), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert payload["run_id"] == newest.stem
        assert payload["outcome"] == "finished"
        assert payload["spec_digest"]
        assert set(payload["durations"]) >= {"collection", "interventions"}
        assert payload["total"] > 0

    def test_compare_json_pairs_the_same_dicts(self, cli_log_dir, capsys):
        logs = sorted(cli_log_dir.glob("*.jsonl"))
        assert main([
            "obs", "compare", str(logs[0]), str(logs[1]), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert payload["a"]["run_id"] == logs[0].stem
        assert payload["b"]["run_id"] == logs[1].stem
        assert payload["total_ratio"] > 0
        assert all(p["ratio"] is None or p["ratio"] > 0
                   for p in payload["phases"])

    def test_spans_renders_the_tree(self, cli_log_dir, capsys):
        newest = latest_run_log(cli_log_dir)
        assert main(["obs", "spans", str(newest)]) == 0
        out = capsys.readouterr().out
        assert f"{newest.stem}:" in out and "total" in out
        assert "collection" in out and "interventions" in out
        assert "round:" in out  # nested child spans, indented
        assert "%" in out  # share-of-parent annotations

    def test_index_builds_and_reprints(self, cli_log_dir, capsys):
        assert main(["obs", "index", str(cli_log_dir)]) == 0
        out = capsys.readouterr().out
        assert "2 indexed run" in out
        index_path = cli_log_dir / "index.json"
        assert index_path.exists()
        first = index_path.read_text()
        # rebuild from scratch is idempotent
        assert main(["obs", "index", str(cli_log_dir), "--rebuild"]) == 0
        capsys.readouterr()
        assert index_path.read_text() == first

    def test_index_json_lists_summary_records(self, cli_log_dir, capsys):
        assert main(["obs", "index", str(cli_log_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert payload["summary_schema"] == 1
        assert len(payload["runs"]) == 2
        for run_id, row in payload["runs"].items():
            assert row["run_id"] == run_id
            assert row["outcome"] == "finished"
            assert row["n_events"] > 0

    def test_summary_errors_on_empty_dir(self, tmp_path):
        with pytest.raises(SystemExit, match="obs"):
            main(["obs", "summary", str(tmp_path)])

    def test_profile_requires_log_dir(self):
        with pytest.raises(SystemExit, match="--profile requires"):
            main(["debug", "network", "--runs", "5", "--profile"])

    def test_profile_writes_per_phase_dumps(self, tmp_path):
        log_dir = tmp_path / "runs"
        assert main([
            "debug", "network", "--runs", "5",
            "--log-dir", str(log_dir), "--profile",
        ]) == 0
        profiles = {p.name.split("-")[-1] for p in log_dir.glob("*.prof")}
        assert "collection.prof" in profiles
        assert "interventions.prof" in profiles

    def test_progress_streams_to_stderr(self, tmp_path, capsys):
        assert main([
            "debug", "network", "--runs", "5", "--progress",
        ]) == 0
        err = capsys.readouterr().err
        assert "run started" in err and "run finished" in err

    def test_metrics_flag_prints_snapshot(self, capsys):
        assert main([
            "debug", "network", "--runs", "5", "--metrics",
        ]) == 0
        err = capsys.readouterr().err
        assert "metrics:" in err and "exec.executed" in err


class TestCorpusStatsJson:
    def test_stats_json_payload(self, seeded_corpus, capsys):
        assert main(["corpus", "stats", seeded_corpus, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert payload["program"] == "network-controlplane"
        assert payload["traces"]["total"] == payload["traces"]["pass"] + (
            payload["traces"]["fail"]
        )
        assert set(payload["matrix"]) == {
            "predicates", "traces", "pairs", "coverage",
        }

    def test_stats_text_still_works(self, seeded_corpus, capsys):
        assert main(["corpus", "stats", seeded_corpus]) == 0
        assert "traces" in capsys.readouterr().out
