"""SimContext operations, shared state, locks, and the method protocol."""

from __future__ import annotations

import pytest

from repro.sim import (
    LockProtocolError,
    Program,
    UnknownMethodError,
    run_program,
)


def _run(methods, main="Main", shared=None, seed=0, **kwargs):
    program = Program(
        name="t", methods=methods, main=main, shared=shared or {}, **kwargs
    )
    return run_program(program, seed)


class TestSharedState:
    def test_read_write_roundtrip(self):
        def main(ctx):
            yield from ctx.write("x", 42)
            value = yield from ctx.read("x")
            assert value == 42
            return value

        result = _run({"Main": main})
        assert not result.failed

    def test_reads_and_writes_are_traced(self):
        def main(ctx):
            yield from ctx.write("x", 1)
            yield from ctx.read("x")
            return None

        trace = _run({"Main": main}).trace
        main_exec = next(trace.executions_of("Main"))
        kinds = [(a.obj, a.access_type.value) for a in main_exec.accesses]
        assert kinds == [("x", "W"), ("x", "R")]

    def test_peek_poke_untraced(self):
        def main(ctx):
            ctx.poke("hidden", 9)
            assert ctx.peek("hidden") == 9
            yield from ctx.work(1)
            return None

        trace = _run({"Main": main}).trace
        main_exec = next(trace.executions_of("Main"))
        assert main_exec.accesses == ()

    def test_initial_shared_not_mutated_across_runs(self):
        def main(ctx):
            value = yield from ctx.read("x")
            yield from ctx.write("x", value + 1)
            return value

        program = Program(
            name="iso", methods={"Main": main}, main="Main", shared={"x": 0}
        )
        first = run_program(program, 0).trace
        second = run_program(program, 1).trace
        assert next(first.executions_of("Main")).return_value == 0
        assert next(second.executions_of("Main")).return_value == 0

    def test_update_is_two_accesses(self):
        def main(ctx):
            yield from ctx.update("x", lambda v: v + 1)
            return None

        trace = _run({"Main": main}, shared={"x": 0}).trace
        accesses = list(trace.accesses())
        assert [a.access_type.value for a in accesses] == ["R", "W"]


class TestLocks:
    def test_lock_mutual_exclusion(self):
        def main(ctx):
            yield from ctx.spawn("w", "Worker")
            yield from ctx.acquire("L")
            snapshot = ctx.peek("entered")
            yield from ctx.work(30)
            assert ctx.peek("entered") == snapshot  # worker kept out
            yield from ctx.release("L")
            yield from ctx.join("w")
            return "ok"

        def worker(ctx):
            yield from ctx.work(5)
            yield from ctx.acquire("L")
            ctx.poke("entered", True)
            yield from ctx.release("L")
            return None

        for seed in range(10):
            result = _run({"Main": main, "Worker": worker}, seed=seed)
            assert not result.failed

    def test_release_unheld_lock_is_harness_error(self):
        def main(ctx):
            yield from ctx.release("L")

        with pytest.raises(LockProtocolError):
            _run({"Main": main})

    def test_reacquire_is_harness_error(self):
        def main(ctx):
            yield from ctx.acquire("L")
            yield from ctx.acquire("L")

        with pytest.raises(LockProtocolError):
            _run({"Main": main})

    def test_lockset_recorded_on_accesses(self):
        def main(ctx):
            yield from ctx.acquire("L")
            yield from ctx.write("x", 1)
            yield from ctx.release("L")
            yield from ctx.write("x", 2)
            return None

        trace = _run({"Main": main}).trace
        first, second = list(trace.accesses())
        assert first.locks_held == frozenset({"L"})
        assert second.locks_held == frozenset()


class TestMethodProtocol:
    def test_nested_calls_traced_with_parents(self):
        def main(ctx):
            value = yield from ctx.call("Inner", 5)
            return value * 2

        def inner(ctx, x):
            yield from ctx.work(1)
            return x + 1

        trace = _run({"Main": main, "Inner": inner}).trace
        by_name = {m.method: m for m in trace.method_executions()}
        assert by_name["Main"].return_value == 12
        assert by_name["Inner"].return_value == 6
        assert by_name["Inner"].parent_call_id == by_name["Main"].call_id
        assert by_name["Main"].start_time < by_name["Inner"].start_time
        assert by_name["Inner"].end_time < by_name["Main"].end_time

    def test_occurrences_count_per_thread(self):
        def main(ctx):
            for _ in range(3):
                yield from ctx.call("Step")
            return None

        def step(ctx):
            yield from ctx.work(1)
            return None

        trace = _run({"Main": main, "Step": step}).trace
        occs = [m.occurrence for m in trace.executions_of("Step")]
        assert occs == [0, 1, 2]

    def test_exceptions_propagate_through_frames(self):
        def main(ctx):
            yield from ctx.call("Outer")
            return "unreachable"

        def outer(ctx):
            yield from ctx.call("Thrower")
            return "unreachable"

        def thrower(ctx):
            yield from ctx.work(1)
            ctx.throw("Kaboom")

        trace = _run({"Main": main, "Outer": outer, "Thrower": thrower}).trace
        assert trace.failed
        by_name = {m.method: m for m in trace.method_executions()}
        assert by_name["Thrower"].exception == "Kaboom"
        assert by_name["Outer"].exception == "Kaboom"
        assert by_name["Main"].exception == "Kaboom"
        # Unwinding preserves nesting order in end times.
        assert (
            by_name["Thrower"].end_time
            < by_name["Outer"].end_time
            < by_name["Main"].end_time
        )

    def test_simulated_try_except(self):
        from repro.sim import SimulatedError

        def main(ctx):
            try:
                yield from ctx.call("Thrower")
            except SimulatedError as exc:
                assert exc.kind == "Kaboom"
                return "recovered"

        def thrower(ctx):
            yield from ctx.work(1)
            ctx.throw("Kaboom")

        trace = _run({"Main": main, "Thrower": thrower}).trace
        assert not trace.failed
        assert next(trace.executions_of("Main")).return_value == "recovered"

    def test_unknown_method_rejected_at_call(self):
        def main(ctx):
            yield from ctx.call("Ghost")

        with pytest.raises(UnknownMethodError):
            _run({"Main": main})

    def test_unknown_main_rejected_at_construction(self):
        with pytest.raises(UnknownMethodError):
            Program(name="bad", methods={}, main="Ghost")

    def test_thread_local_rng_stable_across_interleavings(self):
        draws = set()

        def main(ctx):
            yield from ctx.spawn("noise", "Noise")
            yield from ctx.work(1)
            draws.add(ctx.randint(0, 10**9))
            yield from ctx.join("noise")
            return None

        def noise(ctx):
            yield from ctx.work(ctx.randint(1, 50))
            return None

        program = Program(
            name="rng", methods={"Main": main, "Noise": noise}, main="Main"
        )
        run_program(program, 42)
        run_program(program, 42)
        assert len(draws) == 1, "same seed+thread must draw identically"
