"""The declarative front door: RunSpec round-trips, registries,
observer events, report schema, and byte-identity with the legacy
entry points."""

from __future__ import annotations

import json

import pytest

import repro
from repro.api import (
    AnalysisSpec,
    CollectionSpec,
    CorpusSpec,
    EngineSpec,
    EventBus,
    EventLog,
    RunSpec,
    SpecError,
    WorkloadSpec,
    run,
    validate_report_dict,
)
from repro.api.events import DagBuilt, SuiteFrozen
from repro.api.registry import (
    Registry,
    RegistryError,
    backends,
    extractors,
    policies,
    workloads,
)
from repro.cli import main
from repro.corpus import CorpusSession, TraceStore
from repro.harness.session import AIDSession, SessionConfig
from repro.sim.scheduler import DEFAULT_MAX_STEPS


def small_spec(**overrides) -> RunSpec:
    base = dict(
        workload=WorkloadSpec("network"),
        collection=CollectionSpec(n_success=20, n_fail=20),
    )
    base.update(overrides)
    return RunSpec(**base)


def canonical(report) -> str:
    return json.dumps(report.to_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def live_run():
    """One shared live run: (spec, report, event log)."""
    log = EventLog()
    spec = small_spec()
    report = run(RunSpec.from_dict(spec.to_dict()), observers=[log])
    return spec, report, log


@pytest.fixture(scope="module")
def seeded_corpus(tmp_path_factory):
    """A small stored corpus of the network workload."""
    corpus_dir = tmp_path_factory.mktemp("api") / "corpus"
    assert main(["corpus", "init", str(corpus_dir), "--workload", "network"]) == 0
    assert main(["corpus", "ingest", str(corpus_dir), "--runs", "5"]) == 0
    return str(corpus_dir)


class TestSpecRoundTrip:
    def test_dict_round_trip(self):
        spec = RunSpec(
            workload=WorkloadSpec("kafka"),
            collection=CollectionSpec(n_success=10, n_fail=12, start_seed=3),
            engine=EngineSpec(jobs=4, backend="thread"),
            corpus=CorpusSpec(dir="/tmp/c", mode="incremental"),
            analysis=AnalysisSpec(
                approach="TAGT",
                repeats=9,
                rng_seed=5,
                extractors=("data-race", "failure"),
                policy="lamport",
            ),
        )
        assert RunSpec.from_dict(spec.to_dict()) == spec
        # and the dict itself is stable through the round trip
        assert RunSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()

    def test_json_round_trip(self):
        spec = small_spec(engine=EngineSpec(jobs=2))
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_toml_round_trip(self):
        spec = small_spec(
            analysis=AnalysisSpec(extractors=("duration", "failure"))
        )
        assert RunSpec.from_toml(spec.to_toml()) == spec

    @pytest.mark.parametrize("suffix", [".toml", ".json"])
    def test_file_round_trip(self, tmp_path, suffix):
        spec = small_spec()
        path = spec.save(tmp_path / f"spec{suffix}")
        assert RunSpec.load(path) == spec

    def test_defaults_mirror_session_config(self):
        spec = RunSpec(workload=WorkloadSpec("network"))
        config = SessionConfig()
        assert spec.collection.n_success == config.n_success
        assert spec.collection.n_fail == config.n_fail
        assert spec.collection.start_seed == config.start_seed
        assert spec.collection.max_steps == DEFAULT_MAX_STEPS
        assert spec.analysis.repeats == config.repeats
        assert spec.analysis.rng_seed == config.rng_seed

    def test_unknown_section_rejected(self):
        with pytest.raises(SpecError, match="unknown section 'wrokload'"):
            RunSpec.from_dict({"wrokload": {"name": "network"}})

    def test_unknown_key_rejected_with_valid_alternatives(self):
        with pytest.raises(SpecError, match=r"collection: unknown key 'n_succes'.*n_success"):
            RunSpec.from_dict({"collection": {"n_succes": 10}})

    def test_unsupported_version_rejected(self):
        with pytest.raises(SpecError, match="unsupported spec version 99"):
            RunSpec.from_dict({"version": 99})

    def test_bad_toml_rejected(self):
        with pytest.raises(SpecError, match="not valid TOML"):
            RunSpec.from_toml("[workload\nname=")

    def test_missing_file(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read"):
            RunSpec.load(tmp_path / "nope.toml")

    def test_suffixless_file_sniffs_both_formats(self, tmp_path):
        as_json = tmp_path / "spec"
        as_json.write_text(small_spec().to_json())
        assert RunSpec.load(as_json) == small_spec()
        as_toml = tmp_path / "spec2"
        as_toml.write_text(small_spec().to_toml())
        assert RunSpec.load(as_toml) == small_spec()

    def test_suffixless_valid_json_surfaces_spec_errors(self, tmp_path):
        """A file that parses as JSON but fails validation must report
        the validation problem, not a TOML parse error."""
        path = tmp_path / "spec"
        path.write_text('{"wrokload": {"name": "network"}}')
        with pytest.raises(SpecError, match="unknown section 'wrokload'"):
            RunSpec.load(path)


class TestSpecValidation:
    def test_unknown_workload_lists_registered(self):
        spec = RunSpec(workload=WorkloadSpec("klafka"))
        with pytest.raises(SpecError, match=r"unknown workload 'klafka'.*kafka"):
            spec.validate()

    def test_missing_workload(self):
        with pytest.raises(SpecError, match="workload: required"):
            RunSpec().validate()

    def test_unknown_backend(self):
        spec = small_spec(engine=EngineSpec(backend="gpu"))
        with pytest.raises(SpecError, match=r"unknown backend 'gpu'.*serial"):
            spec.validate()

    def test_unknown_extractor(self):
        spec = small_spec(analysis=AnalysisSpec(extractors=("races",)))
        with pytest.raises(SpecError, match=r"unknown extractor 'races'.*data-race"):
            spec.validate()

    def test_unknown_policy(self):
        spec = small_spec(analysis=AnalysisSpec(policy="vector-clock"))
        with pytest.raises(
            SpecError, match=r"unknown precedence policy 'vector-clock'"
        ):
            spec.validate()

    def test_unknown_approach(self):
        spec = small_spec(analysis=AnalysisSpec(approach="YOLO"))
        with pytest.raises(SpecError, match=r"unknown approach 'YOLO'.*AID"):
            spec.validate()

    def test_incremental_requires_dir(self):
        spec = RunSpec(corpus=CorpusSpec(mode="incremental"))
        with pytest.raises(SpecError, match="corpus.dir: required"):
            spec.validate()

    def test_bad_mode(self):
        spec = small_spec(corpus=CorpusSpec(dir="/tmp/c", mode="async"))
        with pytest.raises(SpecError, match="'session' or 'incremental'"):
            spec.validate()

    def test_mode_property(self, seeded_corpus):
        assert small_spec().mode == "live"
        assert small_spec(corpus=CorpusSpec(dir=seeded_corpus)).mode == "corpus"
        assert (
            RunSpec(corpus=CorpusSpec(dir=seeded_corpus, mode="incremental")).mode
            == "incremental"
        )


class TestRegistries:
    def test_unknown_key_is_actionable_keyerror(self):
        with pytest.raises(RegistryError) as excinfo:
            workloads.get("nope")
        assert isinstance(excinfo.value, KeyError)
        assert "unknown workload 'nope'" in str(excinfo.value)
        assert "npgsql" in str(excinfo.value)

    def test_workloads_registry_is_the_bundled_registry(self):
        from repro.workloads.common import REGISTRY

        assert REGISTRY is workloads

    def test_builtin_names(self):
        assert "serial" in backends and "process" in backends
        assert "data-race" in extractors and "failure" in extractors
        assert "kind-anchor" in policies and "lamport" in policies

    def test_backend_factories_build_backends(self):
        backend = backends.build("thread", 3)
        assert backend.name == "thread" and backend.jobs == 3
        backend.close()

    def test_duplicate_registration_refused(self):
        registry = Registry("thing")
        registry.register("x", lambda: 1)
        with pytest.raises(RegistryError, match="already registered"):
            registry.register("x", lambda: 2)
        registry.register("x", lambda: 3, replace=True)
        assert registry.build("x") == 3

    def test_third_party_registration_reaches_specs(self):
        name = "test-api-dummy-workload"
        workloads.register(name, workloads.get("network"))
        try:
            RunSpec(workload=WorkloadSpec(name)).validate()
        finally:
            workloads._factories.pop(name)


class TestObserverEvents:
    def test_live_event_ordering(self, live_run):
        _, _, log = live_run
        kinds = log.kinds()
        milestones = [
            "run-started",
            "collection-started",
            "collection-finished",
            "suite-frozen",
            "logs-evaluated",
            "dag-built",
            "intervention-round",
            "engine-finished",
            "run-finished",
        ]
        indices = [kinds.index(kind) for kind in milestones]
        assert indices == sorted(indices), kinds
        assert kinds[-1] == "run-finished"
        # every intervention round lands between dag-built and
        # engine-finished
        lo, hi = kinds.index("dag-built"), kinds.index("engine-finished")
        for i, kind in enumerate(kinds):
            if kind == "intervention-round":
                assert lo < i < hi

    def test_round_events_match_report(self, live_run):
        _, report, log = live_run
        assert len(log.of_kind("intervention-round")) == report.n_rounds

    def test_collection_event_payload(self, live_run):
        _, report, log = live_run
        finished = log.first("collection-finished")
        assert finished.n_success == len(report.corpus.successes)
        assert finished.n_fail == len(report.corpus.failures)
        assert finished.signature == report.signature

    def test_incremental_event_ordering(self, seeded_corpus):
        log = EventLog()
        run(
            RunSpec(corpus=CorpusSpec(dir=seeded_corpus, mode="incremental")),
            observers=[log],
        )
        kinds = log.kinds()
        milestones = [
            "run-started",
            "corpus-loaded",
            "suite-frozen",
            "logs-evaluated",
            "dag-built",
            "engine-finished",
            "run-finished",
        ]
        indices = [kinds.index(kind) for kind in milestones]
        assert indices == sorted(indices), kinds

    def test_callable_observers_and_bus(self, seeded_corpus):
        seen = []
        bus = EventBus([seen.append])
        bus.subscribe(lambda event: seen.append(event))
        bus.emit(DagBuilt(n_nodes=1, n_edges=0))
        assert len(seen) == 2 and all(e.kind == "dag-built" for e in seen)

    def test_events_are_frozen_snapshots(self):
        event = SuiteFrozen(n_predicates=3, source="discovered")
        with pytest.raises(AttributeError):
            event.n_predicates = 4


class TestByteIdentity:
    """The acceptance criterion: ``repro.run(RunSpec.from_dict(
    spec.to_dict()))`` equals the legacy entry points byte for byte."""

    def test_live_equals_legacy_aidsession(self, live_run):
        spec, api_report, _ = live_run
        program = repro.load_workload("network").program
        legacy = AIDSession(
            program,
            SessionConfig(
                n_success=spec.collection.n_success,
                n_fail=spec.collection.n_fail,
            ),
        ).run("AID")
        assert canonical(legacy) == canonical(api_report)

    def test_corpus_equals_legacy_corpussession(self, seeded_corpus):
        program = repro.load_workload("network").program
        store = TraceStore.open(seeded_corpus)
        legacy_session = CorpusSession(program, store, SessionConfig())
        legacy = legacy_session.run("AID")
        legacy_session.save()
        spec = RunSpec(
            workload=WorkloadSpec("network"),
            corpus=CorpusSpec(dir=seeded_corpus),
        )
        api_report = run(RunSpec.from_dict(spec.to_dict()))
        assert canonical(legacy) == canonical(api_report)

    def test_observers_do_not_change_results(self, live_run):
        spec, api_report, _ = live_run
        silent = run(RunSpec.from_dict(spec.to_dict()))
        assert canonical(silent) == canonical(api_report)

    def test_incremental_runs_are_deterministic(self, seeded_corpus):
        spec = RunSpec(corpus=CorpusSpec(dir=seeded_corpus, mode="incremental"))
        first = run(spec)
        second = run(spec)
        assert canonical(first) == canonical(second)
        assert second.discovery is None and second.approach is None


class TestReportSchema:
    def test_session_report_validates(self, live_run):
        _, report, _ = live_run
        payload = report.to_dict()
        assert validate_report_dict(payload) == []
        assert payload["schema"] == repro.REPORT_SCHEMA_VERSION
        assert payload["kind"] == "session"
        assert payload["discovery"]["causal_path"] == report.causal_path
        assert payload["explanation"]["text"] == report.explanation.render()

    def test_analysis_report_validates(self, seeded_corpus):
        report = run(
            RunSpec(corpus=CorpusSpec(dir=seeded_corpus, mode="incremental"))
        )
        payload = report.to_dict()
        assert validate_report_dict(payload) == []
        assert payload["kind"] == "analysis"
        assert payload["discovery"] is None
        assert payload["collection"]["n_success"] == report.n_success

    def test_report_is_json_serializable_and_deterministic(self, live_run):
        _, report, _ = live_run
        assert json.loads(json.dumps(report.to_dict())) == report.to_dict()

    def test_validation_catches_problems(self, live_run):
        _, report, _ = live_run
        payload = report.to_dict()
        broken = dict(payload, schema=99)
        assert any("schema" in p for p in validate_report_dict(broken))
        broken = {k: v for k, v in payload.items() if k != "dag"}
        assert any(p.startswith("dag") for p in validate_report_dict(broken))
        broken = dict(payload, discovery=None)
        assert any(
            "required for kind 'session'" in p
            for p in validate_report_dict(broken)
        )
        broken = dict(payload, extra=1)
        assert any("unknown key 'extra'" in p for p in validate_report_dict(broken))
        assert validate_report_dict([]) != []


class TestRunCLI:
    def test_run_toml_text(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.toml"
        small_spec().save(spec_path)
        assert main(["run", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "root cause" in out
        assert "exec stats" in out

    def test_run_json_validates_against_schema(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        small_spec().save(spec_path)
        assert main(["run", str(spec_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate_report_dict(payload) == []
        assert payload["program"] == "network-controlplane"

    def test_run_incremental_spec(self, tmp_path, capsys, seeded_corpus):
        spec_path = tmp_path / "analyze.toml"
        RunSpec(corpus=CorpusSpec(dir=seeded_corpus, mode="incremental")).save(
            spec_path
        )
        assert main(["run", str(spec_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate_report_dict(payload) == []
        assert payload["kind"] == "analysis"

    def test_run_missing_spec_file(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["run", str(tmp_path / "missing.toml")])

    def test_run_invalid_spec(self, tmp_path):
        spec_path = tmp_path / "bad.toml"
        spec_path.write_text('[workload]\nname = "not-a-workload"\n')
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["run", str(spec_path)])

    def test_example_spec_parses(self):
        from pathlib import Path

        example = Path(__file__).resolve().parent.parent / "examples" / "npgsql.toml"
        spec = RunSpec.load(example)
        spec.validate()
        assert spec.workload.name == "npgsql"
        assert spec.mode == "live"


class TestEngineSpecPlumbing:
    """The deduplicated --jobs/--backend/--cache path."""

    def test_from_args_round_trip(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["debug", "network", "--jobs", "3", "--backend", "thread",
             "--cache", "/tmp/c.json"]
        )
        spec = EngineSpec.from_args(args)
        assert spec == EngineSpec(jobs=3, backend="thread", cache="/tmp/c.json")

    def test_build_defaults_serial(self):
        engine = EngineSpec().build()
        assert engine.backend.name == "serial"
        engine.close()

    def test_build_jobs_imply_thread(self):
        engine = EngineSpec(jobs=2).build()
        assert engine.backend.name == "thread" and engine.backend.jobs == 2
        engine.close()

    def test_build_missing_cache_dir(self, tmp_path):
        spec = EngineSpec(cache=str(tmp_path / "nodir" / "cache.json"))
        with pytest.raises(SpecError, match="does not exist"):
            spec.build()

    def test_cli_cache_error_keeps_flag_spelling(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="--cache.*not an outcome-cache"):
            main(["figure8", "--apps", "2", "--cache", str(bad)])

    def test_all_engine_commands_share_the_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        for argv in (
            ["debug", "network", "--jobs", "2"],
            ["figure7", "--jobs", "2"],
            ["figure8", "--jobs", "2"],
        ):
            args = parser.parse_args(argv)
            assert EngineSpec.from_args(args).jobs == 2
