"""Trace JSON round-trip and offline analysis on imported traces."""

from __future__ import annotations

import pytest

from repro.core.acdag import ACDag
from repro.core.extraction import PredicateSuite
from repro.core.statistical import StatisticalDebugger
from repro.harness.runner import collect
from repro.sim import run_program
from repro.sim.serialize import (
    ImportedTrace,
    trace_fingerprint,
    trace_from_dict,
    trace_from_json,
    trace_to_dict,
    trace_to_json,
)
from repro.workloads.common import REGISTRY


@pytest.fixture(scope="module")
def corpus(racy_program):
    return collect(racy_program, n_success=15, n_fail=15)


class TestRoundTrip:
    def test_schema_fields(self, corpus):
        payload = trace_to_dict(corpus.failures[0])
        assert payload["schema"] == 1
        assert payload["failure"]["mode"] == "crash"
        call = payload["calls"][0]
        for field in (
            "method", "thread", "occurrence", "start_time", "end_time",
            "return_value", "exception", "accesses",
        ):
            assert field in call

    def test_method_executions_preserved(self, corpus):
        original = corpus.failures[0]
        restored = trace_from_json(trace_to_json(original))
        assert isinstance(restored, ImportedTrace)
        orig = original.method_executions()
        back = restored.method_executions()
        assert len(orig) == len(back)
        for a, b in zip(orig, back):
            assert a.key == b.key
            assert a.start_time == b.start_time
            assert a.end_time == b.end_time
            assert a.exception == b.exception
            assert len(a.accesses) == len(b.accesses)

    def test_failure_metadata_preserved(self, corpus):
        original = corpus.failures[0]
        restored = trace_from_dict(trace_to_dict(original))
        assert restored.failed
        assert restored.failure.signature == original.failure.signature

    def test_lookup_and_objects(self, corpus):
        original = corpus.successes[0]
        restored = trace_from_dict(trace_to_dict(original))
        for m in original.method_executions():
            assert restored.lookup(m.key) is not None
        assert restored.objects_accessed() == original.objects_accessed()

    def test_schema_version_checked(self, corpus):
        payload = trace_to_dict(corpus.successes[0])
        payload["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            trace_from_dict(payload)

    def test_unjsonable_returns_coerced(self, racy_program):
        # tuples become lists; exotic objects become reprs — never crash.
        trace = run_program(racy_program, 0).trace
        text = trace_to_json(trace)
        assert text  # serializable end to end


class TestRoundTripProperty:
    """Property-style sweeps: the corpus store's core invariant is that
    serialize → import reproduces ``method_executions`` *identically*
    (every field, including failure and fault metadata), for failed and
    successful runs alike."""

    @pytest.mark.parametrize("seed", range(20))
    def test_method_executions_identical_across_seeds(
        self, racy_program, seed
    ):
        trace = run_program(racy_program, seed).trace
        restored = trace_from_json(trace_to_json(trace))
        assert restored.method_executions() == trace.method_executions()
        assert restored.failed == trace.failed
        if trace.failed:
            assert restored.failure == trace.failure

    @pytest.mark.parametrize(
        "workload_name", ["network", "kafka", "npgsql", "healthtelemetry"]
    )
    def test_case_study_failures_round_trip(self, workload_name):
        program = REGISTRY.build(workload_name).program
        failures = 0
        for seed in range(40):
            trace = run_program(program, seed).trace
            restored = trace_from_dict(trace_to_dict(trace))
            # identical up to the documented return-value JSON coercion
            # (tuples become lists on first serialization, then stay put)
            assert trace_to_dict(restored) == trace_to_dict(trace)
            assert [m.key for m in restored.method_executions()] == [
                m.key for m in trace.method_executions()
            ]
            if trace.failed:
                failures += 1
                # fault metadata survives: mode, exception, site, time
                assert restored.failure.mode == trace.failure.mode
                assert restored.failure.exception == trace.failure.exception
                assert restored.failure.method == trace.failure.method
                assert restored.failure.thread == trace.failure.thread
                assert restored.failure.time == trace.failure.time
            if failures >= 3:
                break
        assert failures >= 1, f"{workload_name}: no failed seed in range"

    @pytest.mark.parametrize("seed", range(10))
    def test_serialized_form_is_a_fixed_point(self, racy_program, seed):
        """dict → import → dict is the identity, so content fingerprints
        agree between live and imported traces (the dedup invariant)."""
        trace = run_program(racy_program, seed).trace
        payload = trace_to_dict(trace)
        reserialized = trace_to_dict(trace_from_dict(payload))
        assert reserialized == payload
        assert trace_fingerprint(trace) == trace_fingerprint(
            trace_from_dict(payload)
        )


class TestOfflineAnalysis:
    def test_full_pipeline_on_imported_traces(self, corpus, racy_program):
        """Collect once, serialize, analyze entirely from JSON."""
        successes = [
            trace_from_json(trace_to_json(t)) for t in corpus.successes
        ]
        failures = [
            trace_from_json(trace_to_json(t)) for t in corpus.failures
        ]
        suite = PredicateSuite.discover(
            successes, failures, program=racy_program
        )
        logs = [suite.evaluate(t) for t in successes + failures]
        sd = StatisticalDebugger(logs=logs)
        fully = [
            pid for pid in sd.fully_discriminative_pids()
            if not pid.startswith("FAILURE[")
        ]
        assert any(pid.startswith("race(counter)") for pid in fully)
        failure_pid = suite.failure_pids()[0]
        dag = ACDag.build(
            defs=dict(suite.defs),
            failed_logs=[log for log in logs if log.failed],
            failure=failure_pid,
            candidate_pids=fully,
        )
        assert len(dag) == len(fully) + 1

    def test_imported_equals_live_evaluation(self, corpus, racy_program):
        suite = PredicateSuite.discover(
            corpus.successes, corpus.failures, program=racy_program
        )
        for trace in corpus.failures[:5]:
            live = suite.evaluate(trace)
            offline = suite.evaluate(trace_from_json(trace_to_json(trace)))
            assert set(live.observations) == set(offline.observations)
