"""Section 6 theory: Lemma 1, Theorems 2-3, Figure 6, Example 3."""

from __future__ import annotations

import math

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.theory import (
    BoundRow,
    aid_upper_bound_branch,
    aid_upper_bound_pruning,
    chain_search_space,
    count_cpd_solutions,
    cpd_lower_bound,
    figure6_table,
    gt_lower_bound,
    gt_search_space,
    horizontal_expansion,
    log2_binomial,
    symmetric_acdag,
    symmetric_search_space,
    tagt_upper_bound,
    tagt_worst_case_rounds,
    vertical_expansion,
)


class TestSearchSpaces:
    def test_example3_numbers(self):
        """Paper Example 3: GT 64 candidates, CPD 15."""
        assert gt_search_space(6) == 64
        assert symmetric_search_space(1, 2, 3) == 15
        graph = nx.DiGraph()
        nx.add_path(graph, ["A1", "B1", "C1"])
        nx.add_path(graph, ["A2", "B2", "C2"])
        assert count_cpd_solutions(graph) == 15

    def test_chain_equals_gt(self):
        for n in range(1, 6):
            graph = nx.path_graph(n, create_using=nx.DiGraph)
            assert count_cpd_solutions(graph) == chain_search_space(n)
            assert chain_search_space(n) == gt_search_space(n)

    def test_lemma1_horizontal(self):
        # Two parallel 2-chains: 1 + (4-1) + (4-1) = 7.
        assert horizontal_expansion(4, 4) == 7
        graph = nx.DiGraph([("a1", "a2"), ("b1", "b2")])
        assert count_cpd_solutions(graph) == 7

    def test_lemma1_vertical(self):
        # Two sequential 2-chains joined: a 4-chain, 2^4.
        assert vertical_expansion(4, 4) == 16
        graph = nx.path_graph(4, create_using=nx.DiGraph)
        assert count_cpd_solutions(graph) == 16

    def test_symmetric_closed_form_vs_brute_force(self):
        for j, b, n in [(1, 2, 2), (2, 2, 2), (1, 3, 2), (2, 3, 1), (3, 2, 1)]:
            graph = symmetric_acdag(j, b, n)
            assert count_cpd_solutions(graph) == symmetric_search_space(j, b, n), (
                j, b, n,
            )

    def test_brute_force_size_guard(self):
        with pytest.raises(ValueError):
            count_cpd_solutions(nx.path_graph(25, create_using=nx.DiGraph))


@settings(max_examples=30, deadline=None)
@given(
    junctions=st.integers(1, 3),
    branches=st.integers(1, 3),
    chain_length=st.integers(1, 3),
)
def test_property_lemma1_composition(junctions, branches, chain_length):
    """Closed form == composed expansions == brute force (small DAGs)."""
    if junctions * branches * chain_length > 12:
        return
    graph = symmetric_acdag(junctions, branches, chain_length)
    brute = count_cpd_solutions(graph)
    closed = symmetric_search_space(junctions, branches, chain_length)
    composed = vertical_expansion(
        *[
            horizontal_expansion(*[2**chain_length] * branches)
            for __ in range(junctions)
        ]
    )
    assert brute == closed == composed


class TestBounds:
    def test_log2_binomial(self):
        assert log2_binomial(4, 2) == pytest.approx(math.log2(6))
        assert log2_binomial(10, 0) == pytest.approx(0.0)
        assert log2_binomial(3, 5) == float("-inf")

    def test_cpd_lower_bound_below_gt(self):
        """Theorem 2: pruning strictly reduces the lower bound."""
        for n, d in [(50, 3), (100, 8), (284, 20)]:
            gt = gt_lower_bound(n, d)
            for s1 in (1, 2, 5):
                cpd = cpd_lower_bound(n, d, s1)
                assert cpd < gt
            assert cpd_lower_bound(n, d, 5) < cpd_lower_bound(n, d, 1)

    def test_theorem3_upper_bound_below_tagt(self):
        for n, d in [(64, 7), (93, 10)]:
            tagt = tagt_upper_bound(n, d)
            assert aid_upper_bound_pruning(n, d, s2=3) < tagt
            # S2 = 1 degenerates to (almost) TAGT.
            assert aid_upper_bound_pruning(n, d, s2=1) == pytest.approx(
                tagt - d * (d - 1) / (2 * n)
            )

    def test_branch_bound_beats_tagt_when_j_below_d(self):
        """Section 6.3.1: J log T + D log N_M < D log(T·N_M) iff J < D."""
        threads, path_len = 8, 16
        n = threads * path_len
        for junctions, d in [(2, 5), (1, 3), (3, 8)]:
            assert junctions < d
            assert aid_upper_bound_branch(
                junctions, threads, path_len, d
            ) < tagt_upper_bound(n, d)

    def test_tagt_worst_case_matches_paper_figure7(self):
        """D·⌈log2 N⌉ reproduces most of the paper's TAGT column."""
        assert tagt_worst_case_rounds(64, 7) == 42  # Cosmos DB — exact
        assert tagt_worst_case_rounds(24, 1) == 5  # Network — exact
        assert tagt_worst_case_rounds(25, 3) == 15  # BuildAndTest — exact
        assert tagt_worst_case_rounds(93, 10) == 70  # HealthTelemetry — exact

    def test_figure6_table_shape(self):
        cpd, gt = figure6_table(3, 4, 3, 4, s1=2, s2=2)
        assert isinstance(cpd, BoundRow) and cpd.name == "CPD"
        assert cpd.search_space < gt.search_space
        assert cpd.lower_bound < gt.lower_bound
        assert cpd.upper_bound < gt.upper_bound
        assert cpd.lower_bound <= cpd.upper_bound


class TestSymmetricDag:
    def test_structure(self):
        graph = symmetric_acdag(2, 3, 4)
        assert len(graph) == 2 * 3 * 4
        assert nx.is_directed_acyclic_graph(graph)
        heads = [n for n in graph if graph.in_degree(n) == 0]
        assert len(heads) == 3  # first junction's branch heads

    def test_single_chain_degenerate(self):
        graph = symmetric_acdag(1, 1, 5)
        assert nx.is_path(graph, list(nx.topological_sort(graph)))
