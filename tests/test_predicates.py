"""Predicate model: evaluation, interventions, and safety per kind."""

from __future__ import annotations

import pytest

from repro.core.predicates import (
    CompoundAndPredicate,
    DataRacePredicate,
    ExecutedPredicate,
    FailurePredicate,
    MethodFailsPredicate,
    Observation,
    OrderViolationPredicate,
    PredicateKind,
    TooFastPredicate,
    TooSlowPredicate,
    WrongReturnPredicate,
    racy_window,
)
from repro.sim import Program, run_program
from repro.sim.faults import (
    CatchException,
    DelayReturn,
    ForceOrder,
    ForceReturn,
    SerializeMethods,
)
from repro.sim.tracing import MethodKey


def _trace(program, seed=0, interventions=()):
    return run_program(program, seed, interventions).trace


@pytest.fixture(scope="module")
def sample_program():
    def main(ctx):
        value = yield from ctx.call("Get", True)
        yield from ctx.call("Slowish", 30)
        try:
            yield from ctx.call("Thrower")
        except Exception:
            pass
        return value

    def get(ctx, good):
        yield from ctx.work(2)
        return "good" if good else "bad"

    def slowish(ctx, ticks):
        yield from ctx.work(ticks)
        return "done"

    def thrower(ctx):
        yield from ctx.work(1)
        ctx.throw("Oops")

    return Program(
        name="preds",
        methods={"Main": main, "Get": get, "Slowish": slowish, "Thrower": thrower},
        main="Main",
        readonly_methods=frozenset({"Get", "Slowish", "Thrower"}),
    )


class TestObservation:
    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError):
            Observation(10, 5)

    def test_identity_is_pid_based(self):
        key = MethodKey("M", "main", 0)
        a = MethodFailsPredicate(key=key, exc_kind="E")
        b = MethodFailsPredicate(key=key, exc_kind="E")
        c = MethodFailsPredicate(key=key, exc_kind="Other")
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestMethodFails(object):
    def test_detects_exception(self, sample_program):
        trace = _trace(sample_program)
        key = MethodKey("Thrower", "main", 0)
        pred = MethodFailsPredicate(key=key, exc_kind="Oops")
        obs = pred.evaluate(trace)
        assert obs is not None
        assert obs.start == obs.end

    def test_kind_mismatch_not_observed(self, sample_program):
        trace = _trace(sample_program)
        pred = MethodFailsPredicate(
            key=MethodKey("Thrower", "main", 0), exc_kind="Different"
        )
        assert pred.evaluate(trace) is None

    def test_intervention_is_catch(self, sample_program):
        pred = MethodFailsPredicate(
            key=MethodKey("Thrower", "main", 0), exc_kind="Oops"
        )
        (iv,) = pred.interventions()
        assert isinstance(iv, CatchException)
        repaired = _trace(sample_program, interventions=(iv,))
        assert pred.evaluate(repaired) is None

    def test_safety_requires_readonly(self, sample_program):
        pred = MethodFailsPredicate(
            key=MethodKey("Thrower", "main", 0), exc_kind="Oops"
        )
        assert pred.is_safe(sample_program)
        unsafe = MethodFailsPredicate(
            key=MethodKey("Main", "main", 0), exc_kind="Oops"
        )
        assert not unsafe.is_safe(sample_program)


class TestDurations:
    def test_too_slow_observed_and_anchored_at_excess(self, sample_program):
        trace = _trace(sample_program)
        slow = next(trace.executions_of("Slowish"))
        pred = TooSlowPredicate(
            key=slow.key, threshold=10, correct_return="done"
        )
        obs = pred.evaluate(trace)
        assert obs is not None
        assert obs.start == slow.start_time + 10  # the excess point
        assert obs.end == slow.end_time

    def test_too_slow_repaired_by_skip(self, sample_program):
        key = MethodKey("Slowish", "main", 0)
        pred = TooSlowPredicate(key=key, threshold=10, correct_return="done")
        (iv,) = pred.interventions()
        assert isinstance(iv, ForceReturn) and iv.skip_body
        repaired = _trace(sample_program, interventions=(iv,))
        assert pred.evaluate(repaired) is None

    def test_too_fast_and_delay_repair(self, sample_program):
        key = MethodKey("Slowish", "main", 0)
        pred = TooFastPredicate(key=key, threshold=100)
        trace = _trace(sample_program)
        assert pred.evaluate(trace) is not None
        (iv,) = pred.interventions()
        assert isinstance(iv, DelayReturn)
        repaired = _trace(sample_program, interventions=(iv,))
        assert pred.evaluate(repaired) is None


class TestWrongReturn:
    def test_detect_and_repair(self, sample_program):
        key = MethodKey("Get", "main", 0)
        pred = WrongReturnPredicate(key=key, correct_value="other")
        trace = _trace(sample_program)
        assert pred.evaluate(trace) is not None  # "good" != "other"
        correct = WrongReturnPredicate(key=key, correct_value="good")
        assert correct.evaluate(trace) is None
        (iv,) = pred.interventions()
        repaired = _trace(sample_program, interventions=(iv,))
        assert pred.evaluate(repaired) is None

    def test_not_observed_on_exceptioned_call(self, sample_program):
        pred = WrongReturnPredicate(
            key=MethodKey("Thrower", "main", 0), correct_value="x"
        )
        assert pred.evaluate(_trace(sample_program)) is None


class TestExecuted:
    def test_observed_unless_skipped(self, sample_program):
        key = MethodKey("Slowish", "main", 0)
        pred = ExecutedPredicate(key=key, skip_value="done")
        assert pred.evaluate(_trace(sample_program)) is not None
        (iv,) = pred.interventions()
        assert isinstance(iv, ForceReturn) and iv.skip_body
        repaired = _trace(sample_program, interventions=(iv,))
        assert pred.evaluate(repaired) is None


class TestDataRace:
    def test_canonical_pid_symmetry(self):
        a = MethodKey("A", "t1", 0)
        b = MethodKey("B", "t2", 0)
        assert (
            DataRacePredicate(a=a, b=b, obj="x").pid
            == DataRacePredicate(a=b, b=a, obj="x").pid
        )

    def test_sandwich_semantics(self, racy_program):
        failing_seed = next(
            s for s in range(100) if run_program(racy_program, s).failed
        )
        trace = _trace(racy_program, seed=failing_seed)
        updater = next(trace.executions_of("Updater"))
        reader = next(trace.executions_of("Reader"))
        window = racy_window(updater, reader, "counter")
        assert window is not None
        # The reader's intrusion lies strictly inside the protocol.
        u_times = [a.time for a in updater.accesses if a.obj == "counter"]
        assert min(u_times) == window.start
        assert min(u_times) < window.end < max(u_times)

    def test_near_miss_is_not_a_race(self, racy_program):
        succeeding = next(
            s for s in range(100) if not run_program(racy_program, s).failed
        )
        trace = _trace(racy_program, seed=succeeding)
        updater = next(trace.executions_of("Updater"))
        reader = next(trace.executions_of("Reader"))
        assert racy_window(updater, reader, "counter") is None

    def test_common_lock_suppresses_race(self, racy_program):
        pred = DataRacePredicate(
            a=MethodKey("Updater", "main", 0),
            b=MethodKey("Reader", "reader", 0),
            obj="counter",
        )
        (iv,) = pred.interventions()
        assert isinstance(iv, SerializeMethods)
        for seed in range(40):
            trace = _trace(racy_program, seed=seed, interventions=(iv,))
            assert pred.evaluate(trace) is None
            assert not trace.failed


class TestOrderViolation:
    def test_detect_and_repair(self):
        def main(ctx):
            ctx.poke("early", ctx.rand() < 0.5)
            yield from ctx.spawn("w", "Late")
            yield from ctx.call("First")
            yield from ctx.join("w")
            return "ok"

        def first(ctx):
            yield from ctx.work(40)
            return "first"

        def late(ctx):
            yield from ctx.work(5 if ctx.peek("early") else 100)
            yield from ctx.call("Second")
            return "late"

        def second(ctx):
            yield from ctx.work(3)
            return "second"

        program = Program(
            name="order",
            methods={"Main": main, "First": first, "Late": late, "Second": second},
            main="Main",
        )
        pred = OrderViolationPredicate(
            first=MethodKey("First", "main", 0),
            second=MethodKey("Second", "w", 0),
        )
        observed = {
            bool(pred.evaluate(_trace(program, seed=s))) for s in range(30)
        }
        assert observed == {True, False}, "violation must be intermittent"
        (iv,) = pred.interventions()
        assert isinstance(iv, ForceOrder)
        for seed in range(15):
            assert pred.evaluate(_trace(program, seed=seed, interventions=(iv,))) is None


class TestCompoundAndFailure:
    def test_compound_requires_all_parts(self, sample_program):
        trace = _trace(sample_program)
        good = WrongReturnPredicate(
            key=MethodKey("Get", "main", 0), correct_value="other"
        )
        absent = MethodFailsPredicate(
            key=MethodKey("Get", "main", 0), exc_kind="Nope"
        )
        both = CompoundAndPredicate(parts=(good, absent))
        assert both.evaluate(trace) is None
        fails = MethodFailsPredicate(
            key=MethodKey("Thrower", "main", 0), exc_kind="Oops"
        )
        both2 = CompoundAndPredicate(parts=(good, fails))
        obs = both2.evaluate(trace)
        assert obs is not None
        assert obs.start == max(
            good.evaluate(trace).start, fails.evaluate(trace).start
        )
        assert both2.kind is PredicateKind.COMPOUND_AND
        assert len(both2.interventions()) == 2

    def test_failure_predicate_matches_signature(self, racy_program):
        failing = next(s for s in range(100) if run_program(racy_program, s).failed)
        trace = _trace(racy_program, seed=failing)
        pred = FailurePredicate(signature=trace.failure.signature)
        assert pred.evaluate(trace) is not None
        other = FailurePredicate(signature="crash/Other")
        assert other.evaluate(trace) is None
        with pytest.raises(LookupError):
            pred.interventions()
