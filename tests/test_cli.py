"""Command-line interface tests (direct main() invocation)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["debug", "nonexistent"])

    def test_defaults(self):
        args = build_parser().parse_args(["debug", "network"])
        assert args.approach == "AID"
        assert args.runs == 50


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("npgsql", "kafka", "cosmosdb"):
            assert name in out

    def test_debug_network(self, capsys):
        assert main(["debug", "network", "--runs", "30"]) == 0
        out = capsys.readouterr().out
        assert "root cause" in out
        assert "DuplicateKey" in out

    def test_debug_with_dot(self, capsys):
        assert main(["debug", "network", "--runs", "30", "--dot"]) == 0
        assert "digraph acdag" in capsys.readouterr().out

    def test_example3(self, capsys):
        assert main(["example3"]) == 0
        out = capsys.readouterr().out
        assert "64" in out and "15" in out

    def test_figure6(self, capsys):
        assert main(["figure6", "--junctions", "2"]) == 0
        assert "CPD" in capsys.readouterr().out

    def test_figure8_small(self, capsys):
        assert main(["figure8", "--apps", "5"]) == 0
        out = capsys.readouterr().out
        assert "exact recovery everywhere: True" in out

    def test_trace_to_stdout(self, capsys):
        assert main(["trace", "network", "--seed", "3"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert payload["program"] == "network-controlplane"

    def test_trace_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        assert main(["trace", "network", "--seed", "3", "--out", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["seed"] == 3
