"""Resharding and predicate-suite persistence: the corpus can change
shape (``repro corpus reshard``) and stay warm (``suite.json``) without
ever re-paying an evaluation or a discovery pass."""

from __future__ import annotations

import json

import pytest

import repro
from repro.api import CorpusSpec, EventLog, RunSpec, run
from repro.cli import main
from repro.core.extraction import PredicateSuite
from repro.corpus import CorpusError, IncrementalPipeline, TraceStore


def canonical(report) -> str:
    return json.dumps(report.to_dict(), sort_keys=True)


def analyze(corpus_dir: str):
    """One incremental analyze via the API; returns (report, event log)."""
    log = EventLog()
    report = run(
        RunSpec(corpus=CorpusSpec(dir=corpus_dir, mode="incremental")),
        observers=[log],
    )
    return report, log


@pytest.fixture()
def corpus_dir(tmp_path):
    d = str(tmp_path / "corpus")
    assert main(["corpus", "init", d, "--workload", "network"]) == 0
    assert main(["corpus", "ingest", d, "--runs", "5"]) == 0
    return d


@pytest.fixture()
def analyzed_corpus(corpus_dir):
    """A corpus with one cold analyze behind it."""
    report, log = analyze(corpus_dir)
    return corpus_dir, canonical(report), log


class TestReshard:
    @pytest.mark.parametrize("width", [0, 1])
    def test_reshard_preserves_everything(self, analyzed_corpus, width):
        corpus_dir, baseline, cold_log = analyzed_corpus
        assert cold_log.first("logs-evaluated").fresh > 0

        before = TraceStore.open(corpus_dir)
        entries_before = dict(before.entries)
        stats = before.reshard(width)
        assert stats["n_traces"] == len(entries_before)
        assert stats["pairs_preserved"] > 0

        after = TraceStore.open(corpus_dir)
        assert after.shard_width == width
        assert dict(after.entries) == entries_before
        # every trace body is readable from its new shard
        for fp in entries_before:
            assert after.load(fp).fingerprint == fp

        # the migration is free: zero fresh evaluations, zero
        # rediscovery, byte-identical analysis report
        report, log = analyze(corpus_dir)
        assert log.first("logs-evaluated").fresh == 0
        assert log.first("suite-frozen").source == "persisted"
        assert canonical(report) == baseline

    def test_round_trip_through_many_widths(self, analyzed_corpus):
        corpus_dir, baseline, _ = analyzed_corpus
        for width in (0, 3, 1, 2):
            TraceStore.open(corpus_dir).reshard(width)
            report, log = analyze(corpus_dir)
            assert log.first("logs-evaluated").fresh == 0
            assert canonical(report) == baseline

    def test_same_width_is_a_noop(self, corpus_dir):
        store = TraceStore.open(corpus_dir)
        stats = store.reshard(store.shard_width)
        assert stats["shards_before"] == stats["shards_after"]

    def test_invalid_width_rejected(self, corpus_dir):
        with pytest.raises(CorpusError, match="between 0 and 4"):
            TraceStore.open(corpus_dir).reshard(9)

    def test_old_shard_dirs_are_removed(self, analyzed_corpus):
        corpus_dir, _, _ = analyzed_corpus
        from repro.corpus.store import SHARDS_DIR

        store = TraceStore.open(corpus_dir)
        old_sids = set(store.shard_ids)
        store.reshard(0)
        remaining = {
            p.name
            for p in (store.root / SHARDS_DIR).iterdir()
            if p.is_dir()
        }
        assert remaining == {"all"}
        assert not (old_sids & remaining)

    def test_interrupted_cleanup_finishes_on_rerun(
        self, analyzed_corpus, monkeypatch
    ):
        """Crash between the manifest commit and the old-dir cleanup:
        the corpus stays consistent, and re-running reshard with the
        already-committed width removes the leftovers."""
        import shutil

        corpus_dir, baseline, _ = analyzed_corpus
        from repro.corpus.store import SHARDS_DIR

        monkeypatch.setattr(shutil, "rmtree", lambda *a, **k: None)
        TraceStore.open(corpus_dir).reshard(1)
        monkeypatch.undo()

        store = TraceStore.open(corpus_dir)
        shards_root = store.root / SHARDS_DIR
        stale = {
            p.name
            for p in shards_root.iterdir()
            if p.is_dir() and not store.is_valid_shard_id(p.name)
        }
        assert stale  # the old width-2 directories survived the "crash"

        # ... but they are invisible: no double-counted pairs, and the
        # analysis is unchanged
        report, log = analyze(corpus_dir)
        assert log.first("logs-evaluated").fresh == 0
        assert canonical(report) == baseline

        # the documented recovery: re-run with the committed width
        store = TraceStore.open(corpus_dir)
        store.reshard(1)
        remaining = {p.name for p in shards_root.iterdir() if p.is_dir()}
        assert not (stale & remaining)

    def test_width0_sentinel_is_not_a_valid_width3_id(self, tmp_path):
        """``"all"`` is three characters long but must never pass for a
        width-3 hex prefix: reshard 0 -> 3 has to remove ``shards/all``
        and the index filter must reject it."""
        d = str(tmp_path / "flat")
        assert main(["corpus", "init", d, "--workload", "network",
                     "--shard-width", "0"]) == 0
        assert main(["corpus", "ingest", d, "--runs", "4"]) == 0
        baseline, _ = analyze(d)
        store = TraceStore.open(d)
        assert store.is_valid_shard_id("all")
        store.reshard(3)
        after = TraceStore.open(d)
        assert not after.is_valid_shard_id("all")
        from repro.corpus.store import SHARDS_DIR

        remaining = {
            p.name for p in (after.root / SHARDS_DIR).iterdir() if p.is_dir()
        }
        assert "all" not in remaining
        report, log = analyze(d)
        assert log.first("logs-evaluated").fresh == 0
        assert canonical(report) == canonical(baseline)

    def test_stale_index_entries_of_other_widths_ignored(
        self, analyzed_corpus
    ):
        """Index entries left by an interrupted reshard (other-width
        shard ids) must never double-count memoized pairs."""
        corpus_dir, _, _ = analyzed_corpus
        store = TraceStore.open(corpus_dir)
        pairs_before = store.eval_matrix().n_pairs
        index = json.loads(store.matrix_index_path.read_text())
        index["shards"] = sorted(set(index["shards"]) | {"all", "a"})
        store.matrix_index_path.write_text(json.dumps(index))
        matrix = TraceStore.open(corpus_dir).eval_matrix()
        assert all(
            store.is_valid_shard_id(sid)
            for sid in matrix.persisted_shard_ids()
        )
        assert matrix.n_pairs == pairs_before

    def test_cli_reshard(self, analyzed_corpus, capsys):
        corpus_dir, baseline, _ = analyzed_corpus
        assert main(["corpus", "reshard", corpus_dir, "--width", "1"]) == 0
        out = capsys.readouterr().out
        assert "width 2 -> 1" in out
        assert "memoized pairs preserved" in out
        assert main(["corpus", "reshard", corpus_dir, "--width", "1"]) == 0
        assert "nothing to do" in capsys.readouterr().out
        report, _ = analyze(corpus_dir)
        assert canonical(report) == baseline


class TestSuitePersistence:
    def test_cold_analyze_persists_the_suite(self, analyzed_corpus):
        corpus_dir, _, log = analyzed_corpus
        assert log.first("suite-frozen").source == "discovered"
        store = TraceStore.open(corpus_dir)
        assert store.suite_path.exists()
        payload = json.loads(store.suite_path.read_text())
        assert payload["corpus_digest"] == store.content_digest
        assert payload["program"] == "network-controlplane"

    def test_warm_analyze_skips_discovery(self, analyzed_corpus, monkeypatch):
        corpus_dir, baseline, _ = analyzed_corpus

        def boom(*args, **kwargs):
            raise AssertionError("discovery ran on a warm corpus")

        monkeypatch.setattr(PredicateSuite, "discover", boom)
        report, log = analyze(corpus_dir)
        assert log.first("suite-frozen").source == "persisted"
        assert log.first("logs-evaluated").fresh == 0
        assert canonical(report) == baseline

    def test_content_change_invalidates_the_suite(self, analyzed_corpus):
        corpus_dir, _, _ = analyzed_corpus
        assert main(["corpus", "ingest", corpus_dir, "--runs", "1"]) == 0
        store = TraceStore.open(corpus_dir)
        assert store.load_suite(program="network-controlplane") is None
        _, log = analyze(corpus_dir)
        assert log.first("suite-frozen").source == "discovered"
        # ... and the new freeze is persisted for the next warm start
        _, warm_log = analyze(corpus_dir)
        assert warm_log.first("suite-frozen").source == "persisted"

    def test_program_mismatch_invalidates_the_suite(self, analyzed_corpus):
        corpus_dir, _, _ = analyzed_corpus
        store = TraceStore.open(corpus_dir)
        assert store.load_suite(program="network-controlplane") is not None
        assert store.load_suite(program=None) is None
        assert store.load_suite(program="other-program") is None

    def test_custom_extractors_do_not_use_the_persisted_suite(
        self, analyzed_corpus
    ):
        from repro.core.extraction import FailureExtractor, MethodFailsExtractor

        corpus_dir, _, _ = analyzed_corpus
        store = TraceStore.open(corpus_dir)
        workload = repro.load_workload("network")
        pipeline = IncrementalPipeline(
            store,
            program=workload.program,
            extractors=[MethodFailsExtractor(), FailureExtractor()],
        )
        pipeline.bootstrap()
        # the persisted (full-catalogue) suite was not reused
        assert all(
            pid.startswith(("fails(", "FAILURE[")) for pid in pipeline.suite.pids()
        )

    def test_suite_round_trip_preserves_fingerprint(self, analyzed_corpus):
        corpus_dir, _, _ = analyzed_corpus
        store = TraceStore.open(corpus_dir)
        suite = store.load_suite(program="network-controlplane")
        clone = PredicateSuite.from_dict(suite.to_dict())
        assert clone.pids() == suite.pids()
        assert list(clone.defs) == list(suite.defs)  # order preserved
        assert clone.fingerprint == suite.fingerprint

    def test_unknown_suite_version_ignored(self, analyzed_corpus):
        corpus_dir, _, _ = analyzed_corpus
        store = TraceStore.open(corpus_dir)
        payload = json.loads(store.suite_path.read_text())
        payload["version"] = 99
        store.suite_path.write_text(json.dumps(payload))
        assert store.load_suite(program="network-controlplane") is None
        _, log = analyze(corpus_dir)
        assert log.first("suite-frozen").source == "discovered"

    def test_warm_debug_still_pays_zero_evaluations(
        self, analyzed_corpus, capsys
    ):
        """The CorpusSession path keeps its own guarantee next to the
        persisted-suite fast path."""
        corpus_dir, _, _ = analyzed_corpus
        assert main(["debug", "network", "--corpus", corpus_dir]) == 0
        out = capsys.readouterr().out
        assert "0 fresh predicate evaluations" in out
