"""Clocks: virtual time and Lamport bookkeeping."""

from __future__ import annotations

import pytest

from repro.sim.clock import LamportClock, LamportRegistry, VirtualClock


class TestVirtualClock:
    def test_monotone(self):
        clock = VirtualClock()
        assert clock.now == 0
        assert clock.advance(5) == 5
        assert clock.advance(0) == 5
        assert clock.now == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)


class TestLamportClock:
    def test_tick_increments(self):
        clock = LamportClock()
        assert clock.tick() == 1
        assert clock.tick() == 2

    def test_merge_takes_max_then_ticks(self):
        clock = LamportClock(time=3)
        assert clock.merge(10) == 11
        assert clock.merge(2) == 12  # already ahead: just ticks


class TestLamportRegistry:
    def test_happens_before_through_channel(self):
        """Writer's stamp orders a later reader after it."""
        registry = LamportRegistry()
        writer, reader = LamportClock(), LamportClock()
        stamp = registry.stamp("var:x", writer)
        observed = registry.observe("var:x", reader)
        assert observed > stamp

    def test_independent_channels_do_not_interfere(self):
        registry = LamportRegistry()
        a, b = LamportClock(), LamportClock()
        registry.stamp("var:x", a)
        before = b.time
        registry.observe("var:y", b)
        assert b.time == before + 1  # only the local tick

    def test_stamp_keeps_channel_maximum(self):
        registry = LamportRegistry()
        fast, slow = LamportClock(time=100), LamportClock(time=1)
        registry.stamp("ch", fast)
        registry.stamp("ch", slow)  # must not regress the channel
        reader = LamportClock()
        assert registry.observe("ch", reader) > 100


class TestLamportInTraces:
    def test_cross_thread_happens_before_reflected(self, racy_program):
        """A spawned thread's lamport times exceed the spawn point's."""
        from repro.sim import run_program

        trace = run_program(racy_program, 2).trace
        main_exec = next(trace.executions_of("Main"))
        reader = next(trace.executions_of("Reader"))
        assert reader.start_lamport > 0
        assert main_exec.end_lamport > reader.end_lamport - 1000  # sane
        # The racing read merges the writer's stamp: after the updater's
        # first write, the reader's access lamport exceeds it.
        updater = next(trace.executions_of("Updater"))
        u_writes = [a for a in updater.accesses if a.is_write]
        r_reads = [a for a in reader.accesses if a.obj == "counter"]
        if r_reads and u_writes and r_reads[0].time > u_writes[0].time:
            assert r_reads[0].lamport > u_writes[0].lamport
