"""Counterfactual ground truth, workload by workload.

The strongest semantic check in the suite: for every case study,

* intervening on **each causal-path predicate individually** stops the
  failure on every replayed failing seed (they are genuine
  counterfactual causes, Definition 1's third condition);
* intervening on a **sample of noise predicates together** leaves the
  failure standing (they are genuinely spurious);
* applying the **root cause's repair** makes the program permanently
  healthy across a fresh seed sweep.
"""

from __future__ import annotations

import pytest

from repro.core import Approach
from repro.sim import Simulator
from repro.workloads.common import REGISTRY

from conftest import case_study_session


@pytest.fixture(params=sorted(REGISTRY.names()))
def case(request):
    session = case_study_session(request.param)
    report = session.run(Approach.AID)
    return request.param, session, report


def test_every_causal_predicate_is_counterfactual(case):
    name, session, report = case
    runner = session.make_runner()
    for pid in report.causal_path[:-1]:
        outcomes = runner.run_group(frozenset({pid}))
        assert not any(o.failed for o in outcomes), (name, pid)


def test_noise_predicates_are_not_counterfactual(case):
    name, session, report = case
    runner = session.make_runner()
    causal = set(report.causal_path)
    noise = sorted(set(report.fully_discriminative) - causal)
    if not noise:
        pytest.skip("no noise predicates")
    # All noise together must still fail (none hides a cause).
    outcomes = runner.run_group(frozenset(noise))
    assert any(o.failed for o in outcomes), name


def test_root_cause_repair_fixes_the_program(case):
    name, session, report = case
    root = report.discovery.root_cause
    injections = session._suite[root].interventions()
    simulator = Simulator(session.program)
    for seed in range(120):
        result = simulator.run(seed, injections)
        assert not result.failed, (name, root, seed)


def test_spurious_set_partitions_the_candidates(case):
    """Every fully-discriminative predicate ends up in exactly one of:
    causal, spurious, or discarded-at-AC-DAG-construction."""
    name, __, report = case
    causal = set(report.causal_path) - {report.discovery.failure}
    spurious = set(report.discovery.spurious)
    discarded = set(report.dag.discarded)
    assert causal.isdisjoint(spurious)
    assert causal.isdisjoint(discarded)
    assert causal | spurious | discarded == set(
        report.fully_discriminative
    ), name
