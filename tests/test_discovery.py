"""Algorithms 2-3: branch pruning and full causal path discovery.

Uses the synthetic oracle (ground truth known by construction) plus
hand-built DAGs reproducing the paper's Section 5.2 walkthrough.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.core.acdag import ACDag
from repro.core.branch import branch_prune
from repro.core.discovery import causal_path_discovery, linear_discovery
from repro.core.intervention import CountingRunner, RunOutcome
from repro.core.variants import Approach, all_approaches, discover
from repro.workloads.synthetic import FAILURE_PID, generate_app, spec_for_maxt


class PathOracle:
    """Oracle over an explicit DAG: causal chain + parented noise."""

    def __init__(self, dag: ACDag, causal: list[str], parents: dict):
        self.dag = dag
        self.causal = causal
        self.parents = parents
        self._topo = dag.topological_order()

    def run_group(self, pids):
        occurred = set()
        causal_index = {p: i for i, p in enumerate(self.causal)}
        for pid in self._topo:
            if pid == self.dag.failure or pid in pids:
                continue
            if pid in causal_index:
                i = causal_index[pid]
                if i == 0 or self.causal[i - 1] in occurred:
                    occurred.add(pid)
            else:
                parent = self.parents.get(pid)
                if parent is None or parent in occurred:
                    occurred.add(pid)
        failed = self.causal[-1] in occurred
        if failed:
            occurred.add(self.dag.failure)
        return [RunOutcome(observed=frozenset(occurred), failed=failed)]


def _figure4_like() -> tuple[ACDag, PathOracle]:
    """An AC-DAG shaped like the paper's Figure 4(a).

    True causal path P1 → P2 → P11 → F; branch {P4, P5, P6} and the
    sub-branch {P9, P10} are noise, as are P3, P7, P8.
    """
    edges = [
        ("P1", "P2"),
        ("P2", "P3"),
        ("P3", "P4"),
        ("P4", "P5"),
        ("P5", "P6"),
        ("P3", "P7"),
        ("P7", "P8"),
        ("P8", "P11"),
        ("P7", "P9"),
        ("P9", "P10"),
        ("P11", FAILURE_PID),
        ("P6", FAILURE_PID),
        ("P10", FAILURE_PID),
    ]
    graph = nx.transitive_closure_dag(nx.DiGraph(edges))
    dag = ACDag(graph=graph, failure=FAILURE_PID)
    causal = ["P1", "P2", "P11"]
    parents = {
        "P3": "P2",
        "P4": "P3",
        "P5": "P4",
        "P6": "P5",
        "P7": "P2",
        "P8": "P7",
        "P9": "P7",
        "P10": "P9",
    }
    return dag, PathOracle(dag, causal, parents)


class TestBranchPrune:
    def test_reduces_figure4_toward_a_chain(self):
        dag, oracle = _figure4_like()
        runner = CountingRunner(oracle)
        result = branch_prune(dag, runner, rng=random.Random(0))
        assert result.junctions >= 1
        assert "P11" in dag.predicates, "causal member must survive"
        # Whole noise branches disappear without per-predicate rounds.
        assert set(result.removed) & {"P4", "P5", "P6"} or set(
            result.removed
        ) & {"P9", "P10"}

    def test_chain_needs_no_interventions(self):
        graph = nx.transitive_closure_dag(
            nx.DiGraph([("A", "B"), ("B", "C"), ("C", FAILURE_PID)])
        )
        dag = ACDag(graph=graph, failure=FAILURE_PID)
        oracle = PathOracle(dag, ["A", "B", "C"], {})
        runner = CountingRunner(oracle)
        result = branch_prune(dag, runner, rng=random.Random(0))
        assert result.junctions == 0
        assert runner.budget.rounds == 0


class TestCausalPathDiscovery:
    def test_figure4_walkthrough(self):
        dag, oracle = _figure4_like()
        result = causal_path_discovery(dag, oracle, rng=random.Random(1))
        assert result.causal_path == ["P1", "P2", "P11", FAILURE_PID]
        assert result.root_cause == "P1"
        assert result.explanation_pids == ["P2", "P11"]
        # The paper's walkthrough needs 8 rounds vs 11 naive; we only
        # require beating naive one-at-a-time.
        assert result.n_rounds < 11

    def test_beats_linear_baseline(self):
        dag, oracle = _figure4_like()
        aid = causal_path_discovery(dag, oracle, rng=random.Random(1))
        naive = linear_discovery(dag, oracle, rng=random.Random(1))
        assert naive.n_rounds == 11  # one per predicate
        assert naive.causal_path == aid.causal_path
        assert aid.n_rounds < naive.n_rounds

    def test_orderings_validated(self):
        dag, oracle = _figure4_like()
        with pytest.raises(ValueError):
            causal_path_discovery(dag, oracle, ordering="sideways")

    def test_budget_counts_all_phases(self):
        dag, oracle = _figure4_like()
        result = causal_path_discovery(dag, oracle, rng=random.Random(2))
        from_records = len(result.rounds)
        assert result.n_rounds == from_records
        assert result.n_executions >= result.n_rounds

    def test_input_dag_not_mutated(self):
        dag, oracle = _figure4_like()
        before = set(dag.predicates)
        causal_path_discovery(dag, oracle, rng=random.Random(0))
        assert set(dag.predicates) == before


class TestVariantLadder:
    def test_all_approaches_recover_truth(self):
        app = generate_app(17, spec_for_maxt(10))
        truth = set(app.causal_path)
        for approach in all_approaches() + [Approach.LINEAR]:
            result = discover(
                approach, app.dag, app.runner(), rng=random.Random(3)
            )
            assert set(result.causal_path) - {FAILURE_PID} == truth, approach
            # Path ordering always follows the AC-DAG topological order.
            assert result.causal_path[:-1] == [
                p for p in app.dag.topological_order() if p in truth
            ]

    def test_linear_costs_n(self):
        app = generate_app(23, spec_for_maxt(6))
        result = discover(
            Approach.LINEAR, app.dag, app.runner(), rng=random.Random(0)
        )
        assert result.n_rounds == app.n_predicates

    def test_aid_dominates_on_average(self):
        """AID ≤ ablations ≤ ~TAGT in expectation (the Figure 8 ladder)."""
        totals = {a: 0 for a in all_approaches()}
        for seed in range(25):
            app = generate_app(seed, spec_for_maxt(14))
            for approach in all_approaches():
                result = discover(
                    approach, app.dag, app.runner(), rng=random.Random(seed)
                )
                totals[approach] += result.n_rounds
        assert totals[Approach.AID] < totals[Approach.AID_P]
        assert totals[Approach.AID_P] < totals[Approach.TAGT]
        assert totals[Approach.AID] < totals[Approach.AID_P_B]

    def test_unknown_approach_rejected(self):
        app = generate_app(1, spec_for_maxt(4))
        with pytest.raises(ValueError):
            discover("MAGIC", app.dag, app.runner())


from hypothesis import given, settings, strategies as st  # noqa: E402


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000), maxt=st.integers(2, 42),
       approach_idx=st.integers(0, 3))
def test_property_discovery_exactness(seed, maxt, approach_idx):
    """For any generated app and any approach, discovery returns exactly
    the ground-truth causal set, ordered topologically, ending in F."""
    app = generate_app(seed, spec_for_maxt(maxt))
    approach = all_approaches()[approach_idx]
    result = discover(approach, app.dag, app.runner(),
                      rng=random.Random(seed % 17))
    assert result.causal_path[-1] == FAILURE_PID
    assert set(result.causal_path[:-1]) == set(app.causal_path)
    assert result.causal_path[:-1] == app.causal_path, (
        "path must follow the chain order"
    )
    # Accounting invariants.
    assert result.n_rounds >= 1
    assert result.n_executions >= result.n_rounds
    assert set(result.spurious).isdisjoint(result.causal_path)
