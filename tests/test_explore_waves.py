"""Wave-parallel exploration: backend-independence of results,
canonical interleaving signatures, partial-order pruning, directed
mutation, and batched corpus ingestion."""

from __future__ import annotations

import json

import pytest

from repro.api.events import EventBus, EventLog
from repro.corpus import IncrementalPipeline, TraceStore
from repro.explore import ExplorationDriver, ExploreConfig, explore
from repro.explore.driver import relevant_flips
from repro.explore.strategies import SwapTail
from repro.harness.runner import collect
from repro.sim import RandomStrategy, ReplayStrategy, Schedule, Simulator
from repro.sim.schedule import (
    SchedulePoint,
    canonical_decisions,
    footprints_conflict,
)
from repro.sim.serialize import stable_digest, trace_to_dict
from repro.workloads.common import REGISTRY


def _fp(thread: str, *keys: tuple[str, bool]) -> frozenset:
    """A footprint: the implicit self-thread write plus explicit keys."""
    return frozenset({(f"thread:{thread}", True), *keys})


@pytest.fixture(scope="module")
def npgsql():
    return REGISTRY.build("npgsql").program


# ---------------------------------------------------------------------------
# Canonical interleaving signatures (Mazurkiewicz normal forms)
# ---------------------------------------------------------------------------


class TestCanonicalDecisions:
    def test_independent_adjacent_decisions_commute(self):
        a = _fp("a", ("var:x", True))
        b = _fp("b", ("var:y", True))
        assert canonical_decisions(["a", "b"], [a, b]) == ("a", "b")
        assert canonical_decisions(["b", "a"], [b, a]) == ("a", "b")

    def test_conflicting_decisions_keep_their_order(self):
        a = _fp("a", ("var:x", True))
        b = _fp("b", ("var:x", True))
        assert canonical_decisions(["b", "a"], [b, a]) == ("b", "a")
        assert canonical_decisions(["a", "b"], [a, b]) == ("a", "b")

    def test_read_after_write_is_ordered(self):
        w = _fp("a", ("var:x", True))
        r = _fp("b", ("var:x", False))
        assert canonical_decisions(["b", "a"], [r, w]) == ("b", "a")

    def test_barrier_orders_everything(self):
        a = _fp("a", ("var:x", True))
        bar = _fp("b", ("*", True))
        assert canonical_decisions(["b", "a"], [bar, a]) == ("b", "a")

    def test_program_order_is_preserved(self):
        # same-thread decisions chain via the implicit thread-key write
        b1 = _fp("b", ("var:x", True))
        b2 = _fp("b", ("var:y", True))
        a = _fp("a", ("var:z", True))
        assert canonical_decisions(
            ["b", "b", "a"], [b1, b2, a]
        ) == ("a", "b", "b")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="footprints"):
            canonical_decisions(["a", "b"], [_fp("a")])

    def test_footprints_conflict(self):
        assert footprints_conflict(
            frozenset({("var:x", True)}), frozenset({("var:x", False)})
        )
        assert not footprints_conflict(
            frozenset({("var:x", False)}), frozenset({("var:x", False)})
        )
        assert not footprints_conflict(
            frozenset({("var:x", True)}), frozenset({("var:y", True)})
        )

    def test_canonical_signature_collapses_equivalent_schedules(self):
        a = _fp("a", ("var:x", True))
        b = _fp("b", ("var:y", True))
        first = Schedule(program="p", seed=0, decisions=("a", "b"))
        second = Schedule(program="p", seed=1, decisions=("b", "a"))
        assert first.signature() != second.signature()
        assert first.canonical_signature([a, b]) == (
            second.canonical_signature([b, a])
        )

    def test_canonical_signature_without_footprints_falls_back(self):
        schedule = Schedule(program="p", seed=0, decisions=("a", "b"))
        # no independence information: one class per exact interleaving,
        # but hashed in its own namespace (never collides with exact
        # signatures)
        assert schedule.canonical_signature(None) != schedule.signature()
        assert schedule.canonical_signature(None) == (
            schedule.canonical_signature([_fp("a")])  # length mismatch
        )

    def test_simulated_executions_carry_footprints(self, npgsql):
        execution = Simulator(npgsql).run(1)
        assert len(execution.footprints) == len(execution.schedule)
        canonical = execution.schedule.canonical_signature(
            execution.footprints
        )
        assert canonical  # well-formed (no cycle, full coverage)


# ---------------------------------------------------------------------------
# Directed mutation machinery
# ---------------------------------------------------------------------------


class TestRelevantFlips:
    def test_independent_flip_is_filtered(self):
        a = _fp("a", ("var:x", True))
        b = _fp("b", ("var:y", True))
        # flipping to b hoists its action across a's — they commute, so
        # the flip would re-execute the same class
        assert relevant_flips(
            ("a", "b"), (a, b), [(0, ("a", "b"))]
        ) == ()

    def test_conflicting_flip_is_kept(self):
        a = _fp("a", ("var:x", True))
        b = _fp("b", ("var:x", True))
        assert relevant_flips(
            ("a", "b"), (a, b), [(0, ("a", "b"))]
        ) == ((0, "b"),)

    def test_never_ran_again_is_kept(self):
        a = _fp("a", ("var:x", True))
        b = _fp("b", ("var:y", True))
        # candidate c never ran after the branch: entirely unobserved
        assert relevant_flips(
            ("a", "b"), (a, b), [(0, ("a", "c"))]
        ) == ((0, "c"),)

    def test_missing_footprints_keep_every_flip(self):
        assert relevant_flips(
            ("a", "b"), (), [(0, ("a", "b"))]
        ) == ((0, "b"),)

    def test_swap_tail_follows_queue_by_readiness(self):
        tail = SwapTail(queue=("c", "a", "b"), seed=0)
        point = lambda i, *cands: SchedulePoint(  # noqa: E731
            index=i, time=0, candidates=cands
        )
        # c not ready yet: the earliest ready queued thread runs
        assert tail.choose(point(0, "a", "b")) == "a"
        assert tail.choose(point(1, "b", "c")) == "c"
        assert tail.choose(point(2, "b")) == "b"
        # queue exhausted: seeded-random fallback stays in candidates
        assert tail.choose(point(3, "x", "y")) in ("x", "y")


# ---------------------------------------------------------------------------
# Backend-independence: the acceptance gate
# ---------------------------------------------------------------------------


class TestWaveDeterminism:
    @pytest.mark.parametrize("name", sorted(REGISTRY.names()))
    def test_payload_identical_jobs_1_vs_8(self, name):
        program = REGISTRY.build(name).program
        payloads = []
        for jobs in (1, 8):
            result = explore(
                program, ExploreConfig(budget=32, jobs=jobs)
            )
            payloads.append(json.dumps(result.to_dict(), sort_keys=True))
        assert payloads[0] == payloads[1]

    def test_payload_identical_across_backends(self, npgsql):
        payloads = []
        for jobs, backend in ((1, "serial"), (4, "thread"), (2, "process")):
            result = explore(
                npgsql,
                ExploreConfig(budget=48, jobs=jobs, backend=backend),
            )
            payloads.append(json.dumps(result.to_dict(), sort_keys=True))
        assert payloads[0] == payloads[1] == payloads[2]

    def test_payload_excludes_throughput_knobs(self, npgsql):
        payload = explore(
            npgsql, ExploreConfig(budget=16, jobs=4)
        ).to_dict()
        assert "jobs" not in payload
        assert "backend" not in payload

    def test_wave_size_must_be_positive(self, npgsql):
        with pytest.raises(ValueError, match="wave"):
            ExplorationDriver(npgsql, ExploreConfig(wave=0))


# ---------------------------------------------------------------------------
# Partial-order pruning
# ---------------------------------------------------------------------------


class TestPartialOrderPruning:
    def test_every_execution_is_class_accounted(self, npgsql):
        result = explore(npgsql, ExploreConfig(budget=64))
        assert result.partial_order is True
        assert result.distinct_canonical >= 1
        assert (
            result.distinct_canonical + result.pruned_equivalent
            == result.executions
        )

    def test_pruning_widens_class_discovery_at_equal_budget(self, npgsql):
        on = explore(npgsql, ExploreConfig(budget=80, partial_order=True))
        off = explore(npgsql, ExploreConfig(budget=80, partial_order=False))
        # deterministic fixed-seed comparison: directed class-flipping
        # mutation finds strictly more equivalence classes than the
        # blind prefix-cut baseline for the same 80 executions
        assert on.distinct_canonical > off.distinct_canonical
        assert on.pruned_equivalent < off.pruned_equivalent

    def test_equivalent_pruned_events(self, npgsql):
        log = EventLog()
        result = explore(
            npgsql, ExploreConfig(budget=64), bus=EventBus([log])
        )
        pruned = [e for e in log.events if e.kind == "equivalent-pruned"]
        assert len(pruned) == result.pruned_equivalent
        assert all(e.occurrences >= 2 for e in pruned)
        assert all(e.canonical and e.signature for e in pruned)
        finished = log.first("exploration-finished")
        assert finished.distinct_canonical == result.distinct_canonical
        assert finished.pruned_equivalent == result.pruned_equivalent

    def test_equivalent_pruned_round_trips_through_runlog(self):
        from repro.api import events as ev
        from repro.obs.runlog import EVENT_TYPES, _event_from, _event_payload

        assert ev.EquivalentPruned.kind in EVENT_TYPES
        event = ev.EquivalentPruned(
            signature="abc", canonical="def", occurrences=3
        )
        assert _event_from(event.kind, _event_payload(event)) == event

    def test_disabled_pruning_emits_no_pruned_events(self, npgsql):
        log = EventLog()
        explore(
            npgsql,
            ExploreConfig(budget=48, partial_order=False),
            bus=EventBus([log]),
        )
        assert "equivalent-pruned" not in set(log.kinds())

    def test_directed_mutations_replay_cleanly(self, npgsql):
        driver = ExplorationDriver(npgsql, ExploreConfig(budget=80))
        observed = []
        original = driver._observe

        def spy(observation, result):
            observed.append(observation)
            original(observation, result)

        driver._observe = spy
        driver.run()
        mutated = [o for o in observed if o.mutated]
        assert mutated, "exploration never exercised directed mutation"
        # forced flips re-execute the parent under its own seed: the
        # replayed prefix must never diverge
        assert all(not o.diverged for o in mutated)


# ---------------------------------------------------------------------------
# Mutation under a diverging parent (satellite: replay divergence)
# ---------------------------------------------------------------------------


class TestMutationDivergence:
    def test_bogus_prefix_diverges_but_recording_stays_replayable(
        self, npgsql
    ):
        simulator = Simulator(npgsql)
        parent = simulator.run(3).schedule
        assert len(parent) > 4
        # corrupt the parent's prefix with a thread that can never be
        # ready — the mutation's replayed prefix must flag divergence
        bogus = Schedule(
            program=parent.program,
            seed=parent.seed,
            decisions=("no-such-thread",) + parent.decisions[1:],
        )
        strategy = ReplayStrategy(
            schedule=bogus, prefix=4, tail=RandomStrategy(99)
        )
        execution = simulator.run(parent.seed, strategy=strategy)
        assert strategy.diverged is True
        # what actually ran was recorded faithfully: replaying the
        # *recorded* schedule reproduces the trace byte-identically
        replay = simulator.run(
            execution.schedule.seed,
            strategy=ReplayStrategy(schedule=execution.schedule),
        )
        assert stable_digest(trace_to_dict(replay.trace)) == stable_digest(
            trace_to_dict(execution.trace)
        )


# ---------------------------------------------------------------------------
# Batched corpus ingestion
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def racy_corpus(racy_program):
    return collect(racy_program, n_success=20, n_fail=20)


def _seeded_pipeline(root, racy_program, racy_corpus):
    store = TraceStore.init(root, program=racy_program.name)
    for trace in racy_corpus.successes[:15] + racy_corpus.failures[:15]:
        store.ingest(trace)
    store.save()
    pipeline = IncrementalPipeline(store, program=racy_program)
    pipeline.bootstrap()
    return pipeline


class TestBatchedIngestion:
    def test_batch_equals_sequential_ingestion(
        self, tmp_path, racy_program, racy_corpus
    ):
        held_back = (
            racy_corpus.successes[15:]
            + racy_corpus.failures[15:]
            + racy_corpus.failures[15:16]  # one duplicate
        )
        serial = _seeded_pipeline(tmp_path / "a", racy_program, racy_corpus)
        serial_results = [serial.ingest(t) for t in held_back]
        batched = _seeded_pipeline(tmp_path / "b", racy_program, racy_corpus)
        batch = batched.ingest_batch(held_back, save=True)

        # per-trace outcomes line up in submission order
        assert [r.added for r in batch.results] == [
            r.added for r in serial_results
        ]
        assert [r.failed for r in batch.results] == [
            r.failed for r in serial_results
        ]
        assert batch.n_added == sum(1 for r in serial_results if r.added)
        # aggregate view damage matches the union of per-trace damage
        assert batch.removed_pids == frozenset().union(
            *(r.removed_pids for r in serial_results)
        )
        # the final maintained state is byte-identical
        assert batched.fully == serial.fully
        assert batched.dag.structure() == serial.dag.structure()
        assert set(batched.debugger.fully_discriminative_pids()) == set(
            serial.debugger.fully_discriminative_pids()
        )
        assert len(batched.logs) == len(serial.logs)
        assert sorted(batched.store.entries) == sorted(serial.store.entries)

    def test_batch_stamps_schedule_signatures(
        self, tmp_path, racy_program, racy_corpus
    ):
        pipeline = _seeded_pipeline(
            tmp_path / "c", racy_program, racy_corpus
        )
        traces = racy_corpus.successes[15:17]
        batch = pipeline.ingest_batch(traces, ["sig-a", "sig-b"])
        assert all(r.added for r in batch.results)
        stamped = {
            e.schedule
            for e in pipeline.store.entries.values()
            if e.schedule is not None
        }
        assert {"sig-a", "sig-b"} <= stamped

    def test_batch_length_mismatch_rejected(
        self, tmp_path, racy_program, racy_corpus
    ):
        pipeline = _seeded_pipeline(
            tmp_path / "d", racy_program, racy_corpus
        )
        with pytest.raises(ValueError, match="schedule signatures"):
            pipeline.ingest_batch(
                racy_corpus.successes[15:17], ["only-one"]
            )

    def test_batch_requires_bootstrap(
        self, tmp_path, racy_program, racy_corpus
    ):
        from repro.corpus import CorpusError

        store = TraceStore.init(tmp_path / "e", program=racy_program.name)
        pipeline = IncrementalPipeline(store, program=racy_program)
        with pytest.raises(CorpusError, match="bootstrap"):
            pipeline.ingest_batch(racy_corpus.successes[:1])

    def test_exploration_batches_match_store_counts(
        self, npgsql, tmp_path
    ):
        store = TraceStore.init(tmp_path / "f", program=npgsql.name)
        result = explore(
            npgsql, ExploreConfig(budget=100), store=store
        )
        reopened = TraceStore.open(tmp_path / "f")
        assert reopened.n_fail == result.ingested_fail
        assert reopened.n_pass == result.ingested_pass
