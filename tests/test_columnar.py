"""The columnar shard format, proven by differential testing.

Three layers of parity, each against the object path as the oracle:

* **round-trip** — ``ShardTable.decode(row)`` re-serializes to the
  same canonical JSON as ``store.load(fp)`` for every trace of every
  seeded random corpus (the generator in :mod:`tests.gen` aims for the
  schema's corners: unicode, NaN, empty traces, duplicate keys);
* **observation parity** — ``SuiteKernel.sweep`` agrees with
  ``PredicateDef.evaluate`` for every columnar predicate kind, on
  predicates drawn from the generated traces *and* on keys that miss;
* **pipeline parity** — ``evaluate_fingerprints(columnar=...)``
  produces identical logs, counters, and (for the workloads) a
  byte-identical ``SessionReport.to_dict()`` at 1 and 8 jobs.
"""

from __future__ import annotations

import itertools
import random

import pytest

from gen import OBJECTS, RETURN_VALUES, make_corpus, make_payload
from repro.core.evalkernel import SuiteKernel
from repro.core.extraction import PredicateSuite
from repro.core.predicates import (
    CompoundAndPredicate,
    DataRacePredicate,
    ExecutedPredicate,
    FailurePredicate,
    MethodFailsPredicate,
    OrderViolationPredicate,
    TooFastPredicate,
    TooSlowPredicate,
    WrongReturnPredicate,
)
from repro.corpus.store import TraceStore
from repro.exec import ExecutionEngine, make_backend
from repro.harness.session import SessionConfig
from repro.sim.serialize import canonical_json, trace_from_dict, trace_to_dict
from repro.sim.tracing import MethodKey
from repro.workloads.common import REGISTRY

SEEDS = range(24)


def _ingest(root, payloads) -> TraceStore:
    store = TraceStore.init(root, program=payloads[0]["program"])
    for payload in payloads:
        store.ingest_payload(payload)
    store.save()
    return store


def _suite_for(payloads) -> PredicateSuite:
    """A suite touching every predicate kind, built from what the
    corpus actually contains plus keys/values that miss entirely."""
    traces = [trace_from_dict(p) for p in payloads]
    keys = sorted(
        {m.key for t in traces for m in t.method_executions()}, key=str
    )
    excs = sorted(
        {
            m.exception
            for t in traces
            for m in t.method_executions()
            if m.exception is not None
        }
    )
    sigs = sorted(
        {t.failure.signature for t in traces if t.failure is not None}
    )
    defs: dict[str, object] = {}
    for i, key in enumerate(keys[:6]):
        defs[f"exec{i}"] = ExecutedPredicate(key)
        defs[f"slow{i}"] = TooSlowPredicate(key, threshold=i * 20)
        defs[f"fast{i}"] = TooFastPredicate(key, threshold=5 + i * 30)
    for i, (key, exc) in enumerate(
        itertools.product(keys[:3], excs[:2])
    ):
        defs[f"fails{i}"] = MethodFailsPredicate(key, exc)
    for i, (key, value) in enumerate(zip(keys, RETURN_VALUES)):
        defs[f"wrong{i}"] = WrongReturnPredicate(key, value)
    for i, (a, b) in enumerate(itertools.product(keys[:3], keys[:3])):
        defs[f"order{i}"] = OrderViolationPredicate(a, b)
    for i, signature in enumerate(sigs):
        defs[f"failure{i}"] = FailurePredicate(signature)
    missing = MethodKey("no-such-method", "T404", 9)
    defs["exec-miss"] = ExecutedPredicate(missing)
    if keys:
        defs["order-miss"] = OrderViolationPredicate(missing, keys[0])
        defs["wrong-nan-miss"] = WrongReturnPredicate(
            keys[0], float("nan")
        )
    if len(keys) >= 2:
        defs["and0"] = CompoundAndPredicate(
            (ExecutedPredicate(keys[0]), ExecutedPredicate(keys[1]))
        )
        defs["and1"] = CompoundAndPredicate(
            (
                TooSlowPredicate(keys[0], threshold=10),
                ExecutedPredicate(keys[1]),
            )
        )
        # a non-columnar member, so the compound itself must fall back
        defs["race0"] = DataRacePredicate(keys[0], keys[1], OBJECTS[0])
        defs["and-race"] = CompoundAndPredicate(
            (ExecutedPredicate(keys[0]), defs["race0"])
        )
    return PredicateSuite(defs=defs)


class TestRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_decode_equals_stored_trace(self, tmp_path, seed):
        store = _ingest(tmp_path / "c", make_corpus(seed))
        rows = 0
        for sid in store.shard_ids:
            table = store.columnar_table(sid)
            assert table is not None, f"shard {sid} has no table"
            for fp in table.fingerprints:
                decoded = table.decode(table.row_of(fp))
                original = store.load(fp)
                assert canonical_json(
                    trace_to_dict(decoded)
                ) == canonical_json(trace_to_dict(original))
                assert decoded.fingerprint == fp
                rows += 1
        assert rows == len(store.entries)

    def test_empty_trace_roundtrips(self, tmp_path):
        rng = random.Random(0)
        payloads = [make_payload(rng, seed=s, failed=s % 2 == 1) for s in range(4)]
        for p in payloads:
            p["calls"] = []
        store = _ingest(tmp_path / "c", payloads)
        for sid in store.shard_ids:
            table = store.columnar_table(sid)
            assert table is not None and table.n_calls == 0
            for fp in table.fingerprints:
                decoded = table.decode(table.row_of(fp))
                assert canonical_json(
                    trace_to_dict(decoded)
                ) == canonical_json(trace_to_dict(store.load(fp)))

    def test_table_bytes_are_deterministic(self, tmp_path):
        payloads = make_corpus(3)
        blobs = []
        for name in ("a", "b"):
            store = _ingest(tmp_path / name, payloads)
            for sid in store.shard_ids:
                assert store.columnar_table(sid) is not None
            blobs.append(
                b"".join(
                    store.columnar_path(sid).read_bytes()
                    for sid in store.shard_ids
                )
            )
        assert blobs[0] == blobs[1]


class TestObservationParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_sweep_matches_evaluate_for_every_kind(self, tmp_path, seed):
        payloads = make_corpus(seed)
        store = _ingest(tmp_path / "c", payloads)
        suite = _suite_for(payloads)
        kernel = SuiteKernel(suite.defs)
        columnar = {
            pid for pid, p in suite.defs.items() if p.supports_columnar
        }
        assert columnar, "generator produced no columnar predicates"
        pairs = 0
        for sid in store.shard_ids:
            table = store.columnar_table(sid)
            sweeps = kernel.sweep(table)
            assert set(sweeps) == columnar
            for fp in table.fingerprints:
                row = table.row_of(fp)
                trace = store.load(fp)
                for pid in columnar:
                    expected = suite.defs[pid].evaluate(trace)
                    assert sweeps[pid].get(row) == expected, (
                        f"seed {seed} pid {pid} fp {fp}"
                    )
                    pairs += 1
        assert pairs == len(columnar) * len(store.entries)

    def test_compound_with_noncolumnar_member_falls_back(self):
        payloads = make_corpus(1)
        suite = _suite_for(payloads)
        assert not suite.defs["race0"].supports_columnar
        assert not suite.defs["and-race"].supports_columnar
        assert suite.defs["and0"].supports_columnar
        assert "race0" not in suite.columnar_pids()
        assert "and0" in suite.columnar_pids()


class TestPipelineParity:
    @pytest.mark.parametrize("seed", (0, 7, 13))
    def test_matrix_logs_and_counters_match(self, tmp_path, seed):
        payloads = make_corpus(seed)
        suite = _suite_for(payloads)
        results = {}
        for label, columnar in (("obj", False), ("col", True)):
            store = _ingest(tmp_path / label, payloads)
            fps = sorted(store.entries)
            matrix = store.eval_matrix()
            evaluations = matrix.evaluate_fingerprints(
                suite, fps, return_logs=True, columnar=columnar
            )
            results[label] = (
                [
                    [
                        (fp, log.failed, dict(log.observations))
                        for fp, log in ev.logs
                    ]
                    for ev in evaluations
                ],
                [
                    (
                        ev.matrix.pair_evaluations,
                        ev.matrix.pair_hits,
                        ev.matrix.kernel_calls,
                    )
                    for ev in evaluations
                ],
                [ev.counters.counts for ev in evaluations],
            )
        assert results["obj"] == results["col"]

    def test_warm_columnar_reuses_the_memo(self, tmp_path):
        payloads = make_corpus(2)
        suite = _suite_for(payloads)
        store = _ingest(tmp_path / "c", payloads)
        fps = sorted(store.entries)
        matrix = store.eval_matrix()
        matrix.evaluate_fingerprints(suite, fps, columnar=True)
        matrix.save()
        reopened = TraceStore.open(tmp_path / "c")
        warm = reopened.eval_matrix()
        evaluations = warm.evaluate_fingerprints(suite, fps, columnar=True)
        assert sum(ev.matrix.pair_evaluations for ev in evaluations) == 0
        assert sum(ev.matrix.pair_hits for ev in evaluations) == len(
            fps
        ) * len(suite.defs)

    @pytest.mark.parametrize("name", REGISTRY.names())
    def test_workload_report_is_byte_identical(
        self, tmp_path, name, monkeypatch
    ):
        from repro.corpus.session import CorpusSession
        from repro.harness.runner import collect

        workload = REGISTRY.build(name)
        corpus = collect(workload.program, n_success=8, n_fail=8)
        seed_root = tmp_path / "seed"
        store = TraceStore.init(seed_root, program=workload.program.name)
        for trace in corpus.successes + corpus.failures:
            store.ingest_payload(trace_to_dict(trace))
        store.save()

        reports = {}
        for label, env, jobs in (
            ("obj1", "0", 0),
            ("col1", "1", 0),
            ("col8", "1", 8),
        ):
            import shutil

            root = tmp_path / label
            shutil.copytree(seed_root, root)
            monkeypatch.setenv("REPRO_COLUMNAR", env)
            engine = (
                ExecutionEngine(backend=make_backend("thread", jobs=jobs))
                if jobs
                else None
            )
            config = SessionConfig(rng_seed=7, repeats=3, engine=engine)
            session = CorpusSession(
                workload.program, TraceStore.open(root), config=config
            )
            reports[label] = canonical_json(session.run().to_dict())
            if engine is not None:
                engine.close()
        assert reports["obj1"] == reports["col1"]
        assert reports["col1"] == reports["col8"]


class TestGoldenReport:
    """Byte-for-byte regression against a committed fixture.

    ``tests/fixtures/golden_corpus`` is a tiny npgsql trace store and
    ``golden_report.json`` the canonical-JSON ``SessionReport.to_dict()``
    a seeded session produces from it.  Any change to serialization,
    predicate semantics, evaluation order, or the columnar encoder that
    alters a single byte of the report fails here first.  Regenerate
    deliberately (see docs/corpus.md) when the change is intended.
    """

    FIXTURES = __import__("pathlib").Path(__file__).parent / "fixtures"

    @pytest.mark.parametrize("columnar_env", ("0", "1"))
    def test_report_matches_committed_bytes(
        self, tmp_path, monkeypatch, columnar_env
    ):
        import shutil

        from repro.corpus.session import CorpusSession

        monkeypatch.setenv("REPRO_COLUMNAR", columnar_env)
        root = tmp_path / "c"
        shutil.copytree(self.FIXTURES / "golden_corpus", root)
        workload = REGISTRY.build("npgsql")
        config = SessionConfig(rng_seed=7, repeats=3)
        session = CorpusSession(
            workload.program, TraceStore.open(root), config=config
        )
        produced = canonical_json(session.run().to_dict())
        golden = (self.FIXTURES / "golden_report.json").read_text()
        assert produced == golden
