"""repro.serve: the live telemetry service, end to end over real HTTP.

Covers the service invariants:

* ``POST /v1/runs`` returns the versioned report **byte-identical** to
  ``repro run SPEC --json`` for the same spec (the service never
  changes results);
* the NDJSON/SSE event stream is the server-side JSONL verbatim — a
  late subscriber's replay through :func:`read_run_log` equals the
  file's, and replay-from-seq reconnects lose nothing;
* two concurrent SSE subscribers plus a submitter see consistent
  streams against a live server;
* a malformed RunSpec body is a structured 400, an unknown run id a
  structured 404, a crashing run a structured 500;
* the cross-run index is idempotent under rebuild and survives daemon
  restarts (a new server answers for runs an old one executed);
* the ``repro submit`` client round-trips the report bytes, and
  ``--follow`` streams the same rows ``repro obs tail`` renders.
"""

from __future__ import annotations

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import RunSpec, run as api_run
from repro.api.spec import CollectionSpec, SpecError, WorkloadSpec
from repro.obs import RunIndex, read_run_log
from repro.obs.cli import tail_run_log
from repro.serve import ReproServer, submit


def small_spec(n: int = 10, **overrides) -> RunSpec:
    base = dict(
        workload=WorkloadSpec("network"),
        collection=CollectionSpec(n_success=n, n_fail=n),
    )
    base.update(overrides)
    return RunSpec(**base)


def http_get(url: str, headers: dict | None = None) -> tuple[int, bytes]:
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, response.read()


def http_post(url: str, payload: dict) -> tuple[int, bytes]:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status, response.read()


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    log_dir = tmp_path_factory.mktemp("serve") / "runs"
    server = ReproServer(log_dir=str(log_dir), port=0).start()
    yield server
    server.shutdown()


@pytest.fixture(scope="module")
def finished_run(server):
    """One blocking submission: (run_id, report payload bytes)."""
    status, body = http_post(
        f"{server.url}/v1/runs", small_spec().to_dict()
    )
    assert status == 200
    runs = json.loads(http_get(f"{server.url}/v1/runs")[1])["runs"]
    run_id = next(
        r["run_id"] for r in runs if r.get("status") == "finished"
    )
    return run_id, body


# ---------------------------------------------------------------------------
# submission
# ---------------------------------------------------------------------------


class TestSubmission:
    def test_post_report_is_byte_identical_to_local_run(self, finished_run):
        _, body = finished_run
        local = api_run(small_spec())
        expected = (
            json.dumps(local.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        assert body.decode() == expected

    def test_post_report_meta_stays_inert(self, finished_run):
        # Observability rides in the JSONL log, never the report —
        # that's what keeps the HTTP payload equal to `repro run --json`.
        payload = json.loads(finished_run[1])
        assert payload["meta"]["run_id"] is None
        assert payload["meta"]["metrics"] is None

    def test_malformed_spec_is_a_structured_400(self, server):
        bad = {"workload": {"name": "no-such-workload"}}
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            http_post(f"{server.url}/v1/runs", bad)
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read())
        assert payload["error"] == "invalid-spec"
        assert "no-such-workload" in payload["detail"]

    def test_unknown_section_is_a_structured_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            http_post(f"{server.url}/v1/runs", {"bogus": {}})
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["error"] == "invalid-spec"

    def test_non_json_body_is_a_structured_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/v1/runs",
            data=b"not json at all",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        assert "JSON" in json.loads(excinfo.value.read())["detail"]

    def test_crashing_run_is_a_structured_500(self, server, tmp_path):
        from repro.api.spec import CorpusSpec

        spec = small_spec(
            corpus=CorpusSpec(dir=str(tmp_path / "no-such-corpus"))
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            http_post(f"{server.url}/v1/runs", spec.to_dict())
        assert excinfo.value.code == 500
        payload = json.loads(excinfo.value.read())
        assert payload["error"] == "run-failed"
        assert payload["detail"]
        runs = json.loads(http_get(f"{server.url}/v1/runs")[1])["runs"]
        failed = [r for r in runs if r.get("status") == "failed"]
        assert failed and failed[0]["error"]

    def test_unexpected_handler_crash_is_a_structured_500(self, server):
        # A broken registry must not silently drop the connection —
        # the daemon always answers (found the hard way: a deleted
        # log dir turned every submit into RemoteDisconnected).
        original = server.registry.parse_spec
        server.registry.parse_spec = None  # TypeError on call
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                http_post(f"{server.url}/v1/runs", small_spec().to_dict())
        finally:
            server.registry.parse_spec = original
        assert excinfo.value.code == 500
        payload = json.loads(excinfo.value.read())
        assert payload["error"] == "internal"
        assert "TypeError" in payload["detail"]

    def test_async_submit_returns_202_with_links(self, server):
        request = urllib.request.Request(
            f"{server.url}/v1/runs?wait=0",
            data=json.dumps(small_spec(4).to_dict()).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.status == 202
            accepted = json.loads(response.read())
        assert accepted["status"] == "running"
        assert accepted["links"]["events"].endswith("/events")
        # the report endpoint joins the worker, then serves the payload
        status, body = http_get(
            f"{server.url}{accepted['links']['report']}"
        )
        assert status == 200
        assert json.loads(body)["kind"] == "session"


# ---------------------------------------------------------------------------
# the event stream
# ---------------------------------------------------------------------------


def sse_data_lines(body: str) -> list[str]:
    return [
        line[len("data: "):]
        for line in body.splitlines()
        if line.startswith("data: ") and line != "data: {}"
    ]


class TestEventStream:
    def test_ndjson_stream_is_the_server_log_verbatim(
        self, server, finished_run
    ):
        run_id, _ = finished_run
        _, body = http_get(f"{server.url}/v1/runs/{run_id}/events")
        log_path = server.registry.log_dir / f"{run_id}.jsonl"
        assert body.decode() == log_path.read_text()

    def test_sse_replay_equals_read_run_log(
        self, server, finished_run, tmp_path
    ):
        run_id, _ = finished_run
        _, body = http_get(
            f"{server.url}/v1/runs/{run_id}/events",
            headers={"Accept": "text/event-stream"},
        )
        replayed = tmp_path / "replayed.jsonl"
        replayed.write_text(
            "\n".join(sse_data_lines(body.decode())) + "\n"
        )
        original = read_run_log(server.registry.log_dir / f"{run_id}.jsonl")
        copy = read_run_log(replayed)
        assert copy.events.events == original.events.events
        assert copy.records == original.records
        assert copy.metrics == original.metrics

    def test_replay_from_seq_resumes_after_a_dropped_connection(
        self, server, finished_run
    ):
        run_id, _ = finished_run
        log_path = server.registry.log_dir / f"{run_id}.jsonl"
        all_lines = log_path.read_text().splitlines()
        # a client that saw the header plus events up to seq 5, then died:
        prefix = [
            line
            for line in all_lines
            if "schema" in json.loads(line)
            or json.loads(line).get("seq", 10**9) <= 5
        ]
        _, body = http_get(
            f"{server.url}/v1/runs/{run_id}/events?from_seq=5"
        )
        resumed = body.decode().splitlines()
        assert prefix + resumed == all_lines

    def test_sse_last_event_id_header_resumes_too(self, server, finished_run):
        run_id, _ = finished_run
        _, body = http_get(
            f"{server.url}/v1/runs/{run_id}/events?format=sse",
            headers={"Last-Event-ID": "3"},
        )
        rows = [json.loads(line) for line in sse_data_lines(body.decode())]
        seqs = [row["seq"] for row in rows if "seq" in row]
        assert seqs and min(seqs) == 4
        assert not any("schema" in row for row in rows)  # header skipped

    def test_two_sse_subscribers_and_a_submitter_concurrently(self, server):
        # Submit asynchronously, attach two followers while the run is
        # live, and require both to deliver the complete stream.
        request = urllib.request.Request(
            f"{server.url}/v1/runs?wait=0",
            data=json.dumps(small_spec(40).to_dict()).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            run_id = json.loads(response.read())["run_id"]
        results: dict[int, str] = {}
        errors: list[Exception] = []

        def subscribe(slot: int) -> None:
            try:
                _, body = http_get(
                    f"{server.url}/v1/runs/{run_id}/events?format=sse"
                )
                results[slot] = body.decode()
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=subscribe, args=(slot,))
            for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert set(results) == {0, 1}
        log_text = (
            server.registry.log_dir / f"{run_id}.jsonl"
        ).read_text()
        for body in results.values():
            assert "\n".join(sse_data_lines(body)) + "\n" == log_text
            assert body.rstrip().endswith("data: {}")  # orderly end

    def test_unknown_run_events_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            http_get(f"{server.url}/v1/runs/nope/events")
        assert excinfo.value.code == 404


# ---------------------------------------------------------------------------
# catalog, detail, health, metrics
# ---------------------------------------------------------------------------


class TestCatalog:
    def test_list_merges_live_status_with_index_rows(
        self, server, finished_run
    ):
        run_id, _ = finished_run
        payload = json.loads(http_get(f"{server.url}/v1/runs")[1])
        assert payload["api"] == 1
        row = next(r for r in payload["runs"] if r["run_id"] == run_id)
        assert row["status"] == "finished"
        assert row["outcome"] == "finished"
        assert row["durations"]  # index summary made it in
        assert row["spec_digest"] == small_spec().digest()

    def test_detail_includes_span_tree(self, server, finished_run):
        run_id, _ = finished_run
        detail = json.loads(
            http_get(f"{server.url}/v1/runs/{run_id}")[1]
        )
        assert detail["run_id"] == run_id
        assert "collection" in detail["spans"]
        assert "interventions" in detail["spans"]
        assert detail["metrics"]["counters"]["events.total"] > 0

    def test_unknown_run_detail_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            http_get(f"{server.url}/v1/runs/definitely-not-a-run")
        assert excinfo.value.code == 404

    def test_healthz(self, server):
        payload = json.loads(http_get(f"{server.url}/healthz")[1])
        assert payload["status"] == "ok"
        assert payload["runs"]["finished"] >= 1
        assert payload["uptime"] >= 0

    def test_metrics_exposition(self, server, finished_run):
        body = http_get(f"{server.url}/metrics")[1].decode()
        assert "repro_uptime_seconds" in body
        assert 'repro_runs{status="finished"}' in body
        assert 'repro_http_requests_total{route="/metrics"}' in body
        # the fleet fold aggregated the finished runs' registries
        assert 'repro_run_counter{name="events.total"}' in body
        assert 'repro_run_timer_seconds_total{name="span.collection"}' in body

    def test_restarted_daemon_answers_for_old_runs(
        self, server, finished_run
    ):
        run_id, body = finished_run
        reborn = ReproServer(
            log_dir=str(server.registry.log_dir), port=0
        ).start()
        try:
            listed = json.loads(http_get(f"{reborn.url}/v1/runs")[1])
            assert any(
                r["run_id"] == run_id for r in listed["runs"]
            )
            # report replayed from the durable JSONL, same bytes
            _, replayed = http_get(
                f"{reborn.url}/v1/runs/{run_id}/report"
            )
            assert replayed == body
        finally:
            reborn.shutdown()


# ---------------------------------------------------------------------------
# the cross-run index
# ---------------------------------------------------------------------------


class TestIndex:
    def test_rebuild_is_idempotent(self, server, finished_run):
        index = RunIndex(server.registry.log_dir)
        index.refresh()
        first = index.path.read_text()
        stats = index.refresh()
        assert not stats.changed
        index.rebuild()
        assert index.path.read_text() == first

    def test_index_drops_deleted_logs(self, tmp_path):
        log_dir = tmp_path / "runs"
        log_dir.mkdir()
        (log_dir / "a.jsonl").write_text(
            '{"schema": 1, "run_id": "a", "created": 1.0}\n'
        )
        index = RunIndex(log_dir)
        assert index.refresh().added == 1
        (log_dir / "a.jsonl").unlink()
        stats = index.refresh()
        assert stats.removed == 1 and len(index) == 0

    def test_unreadable_log_is_catalogued_not_fatal(self, tmp_path):
        log_dir = tmp_path / "runs"
        log_dir.mkdir()
        (log_dir / "junk.jsonl").write_text("this is not jsonl\n")
        index = RunIndex(log_dir)
        index.refresh()
        assert index.get("junk")["outcome"] == "unreadable"

    def test_index_records_spec_digest(self, server, finished_run):
        run_id, _ = finished_run
        index = RunIndex(server.registry.log_dir)
        index.refresh()
        assert index.get(run_id)["spec_digest"] == small_spec().digest()


# ---------------------------------------------------------------------------
# the submit client
# ---------------------------------------------------------------------------


class TestSubmitClient:
    def test_submit_round_trips_the_report_bytes(self, server, tmp_path):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(small_spec(6).to_json() + "\n")
        out, err = io.StringIO(), io.StringIO()
        assert submit(
            server.url, str(spec_file), out=out, err=err
        ) == 0
        local = api_run(small_spec(6))
        assert out.getvalue() == (
            json.dumps(local.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    def test_submit_follow_streams_progress_to_stderr(
        self, server, tmp_path
    ):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(small_spec(6).to_json() + "\n")
        out, err = io.StringIO(), io.StringIO()
        assert submit(
            server.url, str(spec_file), follow=True, out=out, err=err
        ) == 0
        progress = err.getvalue()
        assert "submitted" in progress
        assert "[header]" in progress
        assert "run-finished" in progress
        assert json.loads(out.getvalue())["kind"] == "session"

    def test_submit_surfaces_structured_spec_errors(self, server, tmp_path):
        spec_file = tmp_path / "bad.json"
        spec_file.write_text(
            json.dumps({"workload": {"name": "nope"}}) + "\n"
        )
        with pytest.raises(SystemExit, match="invalid-spec"):
            submit(server.url, str(spec_file), out=io.StringIO())

    def test_submit_reports_unreachable_daemon(self, tmp_path):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(small_spec().to_json() + "\n")
        with pytest.raises(SystemExit, match="cannot reach"):
            submit(
                "http://127.0.0.1:1",  # nothing listens on port 1
                str(spec_file),
                out=io.StringIO(),
            )

    def test_submit_rejects_unreadable_spec_before_posting(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            submit(
                "http://127.0.0.1:1",
                str(tmp_path / "missing.toml"),
                out=io.StringIO(),
            )


# ---------------------------------------------------------------------------
# the registry below the HTTP layer
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_parse_spec_rejects_garbage(self, server):
        with pytest.raises(SpecError):
            server.registry.parse_spec(b"\xff\xfe not utf8 json")

    def test_tail_follow_shares_the_live_cursor(self, tmp_path):
        # The satellite contract: `obs tail --follow` polls the
        # flushed-per-line JSONL of a run that is still writing — and
        # even of a file that does not exist yet.
        from conftest import wait_until

        log_path = tmp_path / "live.jsonl"
        rows = [
            {"schema": 1, "run_id": "live", "created": 0.0},
            {"seq": 1, "t": 0.001, "wall": 0.0, "kind": "suite-frozen",
             "data": {"n_predicates": 1, "source": "discovered"}},
            {"seq": 2, "t": 0.002, "wall": 0.0, "kind": "run-finished",
             "data": {"report": {}}},
        ]
        out = io.StringIO()
        started = threading.Event()

        def write_gated() -> None:
            # No fixed pacing: create the file only once the main
            # thread is entering tail_run_log (so the not-yet-existing
            # branch is in play), then gate each further line on the
            # follower having echoed the previous one — the tail
            # provably observes a growing file, bounded by deadlines
            # instead of sleep guesses.
            started.wait(10)
            markers = ("[header]", "suite-frozen", None)
            with log_path.open("w") as handle:
                for row, marker in zip(rows, markers):
                    handle.write(json.dumps(row) + "\n")
                    handle.flush()
                    if marker is not None:
                        wait_until(
                            lambda m=marker: m in out.getvalue(),
                            message=f"tail to echo {marker}",
                        )

        writer = threading.Thread(target=write_gated)
        writer.start()
        started.set()
        status = tail_run_log(
            log_path, follow=True, interval=0.005, stream=out, timeout=10
        )
        writer.join()
        assert status == 0
        text = out.getvalue()
        assert "[header]" in text
        assert "run-finished" in text
