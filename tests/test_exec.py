"""The intervention-execution engine: backends, scheduler, cache, stats.

Covers the tentpole's guarantees:

* every backend is an order-preserving map, and discovery results are
  *identical* (causal path, spurious set, budget history) across serial,
  thread, and process backends — both for the synthetic oracle and for a
  real simulator-backed session;
* the scheduler preserves serial early-stop semantics exactly, caching
  (but not returning) speculative wave overshoot;
* the outcome cache accounts hits/misses and survives a JSON round-trip,
  and a warm engine replays a discovery with zero new executions;
* the CLI flags wire it all up.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.cli import main
from repro.core.discovery import causal_path_discovery, linear_discovery
from repro.core.intervention import RunOutcome, SimulationRunner
from repro.core.variants import Approach, discover
from repro.exec import (
    ExecStats,
    ExecutionEngine,
    OutcomeCache,
    ProcessPoolBackend,
    RunRequest,
    SerialBackend,
    ThreadPoolBackend,
    make_backend,
)
from repro.workloads.synthetic import generate_app, spec_for_maxt

ALL_BACKENDS = [
    lambda: SerialBackend(),
    lambda: ThreadPoolBackend(3),
    lambda: ProcessPoolBackend(3),
]


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class TestBackends:
    @pytest.mark.parametrize("factory", ALL_BACKENDS)
    def test_map_preserves_order(self, factory):
        backend = factory()
        try:
            assert backend.map(lambda x: x * x, list(range(20))) == [
                x * x for x in range(20)
            ]
        finally:
            backend.close()

    def test_thread_pool_actually_uses_threads(self):
        backend = ThreadPoolBackend(4)
        try:
            names = set(backend.map(
                lambda _: threading.current_thread().name, range(8)
            ))
            assert any(name.startswith("repro-exec") for name in names)
        finally:
            backend.close()

    def test_process_pool_handles_closures(self):
        # The whole point of the fork trampoline: unpicklable callables.
        secret = {"offset": 41}
        backend = ProcessPoolBackend(2)
        assert backend.map(lambda x: x + secret["offset"], [1, 2]) == [42, 43]

    def test_make_backend_defaults(self):
        assert make_backend(None, None).name == "serial"
        assert make_backend(None, 1).name == "serial"
        assert make_backend(None, 4).name == "thread"
        assert make_backend("process", 2).name == "process"
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu", 2)


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------


def _request(pids, seed=0, workload="w"):
    return RunRequest(workload, seed, frozenset(pids))


def _outcome(observed=(), failed=False, seed=0):
    return RunOutcome(observed=frozenset(observed), failed=failed, seed=seed)


class TestOutcomeCache:
    def test_store_and_peek(self):
        cache = OutcomeCache()
        request = _request({"P1"})
        assert cache.peek(request) is None
        cache.store(request, _outcome({"P2"}, failed=True))
        assert request in cache
        assert cache.peek(request).failed
        assert len(cache) == 1

    def test_key_includes_workload_and_seed(self):
        cache = OutcomeCache()
        cache.store(_request({"P1"}, seed=0, workload="a"), _outcome())
        assert cache.peek(_request({"P1"}, seed=1, workload="a")) is None
        assert cache.peek(_request({"P1"}, seed=0, workload="b")) is None

    def test_hit_miss_accounting(self):
        cache = OutcomeCache()
        cache.record_miss()
        cache.record_hit()
        cache.record_hit()
        assert (cache.hits, cache.misses, cache.lookups) == (2, 1, 3)
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_persistence_round_trip(self, tmp_path):
        path = str(tmp_path / "outcomes.json")
        cache = OutcomeCache()
        request = _request({"P1", "P2"}, seed=7, workload="npgsql@50000")
        outcome = _outcome({"P3", "F"}, failed=True, seed=7)
        cache.store(request, outcome)
        cache.save(path)

        reloaded = OutcomeCache(path=path)
        assert len(reloaded) == 1
        assert reloaded.peek(request) == outcome

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ValueError, match="version"):
            OutcomeCache(path=str(path))

    def test_load_rejects_non_json_and_malformed_entries(self, tmp_path):
        garbage = tmp_path / "garbage.json"
        garbage.write_text("not json {{{")
        with pytest.raises(ValueError, match="not an outcome-cache"):
            OutcomeCache(path=str(garbage))
        truncated = tmp_path / "truncated.json"
        truncated.write_text('{"version": 1, "entries": [{}]}')
        with pytest.raises(ValueError, match="malformed cache entry #0"):
            OutcomeCache(path=str(truncated))

    def test_save_without_path_raises(self):
        with pytest.raises(ValueError, match="path"):
            OutcomeCache().save()


# ---------------------------------------------------------------------------
# Scheduler semantics
# ---------------------------------------------------------------------------


class TestScheduler:
    def _run_fn(self, fail_seeds, counter):
        def run(request):
            counter.append(request.seed)
            return _outcome(
                failed=request.seed in fail_seeds, seed=request.seed
            )

        return run

    def test_early_stop_truncates_at_first_failure(self):
        engine = ExecutionEngine()
        executed = []
        outcomes = engine.run_group(
            [_request({"P"}, seed=s) for s in range(10)],
            self._run_fn({3}, executed),
        )
        assert [o.seed for o in outcomes] == [0, 1, 2, 3]
        assert outcomes[-1].failed
        assert executed == [0, 1, 2, 3]  # serial: no speculation

    def test_parallel_wave_speculation_is_cached_not_returned(self):
        engine = ExecutionEngine(ThreadPoolBackend(4))
        executed = []
        outcomes = engine.run_group(
            [_request({"P"}, seed=s) for s in range(10)],
            self._run_fn({1}, executed),
        )
        # Returned prefix is the serial walk, truncated at seed 1 ...
        assert [o.seed for o in outcomes] == [0, 1]
        # ... but the whole first wave ran and was memoized.
        assert sorted(executed) == [0, 1, 2, 3]
        assert engine.cache.peek(_request({"P"}, seed=3)) is not None
        assert engine.stats.executed == 4

    def test_repeat_group_served_from_cache(self):
        engine = ExecutionEngine()
        requests = [_request({"P"}, seed=s) for s in range(4)]
        executed = []
        first = engine.run_group(requests, self._run_fn(set(), executed))
        second = engine.run_group(requests, self._run_fn(set(), executed))
        assert first == second
        assert len(executed) == 4  # second round all cache hits
        assert engine.stats.executed == 4
        assert engine.stats.cached == 4
        assert engine.cache.hits == 4

    @pytest.mark.parametrize("factory", ALL_BACKENDS)
    def test_independent_groups_match_sequential(self, factory):
        fail = {2}

        def run(request):
            return _outcome(failed=request.seed in fail, seed=request.seed)

        groups = [
            [_request({pid}, seed=s) for s in range(5)]
            for pid in ("A", "B", "C", "D", "E")
        ]
        serial = ExecutionEngine()
        expected = [list(serial.run_group(g, run)) for g in groups]
        engine = ExecutionEngine(factory())
        try:
            got = engine.run_independent_groups(groups, run)
        finally:
            engine.close()
        assert [list(g) for g in got] == expected
        # Early stop applied inside every group: seeds 0..2 each.
        assert all(len(g) == 3 for g in got)

    def test_independent_groups_resolve_from_cache(self):
        def run(request):
            return _outcome(seed=request.seed)

        groups = [[_request({pid}, seed=0)] for pid in "ABC"]
        engine = ExecutionEngine()
        engine.run_independent_groups(groups, run)
        assert engine.stats.executed == 3
        engine.run_independent_groups(groups, run)
        assert engine.stats.executed == 3
        assert engine.stats.cached == 3


# ---------------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------------


class TestExecStats:
    def test_report_contents(self):
        stats = ExecStats(executed=3, cached=1, groups=2, batches=3)
        stats.note_round("giwp")
        stats.note_round("giwp")
        stats.note_round("branch")
        text = stats.report()
        assert "3 executed + 1 cached" in text
        assert "25% hit rate" in text
        assert "branch=1" in text and "giwp=2" in text

    def test_speedup_is_serial_equivalent_over_wall(self):
        stats = ExecStats(wall_time=2.0, run_time=6.0)
        assert stats.speedup == pytest.approx(3.0)
        assert ExecStats().speedup == 1.0


# ---------------------------------------------------------------------------
# Backend parity on real discovery
# ---------------------------------------------------------------------------


def _oracle_discovery(app, engine, approach=Approach.AID):
    return discover(
        approach, app.dag, app.runner(engine=engine), rng=random.Random(11)
    )


def _result_fingerprint(result):
    return (
        result.causal_path,
        result.spurious,
        result.budget.rounds,
        result.budget.executions,
        result.budget.history,
        [(r.intervened, r.stopped, r.pruned_by_observation) for r in result.rounds],
    )


class TestBackendParity:
    @pytest.mark.parametrize("approach", list(Approach))
    def test_oracle_parity_across_backends(self, approach):
        app = generate_app(424242, spec_for_maxt(12))
        baseline = _result_fingerprint(
            _oracle_discovery(app, ExecutionEngine(), approach)
        )
        for factory in (lambda: ThreadPoolBackend(4), lambda: ProcessPoolBackend(4)):
            engine = ExecutionEngine(factory())
            try:
                got = _result_fingerprint(
                    _oracle_discovery(app, engine, approach)
                )
            finally:
                engine.close()
            assert got == baseline

    def test_simulation_parity_across_backends(self, racy_session):
        dag = racy_session.build_dag()
        base_runner = racy_session.make_runner()
        baseline = _result_fingerprint(
            causal_path_discovery(dag, base_runner, rng=random.Random(0))
        )
        for factory in (lambda: ThreadPoolBackend(4), lambda: ProcessPoolBackend(4)):
            engine = ExecutionEngine(factory())
            runner = SimulationRunner(
                simulator=base_runner.simulator,
                suite=base_runner.suite,
                failure_pid=base_runner.failure_pid,
                seeds=base_runner.seeds,
                engine=engine,
            )
            try:
                got = _result_fingerprint(
                    causal_path_discovery(dag, runner, rng=random.Random(0))
                )
            finally:
                engine.close()
            assert got == baseline

    def test_linear_batch_matches_serial_probes(self, racy_session):
        dag = racy_session.build_dag()
        baseline = linear_discovery(
            dag, racy_session.make_runner(), rng=random.Random(3)
        )
        engine = ExecutionEngine(ThreadPoolBackend(4))
        base_runner = racy_session.make_runner()
        runner = SimulationRunner(
            simulator=base_runner.simulator,
            suite=base_runner.suite,
            failure_pid=base_runner.failure_pid,
            seeds=base_runner.seeds,
            engine=engine,
        )
        try:
            batched = linear_discovery(dag, runner, rng=random.Random(3))
        finally:
            engine.close()
        assert _result_fingerprint(batched) == _result_fingerprint(baseline)


# ---------------------------------------------------------------------------
# Warm-cache replay
# ---------------------------------------------------------------------------


class TestWarmReplay:
    def test_same_seed_different_spec_do_not_collide(self):
        # Same generation seed, different spec => different ground truth;
        # a shared engine must keep their cache namespaces apart.
        small = generate_app(5, spec_for_maxt(2))
        large = generate_app(5, spec_for_maxt(40))
        assert small.dag.predicates != large.dag.predicates
        engine = ExecutionEngine()
        assert (
            small.runner(engine=engine).workload
            != large.runner(engine=engine).workload
        )

    def test_custom_extractors_change_session_cache_namespace(
        self, racy_program
    ):
        from repro.core.extraction import default_extractors
        from repro.harness.session import AIDSession, SessionConfig

        plain = AIDSession(racy_program, SessionConfig())
        custom = AIDSession(
            racy_program,
            SessionConfig(extractors=tuple(default_extractors()[:2])),
        )
        assert plain._workload_key() != custom._workload_key()

    def test_warm_engine_executes_nothing(self):
        app = generate_app(9001, spec_for_maxt(10))
        engine = ExecutionEngine()
        cold = _oracle_discovery(app, engine)
        executed_cold = engine.stats.executed
        assert executed_cold > 0
        warm = _oracle_discovery(app, engine)
        assert engine.stats.executed == executed_cold
        assert _result_fingerprint(warm) == _result_fingerprint(cold)

    def test_persisted_cache_replays_simulation(self, tmp_path, racy_session):
        path = str(tmp_path / "outcomes.json")
        dag = racy_session.build_dag()

        cold_engine = ExecutionEngine(cache=OutcomeCache(path=path))
        base_runner = racy_session.make_runner()
        runner = SimulationRunner(
            simulator=base_runner.simulator,
            suite=base_runner.suite,
            failure_pid=base_runner.failure_pid,
            seeds=base_runner.seeds,
            engine=cold_engine,
        )
        cold = causal_path_discovery(dag, runner, rng=random.Random(0))
        assert cold_engine.stats.executed > 0
        assert cold_engine.flush() == path

        warm_engine = ExecutionEngine(cache=OutcomeCache(path=path))
        warm_runner = SimulationRunner(
            simulator=base_runner.simulator,
            suite=base_runner.suite,
            failure_pid=base_runner.failure_pid,
            seeds=base_runner.seeds,
            engine=warm_engine,
        )
        warm = causal_path_discovery(dag, warm_runner, rng=random.Random(0))
        assert warm_engine.stats.executed == 0
        assert warm_engine.stats.cached == warm_engine.stats.total_runs > 0
        assert _result_fingerprint(warm) == _result_fingerprint(cold)


# ---------------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------------


class TestCliFlags:
    def test_figure8_cache_warm_run(self, tmp_path, capsys):
        cache = str(tmp_path / "f8.json")
        argv = ["figure8", "--apps", "2", "--cache", cache]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "exec stats" in cold and "outcome cache" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 executed" in warm
        assert "100% hit rate" in warm

    def test_figure8_parallel_matches_serial_table(self, capsys):
        assert main(["figure8", "--apps", "2"]) == 0
        serial = capsys.readouterr().out
        assert main(["figure8", "--apps", "2", "--jobs", "2", "--backend", "process"]) == 0
        parallel = capsys.readouterr().out

        def table(text):
            return [
                line for line in text.splitlines()
                if line and not line.startswith(("exec stats", "  ", "outcome"))
            ]

        assert table(serial) == table(parallel)

    def test_corrupt_cache_file_fails_cleanly(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json {{{")
        with pytest.raises(SystemExit, match="--cache.*not an outcome-cache"):
            main(["figure8", "--apps", "2", "--cache", str(bad)])

    def test_debug_accepts_engine_flags(self, capsys):
        assert main(
            ["debug", "network", "--runs", "30", "--jobs", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "root cause" in out
        assert "exec stats" in out
