"""End-to-end integration: full pipelines on fresh programs and the
experiment drivers that regenerate the paper's artifacts."""

from __future__ import annotations

import pytest

from repro import SessionConfig, debug, load_workload
from repro.core import Approach, all_approaches
from repro.harness.experiments import (
    example3_report,
    figure6_report,
    figure7_report,
    figure8,
    figure8_report,
    tagt_worst_case_table,
)
from repro.sim import Program


class TestEndToEnd:
    def test_racy_counter_full_pipeline(self, racy_session):
        report = racy_session.run(Approach.AID)
        path = report.causal_path
        assert path[0].startswith("race(counter)")
        assert any(pid.startswith("wrongret[") for pid in path)
        assert any(pid.startswith("fails(TornRead)") for pid in path)
        assert path[-1].startswith("FAILURE[")

    def test_all_approaches_agree_end_to_end(self, racy_session):
        paths = {
            tuple(racy_session.run(a).causal_path) for a in all_approaches()
        }
        assert len(paths) == 1

    def test_explanation_is_actionable(self, racy_session):
        report = racy_session.run(Approach.AID)
        text = report.explanation.render()
        assert "data race on 'counter'" in text

    def test_intervention_on_discovered_root_fixes_program(self, racy_session):
        """The acid test: applying the root cause's repair makes the
        program stop failing — the discovered cause is real."""
        from repro.sim import Simulator

        report = racy_session.run(Approach.AID)
        root = report.discovery.root_cause
        injections = report.suite[root].interventions()
        simulator = Simulator(racy_session.program)
        for seed in range(80):
            assert not simulator.run(seed, injections).failed

    def test_multi_bug_program_targets_dominant_signature(self):
        """With two distinct intermittent bugs, AID debugs the grouped
        dominant signature (Section 5.1 failure grouping)."""

        def main(ctx):
            yield from ctx.spawn("w", "Flaky")
            yield from ctx.work(2)
            if ctx.rand() < 0.15:
                yield from ctx.call("RareCrash")
            yield from ctx.join("w")
            return "ok"

        def flaky(ctx):
            yield from ctx.work(ctx.randint(0, 10))
            if ctx.rand() < 0.45:
                bad = yield from ctx.call("CheckState")
                if bad:
                    ctx.throw("CommonBug")
            return None

        def check_state(ctx):
            yield from ctx.work(1)
            return True

        def rare_crash(ctx):
            yield from ctx.work(1)
            ctx.throw("RareBug")

        program = Program(
            name="twobugs",
            methods={
                "Main": main,
                "Flaky": flaky,
                "CheckState": check_state,
                "RareCrash": rare_crash,
            },
            main="Main",
            readonly_methods=frozenset({"Flaky", "CheckState"}),
        )
        report = debug(
            program, config=SessionConfig(n_success=25, n_fail=25, repeats=15)
        )
        assert "CommonBug" in report.dag.failure
        assert all(t.failure.exception == "CommonBug"
                   for t in report.corpus.failures)


class TestExperimentDrivers:
    def test_example3_report(self):
        text = example3_report()
        assert "64" in text and "15" in text

    def test_figure6_report(self):
        text = figure6_report()
        assert "CPD" in text and "GT" in text

    def test_tagt_worst_case_table(self):
        text = tagt_worst_case_table()
        assert "cosmosdb" in text and "42" in text

    def test_figure8_small_sweep(self):
        result = figure8(maxt_values=(2, 10), apps_per_setting=8, seed=3)
        assert result.all_exact
        report = figure8_report(result)
        assert "Figure 8 (left)" in report and "TAGT" in report
        for maxt in (2, 10):
            for approach in all_approaches():
                assert len(result.cells[(maxt, approach)].rounds) == 8

    def test_figure7_report_renders(self):
        # Use the cached sessions via a single fresh row to keep it fast.
        from repro.harness.experiments import CaseStudyResult

        from conftest import case_study_session

        session = case_study_session("network")
        workload = load_workload("network")
        row = CaseStudyResult(
            workload=workload,
            aid=session.run(Approach.AID),
            tagt=session.run(Approach.TAGT),
        )
        text = figure7_report([row])
        assert "network" in text
        assert row.matches_ground_truth


class TestPublicAPI:
    def test_load_workload(self):
        workload = load_workload("npgsql")
        assert workload.program.main == "PoolMain"

    def test_version_and_exports(self):
        import repro

        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), name
