"""Execution backends: where intervened re-executions actually run.

A backend is a deliberately tiny abstraction — an *order-preserving*
``map`` over independent work items — so every scheduling, caching, and
accounting decision lives in one place (:mod:`repro.exec.engine`) and is
provably identical across serial, threaded, and multi-process execution.

Backends never see pids, seeds, or outcomes; they only run callables.
Determinism therefore reduces to one property — the module's single
invariant, which all three implementations share and every consumer
(intervention waves, corpus shard fan-out) relies on:
``map(fn, items)[i] == fn(items[i])``.  Backends hold no durable
state; nothing here persists.

Choosing a backend
------------------
* :class:`SerialBackend` — the default; zero overhead, bit-identical to
  the historical in-line execution path.
* :class:`ThreadPoolBackend` — cheap concurrency.  The simulator is pure
  Python, so the GIL limits speedups for CPU-bound workloads, but the
  backend is useful for I/O-backed runners and for exercising the
  scheduler's wave logic without process costs.
* :class:`ProcessPoolBackend` — true parallelism via forked workers.
  Task callables in this codebase close over unpicklable state (the
  simulator holds generator-function programs), so the classic
  spawn-and-pickle route is unavailable.  Instead the callable is parked
  in a module global immediately before forking the pool: children
  inherit it through the fork memory snapshot, and the only objects
  crossing the pipe are the (picklable) requests and outcomes.  A fresh
  pool per batch keeps the snapshot current.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional, Protocol, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


class Backend(Protocol):
    """Order-preserving parallel map over independent items."""

    name: str
    jobs: int

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        ...  # pragma: no cover - protocol


class SerialBackend:
    """In-line execution — the deterministic reference implementation."""

    name = "serial"
    jobs = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return [fn(item) for item in items]

    def close(self) -> None:
        pass


class ThreadPoolBackend:
    """Thread-pool execution (persistent pool, created on first use)."""

    name = "thread"

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = max(1, jobs or (os.cpu_count() or 2))
        self._pool: Optional[ThreadPoolExecutor] = None

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.jobs, thread_name_prefix="repro-exec"
            )
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


#: Callable handed to forked workers by snapshot, not by pickling.
_FORK_FN: Optional[Callable] = None


def _fork_invoke(item):
    """Module-level trampoline: picklable by reference, the real callable
    comes from the fork-inherited :data:`_FORK_FN`."""
    assert _FORK_FN is not None, "worker forked without a task callable"
    return _FORK_FN(item)


class ProcessPoolBackend:
    """Fork-based process pool for CPU-bound simulator runs.

    The pool persists across :meth:`map` calls while the callable stays
    the same object — the common case, since the engine hands every
    wave of one runner the identical wrapper — and is re-forked (fresh
    memory snapshot) only when the callable changes.
    """

    name = "process"

    def __init__(self, jobs: Optional[int] = None) -> None:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "ProcessPoolBackend needs the 'fork' start method (the task "
                "callables close over unpicklable simulator state); use "
                "ThreadPoolBackend on this platform"
            )
        self.jobs = max(1, jobs or (os.cpu_count() or 2))
        self._pool = None
        self._pool_fn: Optional[Callable] = None

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        global _FORK_FN
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        if self._pool is None or self._pool_fn is not fn:
            self.close()
            _FORK_FN = fn
            self._pool = multiprocessing.get_context("fork").Pool(self.jobs)
            self._pool_fn = fn
        return self._pool.map(_fork_invoke, items)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
            self._pool_fn = None


BACKENDS: dict[str, type] = {
    "serial": SerialBackend,
    "thread": ThreadPoolBackend,
    "process": ProcessPoolBackend,
}


def make_backend(name: Optional[str] = None, jobs: Optional[int] = None) -> Backend:
    """Build a backend from CLI-ish inputs.

    With ``name=None`` the choice follows ``jobs``: one job (or none
    specified) stays serial, more than one selects threads — the safest
    parallel default.
    """
    if name is None:
        name = "serial" if not jobs or jobs <= 1 else "thread"
    try:
        cls = BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise ValueError(f"unknown backend {name!r} (known: {known})") from None
    if cls is SerialBackend:
        return SerialBackend()
    return cls(jobs)
