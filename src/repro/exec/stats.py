"""Execution accounting: what ran, what was memoized, what it cost.

One :class:`ExecStats` instance accumulates over an engine's lifetime —
a single ``debug`` command, a whole ``figure7`` sweep — so its report
answers: how many simulator runs actually executed, how many were
answered from cache, and how much wall time the backend dispatches
took versus their serial-equivalent cost (the summed per-run
durations).

Invariants: counters only increase; ``total_runs = executed + cached``
counts what the algorithms *asked for* (speculative early-stop
overshoot is executed-and-cached but never requested); ``speedup`` is
serial-equivalent time over wall time, ≈1.0 on the serial backend.
Nothing here persists — stats die with the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExecStats:
    """Counters for one execution engine."""

    #: Wall-clock seconds spent inside backend dispatches.
    wall_time: float = 0.0
    #: Summed per-run durations — what a serial backend would have paid.
    run_time: float = 0.0
    #: Executions actually performed (cache misses, incl. speculative
    #: runs a parallel wave started past an early-stop point).
    executed: int = 0
    #: Executions answered from the outcome cache.
    cached: int = 0
    #: Intervention groups routed through the engine.
    groups: int = 0
    #: Backend dispatches (waves / independent-group batches).
    batches: int = 0
    #: Algorithm rounds by phase (e.g. ``giwp``, ``branch``).
    rounds: dict[str, int] = field(default_factory=dict)

    def note_round(self, phase: str) -> None:
        self.rounds[phase] = self.rounds.get(phase, 0) + 1

    @property
    def total_runs(self) -> int:
        """Runs the algorithms asked for, executed or memoized."""
        return self.executed + self.cached

    @property
    def hit_rate(self) -> float:
        return self.cached / self.total_runs if self.total_runs else 0.0

    @property
    def speedup(self) -> float:
        """Serial-equivalent time over actual wall time (≈1.0 serial)."""
        if self.wall_time <= 0.0:
            return 1.0
        return self.run_time / self.wall_time

    def metrics(self) -> dict[str, float]:
        """The counters as a flat gauge map, in the shape a
        :class:`repro.obs.MetricsRegistry` provider returns."""
        gauges: dict[str, float] = {
            "exec.executed": self.executed,
            "exec.cached": self.cached,
            "exec.groups": self.groups,
            "exec.batches": self.batches,
            "exec.wall_time": round(self.wall_time, 6),
            "exec.run_time": round(self.run_time, 6),
            "exec.hit_rate": round(self.hit_rate, 6),
            "exec.speedup": round(self.speedup, 6),
        }
        for phase, count in self.rounds.items():
            gauges[f"exec.rounds.{phase}"] = count
        return gauges

    def report(self, title: str = "exec stats") -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"{title}:",
            f"  runs      : {self.total_runs} requested = "
            f"{self.executed} executed + {self.cached} cached "
            f"({self.hit_rate:.0%} hit rate)",
            f"  groups    : {self.groups} intervention groups, "
            f"{self.batches} backend dispatches",
            f"  wall time : {self.wall_time:.3f}s "
            f"(serial-equivalent {self.run_time:.3f}s, "
            f"speedup {self.speedup:.2f}x)",
        ]
        if self.rounds:
            phases = ", ".join(
                f"{phase}={count}" for phase, count in sorted(self.rounds.items())
            )
            lines.append(f"  rounds    : {phases}")
        return "\n".join(lines)
