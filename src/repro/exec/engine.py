"""The intervention-execution engine: batching, memoization, dispatch.

:class:`ExecutionEngine` is the single funnel through which every
intervened re-execution flows.  It owns a :class:`~repro.exec.backends`
backend (where runs happen), an :class:`~repro.exec.cache.OutcomeCache`
(which runs can be skipped), and an :class:`~repro.exec.stats.ExecStats`
(what it all cost).  Runners translate pid groups into
:class:`~repro.exec.cache.RunRequest` lists and a ``run_fn`` that
performs one execution; the engine decides what actually runs.

:class:`BatchScheduler` implements the two dispatch shapes discovery
needs:

* :meth:`BatchScheduler.run_group` — one intervention round: the seeds
  of a group are mutually independent, so they execute in waves of
  backend width.  Early-stop semantics are preserved *exactly*: the
  returned outcome list is always the serial walk's prefix, truncated at
  the first failing seed.  A parallel wave may speculatively execute a
  few seeds past that point; their outcomes are cached (they are valid),
  just not returned.
* :meth:`BatchScheduler.run_independent` — a batch of independent
  groups (e.g. every probe of the LINEAR baseline, or a round's worth of
  junction probes): whole groups fan out across the backend, each worker
  walking its group serially with the usual early-stop rule.

With :class:`~repro.exec.backends.SerialBackend` both shapes reduce to
the historical in-line loops — bit-identical results, zero speculation.

Invariants
----------
* results are a pure function of the requests: backend choice and job
  count affect wall-clock time only (``run_group`` returns exactly the
  serial walk's early-stop prefix; speculative outcomes are cached but
  never returned);
* only the parent mutates the cache — workers read a (possibly
  fork-snapshotted) view and hand outcomes back;
* :meth:`ExecutionEngine.dispatch` is the generic timed fan-out other
  subsystems reuse (the corpus layer ships one analysis task per shard
  through it); it inherits the same order-preservation guarantee.

Persistence: none here — the engine's only durable state is the
outcome cache (see :mod:`repro.exec.cache`), written on ``flush``.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence, TYPE_CHECKING

from .backends import Backend, SerialBackend
from .cache import OutcomeCache, RunRequest
from .stats import ExecStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.events import EventBus
    from ..core.intervention import RunOutcome

#: Executes one request; must be a pure function of the request for
#: memoization to be sound.
RunFn = Callable[[RunRequest], "RunOutcome"]


class BatchScheduler:
    """Turns request groups into cache lookups plus backend dispatches."""

    def __init__(self, engine: "ExecutionEngine") -> None:
        self.engine = engine

    # -- one intervention round -----------------------------------------

    def run_group(
        self,
        requests: Sequence[RunRequest],
        run_fn: RunFn,
        early_stop: bool = True,
    ) -> list["RunOutcome"]:
        """One group: seeds in order, waves of backend width."""
        engine = self.engine
        cache = engine.cache
        engine.stats.groups += 1
        requests = list(requests)
        results: list["RunOutcome"] = []
        i, n = 0, len(requests)
        wave_size = max(1, engine.backend.jobs)
        while i < n:
            wave = requests[i : i + wave_size]
            misses = [r for r in wave if cache.peek(r) is None]
            if misses:
                for request, outcome in zip(misses, engine.execute(misses, run_fn)):
                    cache.store(request, outcome)
            missed = set(misses)
            for request in wave:
                outcome = cache.peek(request)
                if request in missed:
                    cache.record_miss()
                else:
                    cache.record_hit()
                    engine.stats.cached += 1
                results.append(outcome)
                i += 1
                if early_stop and outcome.failed:
                    return results
        return results

    # -- a batch of independent groups ----------------------------------

    def run_independent(
        self,
        groups: Sequence[Sequence[RunRequest]],
        run_fn: RunFn,
        early_stop: bool = True,
    ) -> list[list["RunOutcome"]]:
        """Independent groups: whole groups fan out across the backend.

        Each group's result is exactly what :meth:`run_group` would have
        produced; only the wall-clock schedule differs.
        """
        engine = self.engine
        cache = engine.cache
        groups = [list(g) for g in groups]
        engine.stats.groups += len(groups)
        results: list[Optional[list["RunOutcome"]]] = [None] * len(groups)

        pending: list[int] = []
        for index, requests in enumerate(groups):
            resolved = self._resolve_from_cache(requests, early_stop)
            if resolved is None:
                pending.append(index)
            else:
                results[index] = resolved

        if pending:
            def run_whole_group(index: int):
                # Runs in a worker: walk the group serially, early-stop,
                # reading (a possibly fork-snapshotted) cache but never
                # writing it — the parent owns all mutation.
                walked = []
                for request in groups[index]:
                    outcome = cache.peek(request)
                    duration = None
                    if outcome is None:
                        started = time.perf_counter()
                        outcome = run_fn(request)
                        duration = time.perf_counter() - started
                    walked.append((request, outcome, duration))
                    if early_stop and outcome.failed:
                        break
                return walked

            for index, walked in zip(
                pending, engine.dispatch(run_whole_group, pending)
            ):
                outcomes = []
                for request, outcome, duration in walked:
                    if duration is None:
                        cache.record_hit()
                        engine.stats.cached += 1
                    else:
                        cache.record_miss()
                        cache.store(request, outcome)
                        engine.stats.executed += 1
                        engine.stats.run_time += duration
                    outcomes.append(outcome)
                results[index] = outcomes
        return results  # type: ignore[return-value]

    def _resolve_from_cache(
        self, requests: Sequence[RunRequest], early_stop: bool
    ) -> Optional[list["RunOutcome"]]:
        """The group's full serial walk from cache, or None if any run
        would be needed (nothing is counted in that case)."""
        cache = self.engine.cache
        outcomes: list["RunOutcome"] = []
        for request in requests:
            outcome = cache.peek(request)
            if outcome is None:
                return None
            outcomes.append(outcome)
            if early_stop and outcome.failed:
                break
        for _ in outcomes:
            cache.record_hit()
        self.engine.stats.cached += len(outcomes)
        return outcomes


class ExecutionEngine:
    """Backend + cache + stats, shared across runners and sessions."""

    def __init__(
        self,
        backend: Optional[Backend] = None,
        cache: Optional[OutcomeCache] = None,
        stats: Optional[ExecStats] = None,
        bus: Optional["EventBus"] = None,
    ) -> None:
        self.backend = backend or SerialBackend()
        self.cache = cache if cache is not None else OutcomeCache()
        self.stats = stats or ExecStats()
        #: optional observer seam: round boundaries are emitted as
        #: ``intervention-round`` events (see :mod:`repro.api.events`)
        self.bus = bus
        self.scheduler = BatchScheduler(self)
        #: One timing wrapper per run_fn (bound methods hash by
        #: instance+function, so every wave of a runner reuses the same
        #: object — which lets the process backend keep its pool forked).
        self._timed: dict[RunFn, Callable] = {}
        #: the open per-round span: (phase, index, perf_counter at open)
        self._open_round: Optional[tuple[str, int, float]] = None

    @classmethod
    def from_options(
        cls,
        jobs: Optional[int] = None,
        backend: Optional[str] = None,
        cache: Optional[OutcomeCache] = None,
        bus: Optional["EventBus"] = None,
    ) -> "ExecutionEngine":
        """An engine with its backend resolved from CLI-ish inputs
        (``--jobs`` / ``--backend``), via
        :func:`~repro.exec.backends.make_backend`."""
        from .backends import make_backend

        return cls(
            backend=make_backend(backend, jobs), cache=cache, bus=bus
        )

    # -- the API runners use --------------------------------------------

    def run_group(
        self,
        requests: Sequence[RunRequest],
        run_fn: RunFn,
        early_stop: bool = True,
    ) -> list["RunOutcome"]:
        return self.scheduler.run_group(requests, run_fn, early_stop)

    def run_independent_groups(
        self,
        groups: Sequence[Sequence[RunRequest]],
        run_fn: RunFn,
        early_stop: bool = True,
    ) -> list[list["RunOutcome"]]:
        return self.scheduler.run_independent(groups, run_fn, early_stop)

    def note_round(self, phase: str) -> None:
        """Algorithms mark round boundaries for the stats report (and
        any subscribed observers — the live progress seam).  With a bus
        attached, each round also becomes a timed ``round:<phase>#<n>``
        span: a round only ends when the next begins (or the engine
        finishes), so spans chain open→open via :meth:`end_rounds`
        rather than nesting as context managers."""
        self.stats.note_round(phase)
        if self.bus is not None:
            from ..api.events import InterventionRound

            self.end_rounds()
            self.bus.emit(
                InterventionRound(phase=phase, index=self.stats.rounds[phase])
            )
            self._open_round = (
                phase, self.stats.rounds[phase], time.perf_counter()
            )

    def end_rounds(self) -> None:
        """Close the open per-round span, if any — called between
        rounds, by the session when discovery returns, and defensively
        by :meth:`finish`."""
        if self._open_round is not None and self.bus is not None:
            phase, index, started = self._open_round
            self._open_round = None
            self.bus.emit_span(
                f"round:{phase}#{index}",
                time.perf_counter() - started,
                started=started,
            )

    # -- low-level dispatch ---------------------------------------------

    def execute(
        self, requests: Sequence[RunRequest], run_fn: RunFn
    ) -> list["RunOutcome"]:
        """Run requests through the backend, bypassing the cache."""
        timed = self._timed.get(run_fn)
        if timed is None:

            def timed(request: RunRequest, _run: RunFn = run_fn):
                started = time.perf_counter()
                outcome = _run(request)
                return outcome, time.perf_counter() - started

            self._timed[run_fn] = timed

        pairs = self.dispatch(timed, requests)
        self.stats.executed += len(pairs)
        for _, duration in pairs:
            self.stats.run_time += duration
        return [outcome for outcome, _ in pairs]

    def dispatch(self, fn: Callable, items: Sequence) -> list:
        """One timed backend dispatch."""
        started = time.perf_counter()
        out = self.backend.map(fn, list(items))
        self.stats.wall_time += time.perf_counter() - started
        self.stats.batches += 1
        return out

    # -- lifecycle -------------------------------------------------------

    def flush(self) -> Optional[str]:
        """Persist the cache if it was configured with a path."""
        if self.cache.path is not None:
            return self.cache.save()
        return None

    def close(self) -> None:
        self.backend.close()

    def finish(self) -> str:
        """Flush, close, and return the human-readable summary — the
        one teardown path every CLI subcommand and :func:`repro.api.run`
        share.  Also emits an ``engine-finished`` event."""
        self.end_rounds()
        saved = self.flush()
        self.close()
        lines = [self.stats.report()]
        if saved is not None:
            lines.append(f"outcome cache: {len(self.cache)} entries -> {saved}")
        summary = "\n".join(lines)
        if self.bus is not None:
            from ..api.events import EngineFinished

            self.bus.emit(
                EngineFinished(
                    summary=summary,
                    executed=self.stats.executed,
                    cached=self.stats.cached,
                )
            )
        return summary
