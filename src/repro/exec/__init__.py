"""``repro.exec`` — the pluggable intervention-execution engine.

AID's cost is dominated by intervened re-executions.  This subsystem
makes them cheap twice over:

* **parallelism** — interventions within a round (and independent
  groups within a batch) are embarrassingly parallel; a
  :class:`~repro.exec.backends.Backend` decides where they run
  (:class:`~repro.exec.backends.SerialBackend`,
  :class:`~repro.exec.backends.ThreadPoolBackend`,
  :class:`~repro.exec.backends.ProcessPoolBackend`);
* **memoization** — outcomes are deterministic per
  ``(workload, seed, pids)``, so an
  :class:`~repro.exec.cache.OutcomeCache` (optionally JSON-persisted)
  answers repeated requests without executing anything.

:class:`~repro.exec.engine.ExecutionEngine` ties the two together and
keeps :class:`~repro.exec.stats.ExecStats` accounting; the default
(serial backend, in-memory cache) is bit-identical to historical
in-line execution.

The engine is deliberately generic — an order-preserving parallel map
plus a memo — so other subsystems reuse it for non-intervention work:
:mod:`repro.corpus` dispatches one *analysis task per corpus shard*
through :meth:`~repro.exec.engine.ExecutionEngine.dispatch` for
``repro corpus analyze --jobs N``.

Invariant: every backend satisfies ``map(fn, items)[i] == fn(items[i])``,
so results never depend on the backend or job count — only the
wall-clock schedule does.  Persistence: only the outcome cache
persists (a single JSON file, format in :mod:`repro.exec.cache`).
"""

from .backends import (
    BACKENDS,
    Backend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    make_backend,
)
from .cache import CACHE_FORMAT_VERSION, OutcomeCache, RunRequest
from .engine import BatchScheduler, ExecutionEngine, RunFn
from .stats import ExecStats

__all__ = [
    "BACKENDS",
    "Backend",
    "BatchScheduler",
    "CACHE_FORMAT_VERSION",
    "ExecStats",
    "ExecutionEngine",
    "OutcomeCache",
    "ProcessPoolBackend",
    "RunFn",
    "RunRequest",
    "SerialBackend",
    "ThreadPoolBackend",
    "make_backend",
]
