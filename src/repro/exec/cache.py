"""Outcome memoization: never pay twice for the same intervened run.

The simulator is deterministic per ``(program, interventions, seed)``
and the fault injections for a pid set are a pure function of the frozen
predicate suite, so one intervened execution is fully identified by the
triple ``(workload, seed, pids)`` — :class:`RunRequest`.  The cache maps
that triple to its :class:`~repro.core.intervention.RunOutcome`.

Memoization pays on three levels:

* **within one discovery** — GIWP revisits pid groups (singleton
  confirmations, recursion over a stopped half);
* **across approaches** — Figure 7 runs AID and TAGT on the same
  session, and their rounds overlap;
* **across invocations** — with JSON persistence, a repeated
  ``figure7``/``figure8`` sweep replays entirely from cache (the
  interventional analogue of incremental re-evaluation under updates).

The cache key deliberately excludes the pipeline configuration
(extractors, precedence policy, corpus quotas); the ``workload`` string
must encode whatever distinguishes two incompatible suites.  Runners in
this repo embed program name, corpus quotas, and step budget.

Persistence format: one JSON file —
``{"version": 1, "entries": [{"workload", "seed", "pids": [...],
"outcome": {"observed": [...], "failed", "seed"}}, ...]}`` — entries
sorted by key for reproducible diffs; unknown versions are rejected,
and loading merges into (never clobbers) the in-memory table.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Iterator, Optional

from ..core.intervention import RunOutcome
from ..sim.serialize import stable_digest

CACHE_FORMAT_VERSION = 1

#: Internal cache key: (workload, seed, pids).
CacheKey = tuple[str, int, frozenset]


@dataclass(frozen=True)
class RunRequest:
    """One intervened execution, fully identified for memoization."""

    workload: str
    seed: int
    pids: frozenset[str]

    @property
    def key(self) -> CacheKey:
        return (self.workload, self.seed, self.pids)

    @property
    def fingerprint(self) -> str:
        """Content address of this request, using the same digest scheme
        as the trace-corpus store (:mod:`repro.sim.serialize`) — one
        fingerprint vocabulary across every persistence layer."""
        return stable_digest(
            {
                "workload": self.workload,
                "seed": self.seed,
                "pids": sorted(self.pids),
            }
        )


class OutcomeCache:
    """Exact-key outcome store with hit/miss statistics and persistence.

    Parameters
    ----------
    path:
        Optional JSON file.  When given, an existing file is loaded
        eagerly and :meth:`save` (with no argument) writes back to it.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self._data: dict[CacheKey, RunOutcome] = {}
        if path is not None and os.path.exists(path):
            self.load(path)

    # -- lookup ----------------------------------------------------------

    def peek(self, request: RunRequest) -> Optional[RunOutcome]:
        """Stat-free lookup (the scheduler does its own accounting)."""
        return self._data.get(request.key)

    def record_hit(self) -> None:
        self.hits += 1

    def record_miss(self) -> None:
        self.misses += 1

    def store(self, request: RunRequest, outcome: RunOutcome) -> None:
        self._data[request.key] = outcome
        self.stores += 1

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, request: RunRequest) -> bool:
        return request.key in self._data

    def __iter__(self) -> Iterator[CacheKey]:
        return iter(self._data)

    def clear(self) -> None:
        self._data.clear()

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    # -- persistence -----------------------------------------------------

    def save(self, path: Optional[str] = None) -> str:
        """Write every entry as JSON; returns the path written."""
        path = path or self.path
        if path is None:
            raise ValueError("OutcomeCache has no path to save to")
        entries = []
        for (workload, seed, pids), outcome in sorted(
            self._data.items(),
            key=lambda kv: (kv[0][0], kv[0][1], tuple(sorted(kv[0][2]))),
        ):
            entries.append(
                {
                    "workload": workload,
                    "seed": seed,
                    "pids": sorted(pids),
                    "outcome": {
                        "observed": sorted(outcome.observed),
                        "failed": outcome.failed,
                        "seed": outcome.seed,
                    },
                }
            )
        payload = {"version": CACHE_FORMAT_VERSION, "entries": entries}
        with open(path, "w") as handle:
            json.dump(payload, handle)
        return path

    def load(self, path: str) -> int:
        """Merge entries from ``path``; returns how many were loaded."""
        with open(path) as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path} is not an outcome-cache file: {exc}"
                ) from exc
        if not isinstance(payload, dict):
            raise ValueError(f"{path} is not an outcome-cache file")
        version = payload.get("version")
        if version != CACHE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported cache format version {version!r} in {path}"
            )
        entries = payload.get("entries", [])
        for index, entry in enumerate(entries):
            try:
                key = (
                    str(entry["workload"]),
                    int(entry["seed"]),
                    frozenset(entry["pids"]),
                )
                raw = entry["outcome"]
                outcome = RunOutcome(
                    observed=frozenset(raw["observed"]),
                    failed=bool(raw["failed"]),
                    seed=int(raw["seed"]),
                )
            except (KeyError, TypeError, AttributeError) as exc:
                raise ValueError(
                    f"{path}: malformed cache entry #{index}: {exc!r}"
                ) from exc
            self._data[key] = outcome
        return len(entries)
