"""``repro.corpus`` — the persistent trace-corpus subsystem.

Turns the paper's collect-once / analyze-many offline phase (Appendix A)
into a durable service:

* :mod:`~repro.corpus.store` — a content-addressed, deduplicating
  on-disk :class:`TraceStore` with a label/seed/signature manifest;
* :mod:`~repro.corpus.matrix` — the :class:`EvalMatrix`, a
  bitset-backed predicates × traces memo guaranteeing each pair is
  evaluated exactly once across the corpus's lifetime;
* :mod:`~repro.corpus.pipeline` — the :class:`IncrementalPipeline`
  maintaining SD counts, the fully-discriminative set, and the AC-DAG
  under log insertions (with a :meth:`~IncrementalPipeline.rebuild`
  fallback the patched state is asserted equal to);
* :mod:`~repro.corpus.session` — :class:`CorpusSession`, an AID session
  that debugs from stored logs instead of re-running the workload.

CLI: ``repro corpus init|ingest|stats|analyze`` and
``repro debug <workload> --corpus DIR``.
"""

from .matrix import EvalMatrix
from .pipeline import IncrementalPipeline, IngestResult
from .session import CorpusSession
from .store import CorpusError, TraceEntry, TraceStore

__all__ = [
    "CorpusError",
    "CorpusSession",
    "EvalMatrix",
    "IncrementalPipeline",
    "IngestResult",
    "TraceEntry",
    "TraceStore",
]
