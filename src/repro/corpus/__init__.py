"""``repro.corpus`` — the persistent, sharded trace-corpus subsystem.

Turns the paper's collect-once / analyze-many offline phase (Appendix A)
into a durable service:

* :mod:`~repro.corpus.store` — a content-addressed, deduplicating
  on-disk :class:`TraceStore`, sharded by fingerprint prefix
  (``shards/<hex>/``) with per-shard manifests and transparent in-place
  migration from the v1 flat layout;
* :mod:`~repro.corpus.matrix` — the :class:`EvalMatrix` (one bitset
  file per shard) behind a :class:`ShardedEvalMatrix`, a predicates ×
  traces memo guaranteeing each pair is evaluated at most once
  corpus-wide, with shard-parallel evaluation and compaction;
* :mod:`~repro.corpus.columnar` — per-shard structure-of-arrays
  :class:`ShardTable` files (v3 side cars, mmap-backed, interned
  pools) that let columnar-capable predicates sweep a whole shard in
  one pass instead of walking trace objects;
* :mod:`~repro.corpus.pipeline` — the :class:`IncrementalPipeline`
  maintaining SD counts, the fully-discriminative set, and the AC-DAG
  under log insertions, with a shard-parallel ``bootstrap`` fanning out
  through :mod:`repro.exec` (and a
  :meth:`~IncrementalPipeline.rebuild` fallback the merged state is
  asserted equal to);
* :mod:`~repro.corpus.session` — :class:`CorpusSession`, an AID session
  that debugs from stored logs instead of re-running the workload.

CLI: ``repro corpus init|ingest|stats|shard-stats|analyze|compact`` and
``repro debug <workload> --corpus DIR``; ``analyze --jobs N`` runs one
evaluation task per shard.  See ``docs/corpus.md`` for the workflow and
the on-disk format spec.
"""

from .columnar import (
    ColumnarError,
    ColumnarUnsupported,
    ShardTable,
    build_shard_table,
)
from .matrix import (
    CompactionStats,
    EvalMatrix,
    ShardedEvalMatrix,
    ShardEvaluation,
    columnar_enabled,
    merge_matrices,
    split_matrix,
)
from .pipeline import BatchIngestResult, IncrementalPipeline, IngestResult
from .session import CorpusSession
from .store import CorpusError, TraceEntry, TraceStore

__all__ = [
    "ColumnarError",
    "ColumnarUnsupported",
    "CompactionStats",
    "CorpusError",
    "CorpusSession",
    "EvalMatrix",
    "IncrementalPipeline",
    "BatchIngestResult",
    "IngestResult",
    "ShardEvaluation",
    "ShardTable",
    "ShardedEvalMatrix",
    "TraceEntry",
    "TraceStore",
    "build_shard_table",
    "columnar_enabled",
    "merge_matrices",
    "split_matrix",
]
