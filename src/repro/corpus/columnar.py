"""Columnar shard tables: structure-of-arrays trace storage (store v3).

Role
----
The evaluation kernel (PR 5) indexed traces but still walks Python
objects per trace.  This module persists each shard's traces *once* as
a flat structure-of-arrays table — int64 columns plus interned string /
value / lockset pools — so predicate kinds can sweep whole shard
columns in one pass (:meth:`repro.core.predicates.PredicateDef.
evaluate_columnar`) instead of re-materialising ``MethodExecution``
objects for every (predicate, trace) pair.  The table is mmap-backed:
opening it costs one header parse, and column data is paged in on
demand, so million-trace corpora never fully materialise.

Layout (``shards/<sid>/columnar.bin``, version 1)
-------------------------------------------------
``RCOL`` magic | u32 version | u64 header length | header JSON | zero
padding to an 8-byte boundary | back-to-back native int64 columns.
The header JSON carries the shard content digest (the invalidation
key), the fingerprint list in row order, the interned pools, and a
``columns`` map of ``name -> [element offset, count]`` relative to the
8-aligned data start — offsets are element-relative precisely so the
header can describe the data without knowing its own serialized size.

Column groups (all int64; ``-1`` encodes "absent" where noted):

* trace meta — one row per trace, in sorted-fingerprint order:
  ``t_seed t_end t_failed t_fmode t_fexc t_fmethod t_fthread t_ftime``
  (failure fields are string-pool indices, -1 when the trace passed or
  the field is None).
* calls — one row per method execution, sorted by
  ``(method, thread, occurrence, trace)`` pool indices so every
  :class:`~repro.sim.tracing.MethodKey` occupies one contiguous run:
  ``c_trace c_id c_method c_thread c_occ c_start c_end c_slam c_elam
  c_parent c_pnull c_ret c_exc c_skip c_aoff c_acnt``.  ``c_ret``
  indexes the ``values`` pool (return values interned by canonical
  JSON), ``c_exc`` the string pool (-1 = no exception), and
  ``c_aoff/c_acnt`` slice the access columns.
* key directory — one row per distinct key:
  ``k_method k_thread k_occ k_off k_cnt`` locating each run.
* accesses — ``a_obj a_type a_time a_lam a_locks`` (``a_locks``
  indexes the lockset pool).

Invariants
----------
* The table is a pure derived cache: it is a deterministic function of
  the shard's stored payloads, keyed by ``shard_digest`` (the stable
  digest of the sorted fingerprints).  Stale tables are rebuilt, never
  patched.
* Encoding is lossless where it claims to be: ``decode(row)`` returns
  an :class:`~repro.sim.serialize.ImportedTrace` whose re-serialized
  canonical JSON equals the stored payload's (asserted property-style
  in tests/test_columnar.py).
* Payloads the format cannot represent (non-integer times, ints
  outside int64, missing lamports) raise :class:`ColumnarUnsupported`
  at build time and the caller falls back to the object path — never a
  silently wrong table.

Persistence: tables are written atomically (tmp + ``os.replace``)
next to the shard manifest; deleting them loses nothing but time.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import sys
from array import array
from pathlib import Path
from typing import Any, Iterable, Optional, Tuple

from ..sim.serialize import SCHEMA_VERSION, ImportedTrace, canonical_json
from ..sim.tracing import Access, AccessType, FailureInfo, MethodExecution, MethodKey

COLUMNAR_VERSION = 1
#: Per-shard table file name, beside the shard manifest and matrix.
COLUMNAR_NAME = "columnar.bin"

_MAGIC = b"RCOL"
_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

TRACE_COLUMNS = (
    "t_seed", "t_end", "t_failed",
    "t_fmode", "t_fexc", "t_fmethod", "t_fthread", "t_ftime",
)
CALL_COLUMNS = (
    "c_trace", "c_id", "c_method", "c_thread", "c_occ",
    "c_start", "c_end", "c_slam", "c_elam",
    "c_parent", "c_pnull", "c_ret", "c_exc", "c_skip",
    "c_aoff", "c_acnt",
)
KEY_COLUMNS = ("k_method", "k_thread", "k_occ", "k_off", "k_cnt")
ACCESS_COLUMNS = ("a_obj", "a_type", "a_time", "a_lam", "a_locks")
ALL_COLUMNS = TRACE_COLUMNS + CALL_COLUMNS + KEY_COLUMNS + ACCESS_COLUMNS


class ColumnarError(RuntimeError):
    """A columnar table is unreadable or inconsistent."""


class ColumnarUnsupported(ColumnarError):
    """The shard's payloads cannot be represented in the columnar format.

    The caller falls back to the per-trace object path; this is a
    capability signal, not corruption.
    """


class _Pool:
    """Order-of-first-use interning pool."""

    __slots__ = ("items", "_index")

    def __init__(self) -> None:
        self.items: list = []
        self._index: dict = {}

    def add(self, key, item=None) -> int:
        idx = self._index.get(key)
        if idx is None:
            idx = len(self.items)
            self._index[key] = idx
            self.items.append(key if item is None else item)
        return idx


def _int64(value: Any, what: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ColumnarUnsupported(f"{what} is not an integer: {value!r}")
    if not _INT64_MIN <= value <= _INT64_MAX:
        raise ColumnarUnsupported(f"{what} overflows int64: {value!r}")
    return value


def _text(value: Any, what: str) -> str:
    if not isinstance(value, str):
        raise ColumnarUnsupported(f"{what} is not a string: {value!r}")
    return value


def build_shard_table(
    path: Path,
    rows: Iterable[Tuple[str, dict]],
    shard_digest: str,
) -> Path:
    """Encode ``rows`` of ``(fingerprint, trace payload)`` into ``path``.

    Rows are sorted by fingerprint, so the table bytes are a pure
    function of shard content.  Raises :class:`ColumnarUnsupported`
    when any payload field falls outside the format (caller falls back
    to the object path); nothing is written in that case.
    """
    ordered = sorted(rows)
    strings = _Pool()
    values = _Pool()
    locksets = _Pool()
    cols: dict[str, list[int]] = {name: [] for name in ALL_COLUMNS}
    fingerprints: list[str] = []
    program: Optional[str] = None
    call_recs: list[tuple[int, int, int, int, dict]] = []

    for trace_row, (fp, payload) in enumerate(ordered):
        try:
            if payload.get("schema") != SCHEMA_VERSION:
                raise ColumnarUnsupported(
                    f"trace {fp}: schema {payload.get('schema')!r}"
                )
            fingerprints.append(fp)
            if trace_row == 0:
                program = payload.get("program")
            elif payload.get("program") != program:
                raise ColumnarUnsupported("mixed programs in one shard")
            cols["t_seed"].append(_int64(payload["seed"], "seed"))
            cols["t_end"].append(_int64(payload["end_time"], "end_time"))
            failure = payload.get("failure")
            cols["t_failed"].append(0 if failure is None else 1)
            if failure is None:
                for name in ("t_fmode", "t_fexc", "t_fmethod", "t_fthread"):
                    cols[name].append(-1)
                cols["t_ftime"].append(0)
            else:
                cols["t_fmode"].append(
                    strings.add(_text(failure["mode"], "failure.mode"))
                )
                for name, field in (
                    ("t_fexc", "exception"),
                    ("t_fmethod", "method"),
                    ("t_fthread", "thread"),
                ):
                    value = failure.get(field)
                    cols[name].append(
                        -1 if value is None
                        else strings.add(_text(value, f"failure.{field}"))
                    )
                cols["t_ftime"].append(_int64(failure["time"], "failure.time"))
            for call in payload["calls"]:
                m_idx = strings.add(_text(call["method"], "method"))
                t_idx = strings.add(_text(call["thread"], "thread"))
                occ = _int64(call["occurrence"], "occurrence")
                call_recs.append((m_idx, t_idx, occ, trace_row, call))
        except (KeyError, TypeError) as exc:
            raise ColumnarUnsupported(f"trace {fp}: malformed payload ({exc!r})")

    call_recs.sort(key=lambda rec: rec[:4])

    acc_total = 0
    prev_key: Optional[tuple[int, int, int]] = None
    for pos, (m_idx, t_idx, occ, trace_row, call) in enumerate(call_recs):
        key = (m_idx, t_idx, occ)
        if key != prev_key:
            if prev_key is not None:
                cols["k_cnt"].append(pos - cols["k_off"][-1])
            cols["k_method"].append(m_idx)
            cols["k_thread"].append(t_idx)
            cols["k_occ"].append(occ)
            cols["k_off"].append(pos)
            prev_key = key
        cols["c_trace"].append(trace_row)
        cols["c_id"].append(_int64(call["call_id"], "call_id"))
        cols["c_method"].append(m_idx)
        cols["c_thread"].append(t_idx)
        cols["c_occ"].append(occ)
        cols["c_start"].append(_int64(call["start_time"], "start_time"))
        cols["c_end"].append(_int64(call["end_time"], "end_time"))
        cols["c_slam"].append(_int64(call["start_lamport"], "start_lamport"))
        cols["c_elam"].append(_int64(call["end_lamport"], "end_lamport"))
        parent = call["parent_call_id"]
        cols["c_pnull"].append(1 if parent is None else 0)
        cols["c_parent"].append(0 if parent is None else _int64(parent, "parent"))
        cols["c_ret"].append(values.add(canonical_json(call["return_value"])))
        exc_kind = call["exception"]
        cols["c_exc"].append(
            -1 if exc_kind is None else strings.add(_text(exc_kind, "exception"))
        )
        cols["c_skip"].append(1 if call["body_skipped"] else 0)
        accesses = call["accesses"]
        cols["c_aoff"].append(acc_total)
        cols["c_acnt"].append(len(accesses))
        acc_total += len(accesses)
        for acc in accesses:
            cols["a_obj"].append(strings.add(_text(acc["obj"], "access.obj")))
            cols["a_type"].append(strings.add(_text(acc["type"], "access.type")))
            cols["a_time"].append(_int64(acc["time"], "access.time"))
            cols["a_lam"].append(_int64(acc["lamport"], "access.lamport"))
            locks = acc["locks"]
            key_locks = tuple(sorted(_text(l, "lock") for l in locks))
            cols["a_locks"].append(locksets.add(key_locks, list(key_locks)))
    if prev_key is not None:
        cols["k_cnt"].append(len(call_recs) - cols["k_off"][-1])

    offsets: dict[str, list[int]] = {}
    cursor = 0
    payload_parts: list[bytes] = []
    for name in ALL_COLUMNS:
        data = cols[name]
        offsets[name] = [cursor, len(data)]
        cursor += len(data)
        payload_parts.append(array("q", data).tobytes())

    header = {
        "version": COLUMNAR_VERSION,
        "byteorder": sys.byteorder,
        "schema": SCHEMA_VERSION,
        "shard_digest": shard_digest,
        "program": program,
        "fingerprints": fingerprints,
        "strings": strings.items,
        "values": values.items,
        "locksets": locksets.items,
        "columns": offsets,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    prefix_len = len(_MAGIC) + 4 + 8 + len(header_bytes)
    padding = (-prefix_len) % 8

    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as fh:
        fh.write(_MAGIC)
        fh.write(struct.pack("<I", COLUMNAR_VERSION))
        fh.write(struct.pack("<Q", len(header_bytes)))
        fh.write(header_bytes)
        fh.write(b"\x00" * padding)
        for part in payload_parts:
            fh.write(part)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


class KeyRun:
    """One :class:`MethodKey`'s contiguous call-row run, deduplicated.

    A trace can (in adversarial payloads) contain several calls with
    the same key; the object path's ``executions_by_key`` dict keeps
    the *last* one in ``(start_time, call_id)`` order, so the run keeps
    the last row per trace — ``traces[i]`` is the trace row owning
    selected call ``i`` and :meth:`column` returns values aligned with
    it.
    """

    __slots__ = ("_table", "_off", "_cnt", "traces", "_sel")

    def __init__(self, table: "ShardTable", off: int, cnt: int) -> None:
        self._table = table
        self._off = off
        self._cnt = cnt
        trace_col = table.col("c_trace")[off : off + cnt].tolist()
        sel: Optional[list[int]] = None
        for i in range(1, cnt):
            if trace_col[i] == trace_col[i - 1]:
                sel = [
                    off + j
                    for j in range(cnt)
                    if j + 1 == cnt or trace_col[j + 1] != trace_col[j]
                ]
                trace_col = [table.col("c_trace")[i] for i in sel]
                break
        self._sel = sel
        self.traces = trace_col

    def column(self, name: str) -> list[int]:
        mv = self._table.col(name)
        if self._sel is None:
            return mv[self._off : self._off + self._cnt].tolist()
        return [mv[i] for i in self._sel]


class ShardTable:
    """Read view over one shard's columnar file (mmap-backed)."""

    def __init__(self, path: Path, mm: mmap.mmap, header: dict, data_start: int):
        self.path = Path(path)
        self._mm = mm
        self.shard_digest: str = header["shard_digest"]
        self.program: Optional[str] = header.get("program")
        self.fingerprints: list[str] = header["fingerprints"]
        self.strings: list[str] = header["strings"]
        self._raw_values: list[str] = header["values"]
        self._raw_locksets: list[list[str]] = header["locksets"]
        base = memoryview(mm)
        self._cols: dict[str, memoryview] = {}
        for name, (off, count) in header["columns"].items():
            start = data_start + off * 8
            self._cols[name] = base[start : start + count * 8].cast("q")
        # Lazily-built derived indexes (cheap to drop; see close()).
        self._row_of: Optional[dict[str, int]] = None
        self._string_idx: Optional[dict[str, int]] = None
        self._values: Optional[list] = None
        self._locksets: Optional[list[frozenset]] = None
        self._keydir: Optional[dict[tuple[int, int, int], tuple[int, int]]] = None
        self._signatures: Optional[list[Optional[str]]] = None
        self._trace_calls: Optional[list[list[int]]] = None

    @classmethod
    def open(cls, path: Path) -> "ShardTable":
        path = Path(path)
        with path.open("rb") as fh:
            head = fh.read(len(_MAGIC) + 4 + 8)
            if len(head) < len(_MAGIC) + 4 + 8 or head[: len(_MAGIC)] != _MAGIC:
                raise ColumnarError(f"{path}: not a columnar table")
            version, header_len = struct.unpack_from("<IQ", head, len(_MAGIC))
            if version != COLUMNAR_VERSION:
                raise ColumnarError(f"{path}: unsupported columnar version {version}")
            try:
                header = json.loads(fh.read(header_len).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ColumnarError(f"{path}: corrupt header ({exc})")
            if header.get("byteorder") != sys.byteorder:
                raise ColumnarError(f"{path}: foreign byte order")
            fh.seek(0)
            mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        prefix_len = len(_MAGIC) + 4 + 8 + header_len
        data_start = prefix_len + ((-prefix_len) % 8)
        try:
            return cls(path, mm, header, data_start)
        except (KeyError, TypeError, ValueError) as exc:
            mm.close()
            raise ColumnarError(f"{path}: malformed table ({exc})")

    # -- basic shape -------------------------------------------------

    @property
    def n_traces(self) -> int:
        return len(self.fingerprints)

    @property
    def n_calls(self) -> int:
        return len(self._cols["c_trace"])

    def col(self, name: str) -> memoryview:
        return self._cols[name]

    def row_of(self, fingerprint: str) -> Optional[int]:
        if self._row_of is None:
            self._row_of = {fp: i for i, fp in enumerate(self.fingerprints)}
        return self._row_of.get(fingerprint)

    # -- pools -------------------------------------------------------

    def string_index(self, text: str) -> Optional[int]:
        """Pool index of ``text``, or None if no trace in the shard uses it."""
        if self._string_idx is None:
            self._string_idx = {s: i for i, s in enumerate(self.strings)}
        return self._string_idx.get(text)

    @property
    def decoded_values(self) -> list:
        """The return-value pool decoded back to Python values (cached)."""
        if self._values is None:
            self._values = [json.loads(s) for s in self._raw_values]
        return self._values

    def lockset(self, idx: int) -> frozenset:
        if self._locksets is None:
            self._locksets = [frozenset(ls) for ls in self._raw_locksets]
        return self._locksets[idx]

    # -- sweep accessors --------------------------------------------

    def key_run(self, key: MethodKey) -> Optional[KeyRun]:
        """The contiguous call run for ``key``, or None if never executed."""
        m_idx = self.string_index(key.method)
        t_idx = self.string_index(key.thread)
        if m_idx is None or t_idx is None:
            return None
        if self._keydir is None:
            methods = self._cols["k_method"].tolist()
            threads = self._cols["k_thread"].tolist()
            occs = self._cols["k_occ"].tolist()
            offs = self._cols["k_off"].tolist()
            cnts = self._cols["k_cnt"].tolist()
            self._keydir = {
                (methods[i], threads[i], occs[i]): (offs[i], cnts[i])
                for i in range(len(offs))
            }
        run = self._keydir.get((m_idx, t_idx, key.occurrence))
        if run is None:
            return None
        return KeyRun(self, run[0], run[1])

    @property
    def signatures(self) -> list[Optional[str]]:
        """Per-trace failure signature (None for passing traces)."""
        if self._signatures is None:
            sigs: list[Optional[str]] = []
            failed = self._cols["t_failed"]
            modes = self._cols["t_fmode"]
            excs = self._cols["t_fexc"]
            methods = self._cols["t_fmethod"]
            for row in range(self.n_traces):
                if not failed[row]:
                    sigs.append(None)
                    continue
                parts = [self.strings[modes[row]]]
                # Truthiness, not None-ness: FailureInfo.signature drops
                # empty strings too, and parity is to the character.
                exc = self.strings[excs[row]] if excs[row] >= 0 else None
                if exc:
                    parts.append(exc)
                method = (
                    self.strings[methods[row]] if methods[row] >= 0 else None
                )
                if method:
                    parts.append(method)
                sigs.append("/".join(parts))
            self._signatures = sigs
        return self._signatures

    # -- full decode (round-trip / fallback) ------------------------

    def decode(self, row: int) -> ImportedTrace:
        """Rebuild trace ``row`` as a full :class:`ImportedTrace`.

        Lossless with respect to the object model: equal to
        ``trace_from_dict`` over the original payload (call order is
        normalised by ImportedTrace's own ``(start_time, call_id)``
        sort either way).
        """
        if self._trace_calls is None:
            per_trace: list[list[int]] = [[] for _ in range(self.n_traces)]
            for call_row, trace_row in enumerate(self._cols["c_trace"].tolist()):
                per_trace[trace_row].append(call_row)
            self._trace_calls = per_trace
        c = self._cols
        strings = self.strings
        values = self.decoded_values
        calls: list[MethodExecution] = []
        for i in self._trace_calls[row]:
            accesses = []
            aoff, acnt = c["c_aoff"][i], c["c_acnt"][i]
            method = strings[c["c_method"][i]]
            thread = strings[c["c_thread"][i]]
            call_id = c["c_id"][i]
            for a in range(aoff, aoff + acnt):
                accesses.append(
                    Access(
                        obj=strings[c["a_obj"][a]],
                        access_type=AccessType(strings[c["a_type"][a]]),
                        thread=thread,
                        method=method,
                        call_id=call_id,
                        time=c["a_time"][a],
                        lamport=c["a_lam"][a],
                        locks_held=self.lockset(c["a_locks"][a]),
                    )
                )
            calls.append(
                MethodExecution(
                    method=method,
                    thread=thread,
                    call_id=call_id,
                    occurrence=c["c_occ"][i],
                    start_time=c["c_start"][i],
                    end_time=c["c_end"][i],
                    start_lamport=c["c_slam"][i],
                    end_lamport=c["c_elam"][i],
                    parent_call_id=None if c["c_pnull"][i] else c["c_parent"][i],
                    return_value=values[c["c_ret"][i]],
                    exception=None if c["c_exc"][i] < 0 else strings[c["c_exc"][i]],
                    body_skipped=bool(c["c_skip"][i]),
                    accesses=tuple(accesses),
                )
            )
        failure = None
        if c["t_failed"][row]:
            failure = FailureInfo(
                mode=strings[c["t_fmode"][row]],
                exception=None if c["t_fexc"][row] < 0 else strings[c["t_fexc"][row]],
                method=None
                if c["t_fmethod"][row] < 0
                else strings[c["t_fmethod"][row]],
                thread=None
                if c["t_fthread"][row] < 0
                else strings[c["t_fthread"][row]],
                time=c["t_ftime"][row],
            )
        return ImportedTrace(
            program_name=self.program or "",
            seed=c["t_seed"][row],
            end_time=c["t_end"][row],
            failure=failure,
            calls=calls,
            fingerprint=self.fingerprints[row],
        )

    def close(self) -> None:
        for mv in self._cols.values():
            mv.release()
        self._cols = {}
        self._mm.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardTable({self.path.name!r}, traces={self.n_traces}, "
            f"calls={self.n_calls})"
        )
