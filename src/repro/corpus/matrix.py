"""The predicates × traces evaluation matrix — bitset-backed, sharded,
and persisted.

Role
----
Predicate evaluation is the corpus pipeline's hot loop: every analysis
needs ``suite.evaluate(trace)`` for every stored trace, and extractors
re-propose largely the same predicates run after run.  The matrix
guarantees each (predicate, trace) pair is evaluated **at most once
corpus-wide**:

* columns are traces (keyed by content fingerprint), rows are predicates
  (keyed by pid);
* per pid, two Python-int bitsets over the columns — ``evaluated`` (the
  pair has been decided) and ``observed`` (the predicate held) — give
  O(1) memo checks and popcount-cheap precision/recall counting;
* observation windows (what the AC-DAG anchors on) are kept in a side
  table only for observed pairs.

Invariants
----------
* a (predicate, trace) pair is evaluated at most once corpus-wide: a
  decided pair is always answered from the bitsets;
* pids do not encode every predicate parameter (a ``slow[...]``
  threshold moves as the corpus grows), so each row also records the
  predicate's full
  :meth:`~repro.core.predicates.PredicateDef.definition_digest`; a row
  whose definition drifted is dropped and re-evaluated rather than
  served stale;
* the shard holding a pair is a pure function of the trace fingerprint
  (the store's ``shard_id``), so concurrent per-shard evaluation never
  touches shared state.

Persistence format
------------------
One :class:`EvalMatrix` serializes to a single JSON file (format
version 1): column fingerprints + labels, hex-encoded bitsets per pid,
definition digests, and observation windows.  A v2 corpus keeps **one
such file per shard** (``shards/<sid>/evalmatrix.json``) behind a
:class:`ShardedEvalMatrix`, with a top-level index
(``DIR/evalmatrix.json``, format version 2) listing the shards that
hold bitset files.  :func:`migrate_matrix_v1` splits a v1 single-file
matrix into per-shard files preserving every memoized pair.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Optional, Sequence

from ..core.acdag import ACDag
from ..core.extraction import PredicateSuite
from ..core.precedence import PrecedencePolicy
from ..core.predicates import Observation
from ..core.statistical import IncrementalDebugger, PredicateLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.engine import ExecutionEngine
    from .store import TraceStore

MATRIX_VERSION = 1
MATRIX_INDEX_VERSION = 2


def columnar_enabled() -> bool:
    """Default for the batch paths' ``columnar`` switch.

    On unless ``REPRO_COLUMNAR`` is set to an explicit off value — the
    escape hatch (and the differential-parity tests' reference path).
    """
    return os.environ.get("REPRO_COLUMNAR", "1").lower() not in (
        "0",
        "false",
        "no",
        "off",
    )


def _obs_to_list(obs: Observation) -> list:
    return [obs.start, obs.end, obs.start_lamport, obs.end_lamport]


def _obs_from_list(raw: list) -> Observation:
    return Observation(
        start=raw[0], end=raw[1], start_lamport=raw[2], end_lamport=raw[3]
    )


class EvalMatrix:
    """Memoized boolean matrix of predicate evaluations over a corpus."""

    def __init__(self, path: Optional[str | os.PathLike] = None) -> None:
        self.path = Path(path) if path is not None else None
        #: column order: trace fingerprints
        self.traces: list[str] = []
        self._column: dict[str, int] = {}
        #: aligned with ``traces``: did that execution fail?
        self.labels: list[bool] = []
        #: pid -> bitset over columns (bit set = pair decided)
        self.evaluated: dict[str, int] = {}
        #: pid -> bitset over columns (bit set = predicate observed)
        self.observed: dict[str, int] = {}
        #: pid -> definition digest the row was evaluated under
        self.digests: dict[str, str] = {}
        #: fp -> {pid: [start, end, start_lamport, end_lamport]}
        self.observations: dict[str, dict[str, list]] = {}
        #: fresh predicate evaluations / memo hits, this instance
        self.pair_evaluations = 0
        self.pair_hits = 0
        #: single-pass kernel batches the fresh pairs rode in on —
        #: ``pair_evaluations / kernel_calls`` is the mean batch size
        self.kernel_calls = 0
        #: (suite, {pid: digest}) — definition digests are a pure
        #: function of the frozen suite, so computing them per (pid,
        #: trace) pair would dominate warm evaluation
        self._digest_cache: Optional[tuple] = None
        #: cached failed-column mask, invalidated on column allocation
        self._failed_mask: Optional[int] = None
        if self.path is not None and self.path.exists():
            self.load(self.path)

    def __getstate__(self) -> dict:
        # Worker processes hand matrices back by pickle; the digest
        # cache references the (unpicklable-sized) suite and is cheap to
        # rebuild, so it stays behind.
        state = self.__dict__.copy()
        state["_digest_cache"] = None
        return state

    def _digests_for(self, suite: PredicateSuite) -> dict[str, str]:
        """Per-suite digest table, computed once (the suite is frozen)."""
        cache = self._digest_cache
        if cache is None or cache[0] is not suite:
            cache = (
                suite,
                {
                    pid: pred.definition_digest()
                    for pid, pred in suite.defs.items()
                },
            )
            self._digest_cache = cache
        return cache[1]

    # -- columns ---------------------------------------------------------

    def column(self, fingerprint: str, failed: bool) -> int:
        """Index of the trace's column, allocating it if new."""
        idx = self._column.get(fingerprint)
        if idx is None:
            idx = len(self.traces)
            self.traces.append(fingerprint)
            self.labels.append(bool(failed))
            self._column[fingerprint] = idx
            self._failed_mask = None
        return idx

    @property
    def failed_mask(self) -> int:
        mask = self._failed_mask
        if mask is None:
            mask = 0
            for idx, failed in enumerate(self.labels):
                if failed:
                    mask |= 1 << idx
            self._failed_mask = mask
        return mask

    # -- the memoized evaluation loop ------------------------------------

    def log_for(self, suite: PredicateSuite, trace) -> PredicateLog:
        """Evaluate the suite on one trace, through the memo.

        The trace must carry a ``fingerprint`` (corpus-loaded traces do;
        for live traces compute one via
        :func:`repro.sim.serialize.trace_fingerprint` first).  Pairs
        already decided are answered from the bitsets; only new pairs
        call ``PredicateDef.evaluate``.
        """
        fp = getattr(trace, "fingerprint", None)
        if fp is None:
            raise ValueError(
                "trace has no fingerprint; corpus evaluation is memoized "
                "by content address"
            )
        col = self.column(fp, trace.failed)
        mask = 1 << col
        observations: dict[str, Observation] = {}
        row_obs = self.observations.get(fp)
        suite_digests = self._digests_for(suite)
        undecided: list[str] = []
        for pid in suite.defs:
            digest = suite_digests[pid]
            if self.digests.get(pid) != digest:
                # New predicate, or a same-pid predicate whose parameters
                # drifted: invalidate the whole row.
                self._drop_row(pid)
                self.digests[pid] = digest
                undecided.append(pid)
                continue
            if self.evaluated.get(pid, 0) & mask:
                self.pair_hits += 1
                if self.observed.get(pid, 0) & mask:
                    observations[pid] = _obs_from_list(row_obs[pid])
            else:
                undecided.append(pid)
        if undecided:
            # One single-pass kernel evaluation covers every undecided
            # pid; results land straight in the bitset columns.
            fresh = suite.kernel().observations(
                trace,
                only=(
                    None
                    if len(undecided) == len(suite.defs)
                    else frozenset(undecided)
                ),
            )
            self.pair_evaluations += len(undecided)
            self.kernel_calls += 1
            for pid in undecided:
                self.evaluated[pid] = self.evaluated.get(pid, 0) | mask
                obs = fresh.get(pid)
                if obs is not None:
                    self.observed[pid] = self.observed.get(pid, 0) | mask
                    if row_obs is None:
                        row_obs = self.observations.setdefault(fp, {})
                    row_obs[pid] = _obs_to_list(obs)
                    observations[pid] = obs
            if len(undecided) < len(suite.defs):
                # Memo hits and fresh results interleave; restore the
                # suite's definition order (the per-predicate loop's).
                observations = {
                    pid: observations[pid]
                    for pid in suite.defs
                    if pid in observations
                }
        return PredicateLog(
            observations=observations,
            failed=trace.failed,
            seed=trace.seed,
            failure_signature=(
                trace.failure.signature if trace.failure is not None else None
            ),
        )

    def log_for_table(
        self,
        suite: PredicateSuite,
        table,
        entries: Sequence[tuple[str, bool, int, Optional[str]]],
        load_trace: Callable[[str], object],
    ) -> list[PredicateLog]:
        """Batch :meth:`log_for` over one shard's columnar trace table.

        ``entries`` is the shard's trace group in iteration order —
        ``(fingerprint, failed, seed, failure_signature)`` tuples with
        distinct fingerprints — and ``table`` the shard's
        :class:`~repro.corpus.columnar.ShardTable`.  Every
        columnar-capable undecided pid is swept over the whole table in
        one kernel pass; pids without columnar support (and traces
        missing from the table) fall back to the per-trace object path,
        loading the trace lazily via ``load_trace``.  Bitsets,
        observation side table, counters (``pair_hits`` /
        ``pair_evaluations`` / ``kernel_calls``), and the returned logs
        are identical to calling :meth:`log_for` per entry — asserted
        property-style in tests/test_columnar.py.
        """
        kernel = suite.kernel()
        suite_digests = self._digests_for(suite)
        for pid in suite.defs:
            digest = suite_digests[pid]
            if self.digests.get(pid) != digest:
                self._drop_row(pid)
                self.digests[pid] = digest
        cols: list[int] = []
        group_mask = 0
        for fp, failed, _, _ in entries:
            col = self.column(fp, failed)
            cols.append(col)
            group_mask |= 1 << col
        rows = [table.row_of(fp) for fp, _, _, _ in entries]
        table_mask = 0
        row_to_col: dict[int, int] = {}
        fp_by_col: dict[int, str] = {}
        for (fp, _, _, _), col, row in zip(entries, cols, rows):
            fp_by_col[col] = fp
            if row is not None:
                table_mask |= 1 << col
                row_to_col[row] = col
        # Counter parity with the per-trace loop: one hit per already-
        # decided (pid, trace) pair, one fresh evaluation per undecided
        # pair, one kernel call per trace with any undecided pid.
        undecided_by_pid: dict[str, int] = {}
        any_undecided = 0
        for pid in suite.defs:
            decided = self.evaluated.get(pid, 0)
            undecided = group_mask & ~decided
            self.pair_hits += (group_mask & decided).bit_count()
            if undecided:
                undecided_by_pid[pid] = undecided
                any_undecided |= undecided
                self.pair_evaluations += undecided.bit_count()
        self.kernel_calls += any_undecided.bit_count()
        columnar_pids = kernel.columnar_pids
        sweep_pids = frozenset(
            pid
            for pid, bits in undecided_by_pid.items()
            if pid in columnar_pids and bits & table_mask
        )
        sweeps = kernel.sweep(table, only=sweep_pids) if sweep_pids else {}
        # Apply the sweeps: whole-bitset ORs per pid, observations from
        # the sweep's row dict (off-group table rows are skipped).
        fallback: dict[int, list[str]] = {}
        for pid, bits in undecided_by_pid.items():
            if pid in columnar_pids:
                in_table = bits & table_mask
                if in_table:
                    self.evaluated[pid] = self.evaluated.get(pid, 0) | in_table
                    observed_bits = 0
                    for row, obs in sweeps[pid].items():
                        col = row_to_col.get(row)
                        if col is None or not (in_table >> col) & 1:
                            continue
                        observed_bits |= 1 << col
                        self.observations.setdefault(fp_by_col[col], {})[
                            pid
                        ] = _obs_to_list(obs)
                    if observed_bits:
                        self.observed[pid] = (
                            self.observed.get(pid, 0) | observed_bits
                        )
                rest = bits & ~table_mask
            else:
                rest = bits
            while rest:
                low = rest & -rest
                rest ^= low
                fallback.setdefault(low.bit_length() - 1, []).append(pid)
        # Object-path fallback, one kernel call per affected trace.
        if fallback:
            col_to_index = {col: j for j, col in enumerate(cols)}
            for col in sorted(fallback, key=lambda c: col_to_index[c]):
                pids = fallback[col]
                fp = fp_by_col[col]
                trace = load_trace(fp)
                fresh = kernel.observations(trace, only=frozenset(pids))
                mask = 1 << col
                for pid in pids:
                    self.evaluated[pid] = self.evaluated.get(pid, 0) | mask
                    obs = fresh.get(pid)
                    if obs is not None:
                        self.observed[pid] = self.observed.get(pid, 0) | mask
                        self.observations.setdefault(fp, {})[pid] = _obs_to_list(
                            obs
                        )
        # Assemble logs (suite definition order, like log_for's output).
        logs: list[PredicateLog] = []
        for (fp, failed, seed, signature), col in zip(entries, cols):
            mask = 1 << col
            row_obs = self.observations.get(fp, {})
            logs.append(
                PredicateLog(
                    observations={
                        pid: _obs_from_list(row_obs[pid])
                        for pid in suite.defs
                        if self.observed.get(pid, 0) & mask
                    },
                    failed=failed,
                    seed=seed,
                    failure_signature=signature,
                )
            )
        return logs

    def reconstruct_log(
        self,
        suite: PredicateSuite,
        fingerprint: str,
        failed: bool,
        seed: int,
        signature: Optional[str],
    ) -> PredicateLog:
        """The log :meth:`log_for` would return for a fully-decided
        trace, rebuilt from the bitsets without touching the trace or
        the hit/evaluation counters."""
        col = self._column.get(fingerprint)
        if col is None:
            raise ValueError(f"trace {fingerprint!r} has no matrix column")
        mask = 1 << col
        row = self.observations.get(fingerprint, {})
        observations = {
            pid: _obs_from_list(row[pid])
            for pid in suite.defs
            if self.observed.get(pid, 0) & mask
        }
        return PredicateLog(
            observations=observations,
            failed=failed,
            seed=seed,
            failure_signature=signature,
        )

    def _drop_row(self, pid: str) -> None:
        self.evaluated.pop(pid, None)
        self.observed.pop(pid, None)
        self.digests.pop(pid, None)
        for row in self.observations.values():
            row.pop(pid, None)

    # -- compaction ------------------------------------------------------

    def compact(
        self,
        keep_fingerprints: Iterable[str],
        keep_digests: Mapping[str, str],
    ) -> tuple[int, int]:
        """Reclaim rows and columns the corpus no longer needs.

        Drops every row whose pid is absent from ``keep_digests`` or
        whose recorded definition digest differs (a predicate that
        drifted and is now shadowed by its re-evaluated successor), and
        every column whose fingerprint is not in ``keep_fingerprints``
        (a trace evicted from the manifest).  Returns
        ``(dropped_rows, dropped_columns)``.
        """
        dead_rows = [
            pid
            for pid in sorted(set(self.evaluated) | set(self.digests))
            if keep_digests.get(pid) != self.digests.get(pid)
        ]
        for pid in dead_rows:
            self._drop_row(pid)
        # Digest entries without a surviving row are dead weight too
        # (split_matrix copies the full digest table to every shard).
        self.digests = {
            pid: digest
            for pid, digest in self.digests.items()
            if pid in self.evaluated
        }

        keep = set(keep_fingerprints)
        dead_cols = [fp for fp in self.traces if fp not in keep]
        if dead_cols:
            kept = [
                (fp, failed)
                for fp, failed in zip(self.traces, self.labels)
                if fp in keep
            ]
            remap = {
                self._column[fp]: new for new, (fp, _) in enumerate(kept)
            }
            for bitsets in (self.evaluated, self.observed):
                for pid, bits in list(bitsets.items()):
                    packed = 0
                    for old, new in remap.items():
                        if bits >> old & 1:
                            packed |= 1 << new
                    bitsets[pid] = packed
            self.traces = [fp for fp, _ in kept]
            self.labels = [failed for _, failed in kept]
            self._column = {fp: i for i, fp in enumerate(self.traces)}
            self._failed_mask = None
            for fp in dead_cols:
                self.observations.pop(fp, None)
        self.observations = {
            fp: row for fp, row in self.observations.items() if row
        }
        return len(dead_rows), len(dead_cols)

    # -- bitset analytics ------------------------------------------------

    def counts(self, pid: str) -> tuple[int, int]:
        """(true_in_failed, true_in_success) for one pid, by popcount."""
        from ..core.evalkernel import popcount_split

        return popcount_split(self.observed.get(pid, 0), self.failed_mask)

    def sd_counters(
        self, suite: PredicateSuite, fingerprints: Sequence[str]
    ) -> IncrementalDebugger:
        """SD counters over a (distinct-fingerprint) column subset, by
        popcount — what an :class:`IncrementalDebugger` fed those
        traces' logs one by one would hold, derived straight from the
        bitsets.  Every fingerprint must already be fully decided for
        ``suite`` (i.e. have gone through :meth:`log_for`)."""
        from ..core.evalkernel import popcount_split

        mask = 0
        for fp in fingerprints:
            mask |= 1 << self._column[fp]
        fmask = self.failed_mask & mask
        n_failed = fmask.bit_count()
        counts: dict[str, list[int]] = {}
        observed = self.observed
        for pid in suite.defs:
            bits = observed.get(pid, 0) & mask
            if bits:
                in_failed, in_success = popcount_split(bits, fmask)
                counts[pid] = [in_failed, in_success]
        return IncrementalDebugger(
            n_failed=n_failed,
            n_success=len(fingerprints) - n_failed,
            counts=counts,
        )

    @property
    def n_pairs(self) -> int:
        """How many (predicate, trace) pairs are memoized."""
        return sum(bits.bit_count() for bits in self.evaluated.values())

    @property
    def n_pids(self) -> int:
        return len(self.evaluated)

    def coverage(self) -> float:
        """Fraction of the full matrix already decided."""
        total = len(self.traces) * len(self.evaluated)
        return self.n_pairs / total if total else 0.0

    # -- persistence -----------------------------------------------------

    def save(self, path: Optional[str | os.PathLike] = None) -> Path:
        path = Path(path) if path is not None else self.path
        if path is None:
            raise ValueError("EvalMatrix has no path to save to")
        from .store import _write_json

        payload = {
            "version": MATRIX_VERSION,
            "traces": self.traces,
            "labels": [1 if f else 0 for f in self.labels],
            "evaluated": {
                pid: format(bits, "x")
                for pid, bits in sorted(self.evaluated.items())
            },
            "observed": {
                pid: format(bits, "x")
                for pid, bits in sorted(self.observed.items())
            },
            "digests": dict(sorted(self.digests.items())),
            "observations": {
                fp: dict(sorted(row.items()))
                for fp, row in sorted(self.observations.items())
                if row
            },
        }
        _write_json(path, payload, indent=None)
        return path

    def load(self, path: str | os.PathLike) -> None:
        payload = json.loads(Path(path).read_text())
        version = payload.get("version")
        if version != MATRIX_VERSION:
            raise ValueError(
                f"unsupported eval-matrix version {version!r} in {path}"
            )
        self.traces = list(payload["traces"])
        self.labels = [bool(v) for v in payload["labels"]]
        self._column = {fp: i for i, fp in enumerate(self.traces)}
        self._failed_mask = None
        self.evaluated = {
            pid: int(bits, 16) for pid, bits in payload["evaluated"].items()
        }
        self.observed = {
            pid: int(bits, 16) for pid, bits in payload["observed"].items()
        }
        self.digests = dict(payload["digests"])
        self.observations = {
            fp: dict(row) for fp, row in payload["observations"].items()
        }


@dataclass
class ShardEvaluation:
    """One shard's share of an analysis, in mergeable form.

    Produced by :meth:`ShardedEvalMatrix.evaluate_shards` — possibly in
    a worker process, in which case the ``matrix`` carries the shard's
    post-evaluation memo state back to the parent.  ``logs`` are only
    populated on request (the matrix already holds everything a log
    contains, so shipping them across a process boundary would double
    the payload); ``dag`` is this shard's partial AC-DAG when the caller
    asked for per-shard DAG construction.
    """

    shard_id: str
    matrix: EvalMatrix
    #: (fingerprint, log) pairs, in the order the traces were given
    #: (empty unless ``return_logs`` was set)
    logs: list[tuple[str, PredicateLog]] = field(default_factory=list)
    #: per-shard SD counters, merged deterministically by the pipeline
    counters: IncrementalDebugger = field(default_factory=IncrementalDebugger)
    #: partial AC-DAG over this shard's failed logs (None when the shard
    #: has no failed logs or DAG construction was not requested)
    dag: Optional["ACDag"] = None


@dataclass(frozen=True)
class CompactionStats:
    """What ``compact`` reclaimed, summed over shards."""

    dropped_rows: int
    dropped_columns: int
    bytes_before: int
    bytes_after: int

    @property
    def bytes_reclaimed(self) -> int:
        return self.bytes_before - self.bytes_after


class ShardedEvalMatrix:
    """The corpus-wide evaluation memo: one :class:`EvalMatrix` per shard.

    Routing is by trace fingerprint — the shard holding a pair is
    ``store.shard_id(fingerprint)`` — so every memo lookup touches
    exactly one shard file, and shards can be evaluated in parallel
    without sharing state.  Shard matrices load lazily; ``save`` writes
    each loaded shard next to its traces plus a top-level index
    (``DIR/evalmatrix.json``, format version 2) naming every shard that
    holds a bitset file.
    """

    def __init__(self, store: "TraceStore") -> None:
        self.store = store
        self._shards: dict[str, EvalMatrix] = {}

    # -- routing ---------------------------------------------------------

    def shard(self, shard_id: str) -> EvalMatrix:
        """The per-shard matrix, loading its file on first touch."""
        matrix = self._shards.get(shard_id)
        if matrix is None:
            matrix = EvalMatrix(self.store.shard_matrix_path(shard_id))
            self._shards[shard_id] = matrix
        return matrix

    def shard_for(self, fingerprint: str) -> EvalMatrix:
        return self.shard(self.store.shard_id(fingerprint))

    def load_all(self) -> None:
        """Load every shard matrix the index (or the store) knows of."""
        for sid in self.persisted_shard_ids():
            self.shard(sid)

    def persisted_shard_ids(self) -> list[str]:
        """Shards with a bitset file on disk, per the top-level index
        (falling back to probing the store's populated shards).

        Index entries whose shard id does not fit the store's current
        width are skipped: they are leftovers of an interrupted
        ``reshard`` (the other layout's ids), and counting both layouts
        would double every memoized pair."""
        index_path = self.store.matrix_index_path
        sids: set[str] = set()
        if index_path.exists():
            payload = json.loads(index_path.read_text())
            if payload.get("version") == MATRIX_INDEX_VERSION:
                sids.update(
                    sid
                    for sid in payload.get("shards", [])
                    if self.store.is_valid_shard_id(sid)
                )
        for sid in self.store.shard_ids:
            if self.store.shard_matrix_path(sid).exists():
                sids.add(sid)
        return sorted(sids)

    # -- the memoized evaluation loop ------------------------------------

    def log_for(self, suite: PredicateSuite, trace) -> PredicateLog:
        """Evaluate the suite on one trace, through its shard's memo."""
        fp = getattr(trace, "fingerprint", None)
        if fp is None:
            raise ValueError(
                "trace has no fingerprint; corpus evaluation is memoized "
                "by content address"
            )
        return self.shard_for(fp).log_for(suite, trace)

    def evaluate_shards(
        self,
        suite: PredicateSuite,
        traces: Sequence,
        engine: Optional["ExecutionEngine"] = None,
        return_logs: bool = True,
        build_dags: bool = False,
        policy: Optional[PrecedencePolicy] = None,
        columnar: Optional[bool] = None,
    ) -> list[ShardEvaluation]:
        """Evaluate the suite over many traces, one task per shard.

        With an :class:`~repro.exec.engine.ExecutionEngine` whose backend
        has more than one job, shards fan out across the backend (thread
        or forked process workers); each worker mutates only its own
        shard matrix, and the returned matrices replace the parent's
        copies, so process isolation is transparent.  Results come back
        in sorted shard order regardless of completion order, and every
        per-trace evaluation is independent — the outcome is
        bit-identical for any job count.

        ``build_dags`` makes each task also build its shard's partial
        AC-DAG (over the shard's failed logs, candidates = the shard's
        *local* fully-discriminative set); ``ACDag.merge`` over those
        partials equals one global build, because the global FD set is
        exactly the intersection of the shard-local ones.  With
        ``return_logs=False`` the (bulky) per-trace logs stay in the
        worker — the matrix carries the same information, and
        :meth:`reconstruct_log` rebuilds any log from it for free.

        ``columnar`` selects the per-shard evaluation strategy: sweep
        the shard's columnar trace table (:meth:`EvalMatrix.
        log_for_table`) versus the per-trace object path.  The default
        (``None`` → :func:`columnar_enabled`) is on; both strategies
        produce byte-identical matrices, counters, and logs.
        """
        groups: dict[str, list] = {}
        for trace in traces:
            fp = getattr(trace, "fingerprint", None)
            if fp is None:
                raise ValueError(
                    "trace has no fingerprint; corpus evaluation is "
                    "memoized by content address"
                )
            groups.setdefault(self.store.shard_id(fp), []).append(trace)
        return self._evaluate_groups(
            suite, groups, engine, False, return_logs, build_dags, policy,
            columnar,
        )

    def evaluate_fingerprints(
        self,
        suite: PredicateSuite,
        fingerprints: Sequence[str],
        engine: Optional["ExecutionEngine"] = None,
        return_logs: bool = True,
        build_dags: bool = False,
        policy: Optional[PrecedencePolicy] = None,
        columnar: Optional[bool] = None,
    ) -> list[ShardEvaluation]:
        """Like :meth:`evaluate_shards`, but each shard task *loads its
        own traces* from the store — so trace deserialization
        parallelizes along with evaluation.  This is the path a
        pre-frozen suite takes (no global discovery pass needs the
        traces in the parent).  On the columnar path the store's shard
        table substitutes for the loads entirely."""
        groups: dict[str, list[str]] = {}
        for fp in fingerprints:
            groups.setdefault(self.store.shard_id(fp), []).append(fp)
        return self._evaluate_groups(
            suite, groups, engine, True, return_logs, build_dags, policy,
            columnar,
        )

    def _evaluate_groups(
        self,
        suite: PredicateSuite,
        groups: dict[str, list],
        engine: Optional["ExecutionEngine"],
        load: bool,
        return_logs: bool,
        build_dags: bool,
        policy: Optional[PrecedencePolicy],
        columnar: Optional[bool] = None,
    ) -> list[ShardEvaluation]:
        sids = sorted(groups)
        for sid in sids:
            self.shard(sid)  # load before dispatch (workers only read files)
        shards = self._shards
        store = self.store
        failure_pids = suite.failure_pids() if build_dags else []
        use_columnar = columnar_enabled() if columnar is None else bool(columnar)

        def evaluate_shard(sid: str) -> ShardEvaluation:
            evaluation = ShardEvaluation(shard_id=sid, matrix=shards[sid])
            failed_logs: list[PredicateLog] = []
            fingerprints: list[str] = []
            # Columnar strategy: one whole-shard sweep per undecided
            # pid over the shard's trace table (built lazily, keyed by
            # shard content digest).  A shard whose payloads the format
            # cannot represent yields no table and takes the per-trace
            # path below — same results either way.
            table = store.columnar_table(sid) if use_columnar else None
            if table is not None:
                entries: list[tuple] = []
                for item in groups[sid]:
                    if load:
                        entry = store.entries[item]
                        entries.append(
                            (item, entry.failed, entry.seed, entry.signature)
                        )
                    else:
                        entries.append(
                            (
                                item.fingerprint,
                                item.failed,
                                item.seed,
                                item.failure.signature
                                if item.failure is not None
                                else None,
                            )
                        )
                logs = evaluation.matrix.log_for_table(
                    suite, table, entries, load_trace=store.load
                )
                for (fp, _, _, _), log in zip(entries, logs):
                    fingerprints.append(fp)
                    if return_logs:
                        evaluation.logs.append((fp, log))
                    if log.failed:
                        failed_logs.append(log)
            else:
                for item in groups[sid]:
                    trace = store.load(item) if load else item
                    log = evaluation.matrix.log_for(suite, trace)
                    fingerprints.append(trace.fingerprint)
                    if return_logs:
                        evaluation.logs.append((trace.fingerprint, log))
                    if log.failed:
                        failed_logs.append(log)
            # SD counters by popcount over the group's freshly-decided
            # columns — the same counting kernel every layer shares —
            # instead of a per-log observation walk.
            evaluation.counters = evaluation.matrix.sd_counters(
                suite, fingerprints
            )
            if build_dags and failed_logs:
                # The shard's failure pid and FD set match the global
                # ones wherever they overlap: a failure predicate is
                # observed in either all or none of the (same-signature)
                # failed logs, and the global FD set is the intersection
                # of the shard-local ones — which is what lets
                # ACDag.merge reduce these partials exactly.
                counts = evaluation.counters.counts
                failure = next(
                    (p for p in failure_pids if counts.get(p, [0, 0])[0]),
                    None,
                )
                if failure is not None:
                    local_fd = [
                        pid
                        for pid in evaluation.counters.fully_discriminative_pids()
                        if pid not in set(failure_pids)
                    ]
                    evaluation.dag = ACDag.build(
                        defs=dict(suite.defs),
                        failed_logs=failed_logs,
                        failure=failure,
                        policy=policy,
                        candidate_pids=local_fd,
                    )
            return evaluation

        parallel = (
            engine is not None
            and engine.backend.jobs > 1
            and len(sids) > 1
        )
        if parallel:
            results = engine.dispatch(evaluate_shard, sids)
        else:
            results = [evaluate_shard(sid) for sid in sids]
        for evaluation in results:
            # A process backend hands back a mutated copy; adopt it.
            self._shards[evaluation.shard_id] = evaluation.matrix
        return sorted(results, key=lambda ev: ev.shard_id)

    def reconstruct_log(
        self,
        suite: PredicateSuite,
        fingerprint: str,
        failed: bool,
        seed: int,
        signature: Optional[str],
    ) -> PredicateLog:
        """Rebuild the :class:`PredicateLog` of a decided trace straight
        from the bitsets — no trace load, no evaluation, no counter
        churn.  Only valid once every (suite pid, trace) pair is decided
        (i.e. after the trace went through :meth:`log_for`)."""
        return self.shard_for(fingerprint).reconstruct_log(
            suite, fingerprint, failed, seed, signature
        )

    def logs_for(
        self,
        suite: PredicateSuite,
        traces: Sequence,
        engine: Optional["ExecutionEngine"] = None,
    ) -> list[PredicateLog]:
        """Like :meth:`evaluate_shards` but flattened back to the input
        trace order — the drop-in replacement for serial evaluation.

        Logs are rebuilt from the bitsets rather than shipped back from
        the workers (the matrix already crosses the process boundary;
        the logs would double the payload)."""
        traces = list(traces)
        self.evaluate_shards(suite, traces, engine=engine, return_logs=False)
        return [
            self.reconstruct_log(
                suite,
                t.fingerprint,
                failed=t.failed,
                seed=t.seed,
                signature=(
                    t.failure.signature if t.failure is not None else None
                ),
            )
            for t in traces
        ]

    # -- aggregate analytics ---------------------------------------------

    @property
    def pair_evaluations(self) -> int:
        """Fresh evaluations performed through this instance."""
        return sum(m.pair_evaluations for m in self._shards.values())

    @property
    def pair_hits(self) -> int:
        """Memo hits answered through this instance."""
        return sum(m.pair_hits for m in self._shards.values())

    @property
    def kernel_calls(self) -> int:
        """Single-pass kernel batches behind the fresh evaluations."""
        return sum(m.kernel_calls for m in self._shards.values())

    @property
    def n_pairs(self) -> int:
        self.load_all()
        return sum(m.n_pairs for m in self._shards.values())

    @property
    def n_pids(self) -> int:
        self.load_all()
        pids: set[str] = set()
        for m in self._shards.values():
            pids.update(m.evaluated)
        return len(pids)

    @property
    def n_traces(self) -> int:
        self.load_all()
        return sum(len(m.traces) for m in self._shards.values())

    def coverage(self) -> float:
        """Fraction of the full (pids × traces) matrix already decided."""
        total = self.n_traces * self.n_pids
        return self.n_pairs / total if total else 0.0

    def counts(self, pid: str) -> tuple[int, int]:
        """(true_in_failed, true_in_success) summed over all shards."""
        self.load_all()
        in_failed = in_success = 0
        for m in self._shards.values():
            f, s = m.counts(pid)
            in_failed += f
            in_success += s
        return in_failed, in_success

    # -- persistence -----------------------------------------------------

    def save(self) -> None:
        """Write every loaded, non-empty shard matrix plus the top-level
        index (the union of previously-indexed and just-saved shards).
        A loaded shard whose every column was reclaimed loses its file
        and its index entry — evicted traces must not resurrect."""
        from .store import _write_json

        saved = set(self.persisted_shard_ids())
        for sid, matrix in sorted(self._shards.items()):
            if matrix.traces:
                matrix.save()
                saved.add(sid)
            else:
                self.store.shard_matrix_path(sid).unlink(missing_ok=True)
                saved.discard(sid)
        _write_json(
            self.store.matrix_index_path,
            {"version": MATRIX_INDEX_VERSION, "shards": sorted(saved)},
            indent=None,
        )

    # -- compaction ------------------------------------------------------

    def compact(self, keep_digests: Mapping[str, str]) -> CompactionStats:
        """Reclaim shadowed rows and evicted columns, shard by shard.

        ``keep_digests`` maps each live pid to its current definition
        digest (from the frozen suite); live columns are the store's
        manifest entries.  Per-shard files are rewritten in place and
        the index refreshed; returns byte-level before/after totals.
        """
        self.load_all()
        rows = cols = before = after = 0
        for sid in sorted(self._shards):
            matrix = self._shards[sid]
            path = self.store.shard_matrix_path(sid)
            if path.exists():
                before += path.stat().st_size
            r, c = matrix.compact(
                set(self.store.shard_entries(sid)), keep_digests
            )
            rows += r
            cols += c
        self.save()
        for sid in sorted(self._shards):
            path = self.store.shard_matrix_path(sid)
            if path.exists():
                after += path.stat().st_size
        return CompactionStats(
            dropped_rows=rows,
            dropped_columns=cols,
            bytes_before=before,
            bytes_after=after,
        )


# -- resharding and migration helpers ------------------------------------


def split_matrix(
    matrix: EvalMatrix, shard_id: Callable[[str], str]
) -> dict[str, EvalMatrix]:
    """Split one matrix into per-shard matrices, preserving every
    memoized pair (columns keep their relative order)."""
    shards: dict[str, EvalMatrix] = {}
    columns: dict[str, tuple[EvalMatrix, int]] = {}
    for idx, fp in enumerate(matrix.traces):
        shard = shards.setdefault(shard_id(fp), EvalMatrix())
        columns[fp] = (shard, shard.column(fp, matrix.labels[idx]))
    for source, target in (("evaluated", "evaluated"), ("observed", "observed")):
        for pid, bits in getattr(matrix, source).items():
            for idx, fp in enumerate(matrix.traces):
                if bits >> idx & 1:
                    shard, col = columns[fp]
                    bitsets = getattr(shard, target)
                    bitsets[pid] = bitsets.get(pid, 0) | 1 << col
    for shard in shards.values():
        shard.digests = dict(matrix.digests)
    for fp, row in matrix.observations.items():
        shard, _ = columns[fp]
        shard.observations[fp] = {pid: list(obs) for pid, obs in row.items()}
    return shards


def merge_matrices(matrices: Iterable[EvalMatrix]) -> EvalMatrix:
    """The inverse of :func:`split_matrix`: fold per-shard matrices into
    one (columns concatenated in the given order)."""
    merged = EvalMatrix()
    for matrix in matrices:
        offset: dict[int, int] = {}
        for idx, fp in enumerate(matrix.traces):
            offset[idx] = merged.column(fp, matrix.labels[idx])
        for source in ("evaluated", "observed"):
            merged_bits = getattr(merged, source)
            for pid, bits in getattr(matrix, source).items():
                packed = merged_bits.get(pid, 0)
                for idx, col in offset.items():
                    if bits >> idx & 1:
                        packed |= 1 << col
                merged_bits[pid] = packed
        merged.digests.update(matrix.digests)
        for fp, row in matrix.observations.items():
            merged.observations[fp] = {
                pid: list(obs) for pid, obs in row.items()
            }
    return merged


def migrate_matrix_v1(
    path: Path,
    shard_id: Callable[[str], str],
    shard_path: Callable[[str], Path],
) -> None:
    """Split a v1 single-file matrix into per-shard files plus the v2
    index at ``path``.  Skips silently if ``path`` already holds a v2
    index (a resumed migration)."""
    payload = json.loads(path.read_text())
    if payload.get("version") == MATRIX_INDEX_VERSION:
        return
    from .store import _write_json

    matrix = EvalMatrix()
    matrix.load(path)
    shards = split_matrix(matrix, shard_id)
    for sid, shard in sorted(shards.items()):
        shard.save(shard_path(sid))
    _write_json(
        path,
        {"version": MATRIX_INDEX_VERSION, "shards": sorted(shards)},
        indent=None,
    )
