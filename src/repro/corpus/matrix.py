"""The predicates × traces evaluation matrix, bitset-backed and persisted.

Predicate evaluation is the corpus pipeline's hot loop: every analysis
needs ``suite.evaluate(trace)`` for every stored trace, and extractors
re-propose largely the same predicates run after run.  The matrix
guarantees each (predicate, trace) pair is evaluated **exactly once**
across the corpus's lifetime:

* columns are traces (keyed by content fingerprint), rows are predicates
  (keyed by pid);
* per pid, two Python-int bitsets over the columns — ``evaluated`` (the
  pair has been decided) and ``observed`` (the predicate held) — give
  O(1) memo checks and popcount-cheap precision/recall counting;
* observation windows (what the AC-DAG anchors on) are kept in a side
  table only for observed pairs;
* the whole structure round-trips through ``evalmatrix.json`` next to
  the trace store, so a warm restart re-evaluates nothing.

Pids do not encode every predicate parameter (a ``slow[...]`` threshold
moves as the corpus grows), so each row also records the predicate's
full :meth:`~repro.core.predicates.PredicateDef.definition_digest`; a
row whose definition drifted is dropped and re-evaluated rather than
served stale.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional

from ..core.extraction import PredicateSuite
from ..core.predicates import Observation
from ..core.statistical import PredicateLog

MATRIX_VERSION = 1


def _obs_to_list(obs: Observation) -> list:
    return [obs.start, obs.end, obs.start_lamport, obs.end_lamport]


def _obs_from_list(raw: list) -> Observation:
    return Observation(
        start=raw[0], end=raw[1], start_lamport=raw[2], end_lamport=raw[3]
    )


class EvalMatrix:
    """Memoized boolean matrix of predicate evaluations over a corpus."""

    def __init__(self, path: Optional[str | os.PathLike] = None) -> None:
        self.path = Path(path) if path is not None else None
        #: column order: trace fingerprints
        self.traces: list[str] = []
        self._column: dict[str, int] = {}
        #: aligned with ``traces``: did that execution fail?
        self.labels: list[bool] = []
        #: pid -> bitset over columns (bit set = pair decided)
        self.evaluated: dict[str, int] = {}
        #: pid -> bitset over columns (bit set = predicate observed)
        self.observed: dict[str, int] = {}
        #: pid -> definition digest the row was evaluated under
        self.digests: dict[str, str] = {}
        #: fp -> {pid: [start, end, start_lamport, end_lamport]}
        self.observations: dict[str, dict[str, list]] = {}
        #: fresh predicate evaluations / memo hits, this instance
        self.pair_evaluations = 0
        self.pair_hits = 0
        if self.path is not None and self.path.exists():
            self.load(self.path)

    # -- columns ---------------------------------------------------------

    def column(self, fingerprint: str, failed: bool) -> int:
        """Index of the trace's column, allocating it if new."""
        idx = self._column.get(fingerprint)
        if idx is None:
            idx = len(self.traces)
            self.traces.append(fingerprint)
            self.labels.append(bool(failed))
            self._column[fingerprint] = idx
        return idx

    @property
    def failed_mask(self) -> int:
        mask = 0
        for idx, failed in enumerate(self.labels):
            if failed:
                mask |= 1 << idx
        return mask

    # -- the memoized evaluation loop ------------------------------------

    def log_for(self, suite: PredicateSuite, trace) -> PredicateLog:
        """Evaluate the suite on one trace, through the memo.

        The trace must carry a ``fingerprint`` (corpus-loaded traces do;
        for live traces compute one via
        :func:`repro.sim.serialize.trace_fingerprint` first).  Pairs
        already decided are answered from the bitsets; only new pairs
        call ``PredicateDef.evaluate``.
        """
        fp = getattr(trace, "fingerprint", None)
        if fp is None:
            raise ValueError(
                "trace has no fingerprint; corpus evaluation is memoized "
                "by content address"
            )
        col = self.column(fp, trace.failed)
        mask = 1 << col
        observations: dict[str, Observation] = {}
        row_obs = self.observations.get(fp)
        for pid, pred in suite.defs.items():
            digest = pred.definition_digest()
            if self.digests.get(pid) != digest:
                # New predicate, or a same-pid predicate whose parameters
                # drifted: invalidate the whole row.
                self._drop_row(pid)
                self.digests[pid] = digest
            if self.evaluated.get(pid, 0) & mask:
                self.pair_hits += 1
                if self.observed.get(pid, 0) & mask:
                    observations[pid] = _obs_from_list(row_obs[pid])
                continue
            obs = pred.evaluate(trace)
            self.pair_evaluations += 1
            self.evaluated[pid] = self.evaluated.get(pid, 0) | mask
            if obs is not None:
                self.observed[pid] = self.observed.get(pid, 0) | mask
                if row_obs is None:
                    row_obs = self.observations.setdefault(fp, {})
                row_obs[pid] = _obs_to_list(obs)
                observations[pid] = obs
        return PredicateLog(
            observations=observations,
            failed=trace.failed,
            seed=trace.seed,
            failure_signature=(
                trace.failure.signature if trace.failure is not None else None
            ),
        )

    def _drop_row(self, pid: str) -> None:
        self.evaluated.pop(pid, None)
        self.observed.pop(pid, None)
        self.digests.pop(pid, None)
        for row in self.observations.values():
            row.pop(pid, None)

    # -- bitset analytics ------------------------------------------------

    def counts(self, pid: str) -> tuple[int, int]:
        """(true_in_failed, true_in_success) for one pid, by popcount."""
        bits = self.observed.get(pid, 0)
        fmask = self.failed_mask
        return (bits & fmask).bit_count(), (bits & ~fmask).bit_count()

    @property
    def n_pairs(self) -> int:
        """How many (predicate, trace) pairs are memoized."""
        return sum(bits.bit_count() for bits in self.evaluated.values())

    @property
    def n_pids(self) -> int:
        return len(self.evaluated)

    def coverage(self) -> float:
        """Fraction of the full matrix already decided."""
        total = len(self.traces) * len(self.evaluated)
        return self.n_pairs / total if total else 0.0

    # -- persistence -----------------------------------------------------

    def save(self, path: Optional[str | os.PathLike] = None) -> Path:
        path = Path(path) if path is not None else self.path
        if path is None:
            raise ValueError("EvalMatrix has no path to save to")
        payload = {
            "version": MATRIX_VERSION,
            "traces": self.traces,
            "labels": [1 if f else 0 for f in self.labels],
            "evaluated": {
                pid: format(bits, "x")
                for pid, bits in sorted(self.evaluated.items())
            },
            "observed": {
                pid: format(bits, "x")
                for pid, bits in sorted(self.observed.items())
            },
            "digests": dict(sorted(self.digests.items())),
            "observations": {
                fp: dict(sorted(row.items()))
                for fp, row in sorted(self.observations.items())
                if row
            },
        }
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(path)
        return path

    def load(self, path: str | os.PathLike) -> None:
        payload = json.loads(Path(path).read_text())
        version = payload.get("version")
        if version != MATRIX_VERSION:
            raise ValueError(
                f"unsupported eval-matrix version {version!r} in {path}"
            )
        self.traces = list(payload["traces"])
        self.labels = [bool(v) for v in payload["labels"]]
        self._column = {fp: i for i, fp in enumerate(self.traces)}
        self.evaluated = {
            pid: int(bits, 16) for pid, bits in payload["evaluated"].items()
        }
        self.observed = {
            pid: int(bits, 16) for pid, bits in payload["observed"].items()
        }
        self.digests = dict(payload["digests"])
        self.observations = {
            fp: dict(row) for fp, row in payload["observations"].items()
        }
