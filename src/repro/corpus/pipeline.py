"""Incremental, shard-parallel analysis over a trace corpus.

Role
----
This is the incremental-view-maintenance half of the corpus subsystem
(after Berkholz et al., *Answering FO+MOD queries under updates*): the
discriminative-predicate set and the AC-DAG are *views* over the stored
logs, and log insertion patches them instead of recomputing.

Lifecycle::

    pipeline = IncrementalPipeline(store, program=workload.program)
    pipeline.bootstrap(engine=...)  # freeze suite; evaluate shard-parallel
    pipeline.ingest(new_trace)      # store + patch counts, FD set, AC-DAG
    pipeline.rebuild()              # the from-scratch fallback (tests assert
                                    # it equals the patched state)

Shard-parallel analyze
----------------------
``bootstrap`` accepts an :class:`~repro.exec.engine.ExecutionEngine`:
predicate evaluation fans out one task per corpus shard across the
engine's backend (thread or forked process workers), each task working
its own shard of the :class:`~repro.corpus.matrix.ShardedEvalMatrix`.
The reduction is deterministic whatever the schedule:

* per-shard **SD counters** (:class:`IncrementalDebugger`) merge by
  plain summation, in sorted shard order;
* **logs** reassemble into the canonical corpus order (successes then
  failures, fingerprint-sorted) — identical to a serial walk;
* per-shard **AC-DAGs** (each built over its shard's failed logs) merge
  by edge intersection with summed support counters
  (:meth:`~repro.core.acdag.ACDag.merge`) — the same patches a serial
  ingest of those logs would have applied.

Invariants
----------
* the predicate suite is frozen at bootstrap — extractors calibrate once
  over the then-current corpus, globally (never per shard: thresholds
  such as duration envelopes depend on the whole corpus, and the frozen
  suite must not depend on the shard layout).  Only the *propose* half
  of discovery (per-trace summarization, see
  :mod:`repro.core.evalkernel`) fans out across the engine, and its
  merged summary is identical for any job count;
* the analysis state after ``bootstrap(engine=N-jobs)`` is bit-identical
  to ``bootstrap()`` serial — tests assert report equality for 1 vs 8
  jobs;
* ingested logs are evaluated against the frozen suite (each pair at
  most once corpus-wide, via the eval matrix) and can only *shrink* the
  fully-discriminative set and the DAG, which is what makes pure
  patching sound.  Re-discovering predicates over a grown corpus is a
  new bootstrap.

Persistence: ``save`` writes the store manifests and the per-shard
matrix files (plus its index); nothing else is persisted — the DAG and
counters rebuild from the matrix for free on the next bootstrap.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Optional, Sequence, TYPE_CHECKING

from ..core.acdag import ACDag
from ..core.extraction import Extractor, PredicateSuite
from ..core.precedence import PrecedencePolicy, default_policy
from ..core.statistical import (
    IncrementalDebugger,
    PredicateLog,
    StatisticalDebugger,
)
from ..sim.program import Program
from .matrix import CompactionStats, ShardedEvalMatrix
from .store import CorpusError, TraceStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.events import Event, EventBus
    from ..exec.engine import ExecutionEngine


@dataclass
class IngestResult:
    """What one ingestion did to the corpus and its maintained views."""

    fingerprint: str
    added: bool
    failed: bool
    #: trace stored but excluded from analysis (off-signature failure)
    skipped: bool = False
    #: pids that left the fully-discriminative set / the DAG
    removed_pids: frozenset[str] = frozenset()


@dataclass
class BatchIngestResult:
    """What one batched ingestion did: per-trace outcomes (submission
    order) plus the aggregate view damage.

    Per-trace ``removed_pids`` attribution is finer in sequential
    ingestion (each trace sees the views exactly as it found them);
    a batch defers the fully-set diff and the final DAG restriction to
    the end, so cross-trace casualties surface only in the aggregate
    ``removed_pids`` here.  The *final* maintained state is identical
    either way (asserted in tests).
    """

    results: list[IngestResult]
    #: union of every pid that left the FD set / the DAG in this batch
    removed_pids: frozenset[str] = frozenset()

    @property
    def n_added(self) -> int:
        return sum(1 for r in self.results if r.added)


class IncrementalPipeline:
    """Maintains suite evaluation, SD counts, and the AC-DAG over a store."""

    def __init__(
        self,
        store: TraceStore,
        program: Optional[Program] = None,
        matrix: Optional[ShardedEvalMatrix] = None,
        extractors: Optional[Sequence[Extractor]] = None,
        policy: Optional[PrecedencePolicy] = None,
        suite: Optional[PredicateSuite] = None,
        bus: Optional["EventBus"] = None,
    ) -> None:
        self.store = store
        self.program = program
        self.matrix = matrix if matrix is not None else store.eval_matrix()
        self.extractors = extractors
        self.policy = policy or default_policy()
        #: observer seam (see :mod:`repro.api.events`); never affects
        #: results
        self.bus = bus
        # frozen at bootstrap (or injected pre-frozen: extractor
        # discovery is skipped and shard tasks load their own traces,
        # the steady-state freeze-once / re-analyze-many regime).  Only
        # an *injected* suite survives re-bootstrap: a suite frozen by a
        # previous bootstrap() is re-discovered, because its envelopes
        # and baselines were calibrated on the then-current corpus.
        self._injected_suite: Optional[PredicateSuite] = suite
        self.suite: Optional[PredicateSuite] = suite
        self.failure_pid: Optional[str] = None
        self.signature: Optional[str] = None
        self.debugger = IncrementalDebugger()
        self.fully: list[str] = []
        self.dag: Optional[ACDag] = None
        self._bootstrapped = False
        self._logs: Optional[list[PredicateLog]] = []
        self._log_fps: list[str] = []

    @property
    def bootstrapped(self) -> bool:
        return self._bootstrapped

    def _emit(self, event: "Event") -> None:
        if self.bus is not None:
            self.bus.emit(event)

    def _span(self, name: str):
        """A timed phase span on the pipeline's bus (no-op without one)."""
        if self.bus is not None:
            return self.bus.span(name)
        return nullcontext()

    @property
    def logs(self) -> list[PredicateLog]:
        """The analysis logs, in canonical corpus order.

        Shard tasks do not ship logs back to the parent (the matrix
        already holds every observation); the list materializes from
        the bitsets on first access and is then owned by the pipeline
        (``ingest`` appends to it).
        """
        if self._logs is None:
            entries = self.store.entries
            self._logs = [
                self.matrix.reconstruct_log(
                    self.suite,
                    fp,
                    failed=entries[fp].failed,
                    seed=entries[fp].seed,
                    signature=entries[fp].signature,
                )
                for fp in self._log_fps
            ]
        return self._logs

    # -- bootstrap -------------------------------------------------------

    def bootstrap(self, engine: Optional["ExecutionEngine"] = None) -> None:
        """Freeze the predicate suite over the current corpus and build
        every maintained view.

        All evaluation goes through the sharded matrix, so a warm
        restart performs zero fresh evaluations; with an ``engine``,
        evaluation and DAG construction fan out one task per shard and
        merge deterministically (identical state for any job count).
        """
        from ..api.events import CorpusLoaded, LogsEvaluated, SuiteFrozen

        if not any(e.failed for e in self.store.entries.values()):
            raise CorpusError("corpus has no failed traces to analyze")
        if all(e.failed for e in self.store.entries.values()):
            raise CorpusError("corpus has no successful traces to analyze")
        self._emit(
            CorpusLoaded(
                n_traces=len(self.store),
                n_pass=self.store.n_pass,
                n_fail=self.store.n_fail,
            )
        )
        self.signature = self.store.dominant_failure_signature()
        self.suite = self._injected_suite
        suite_source = "injected" if self.suite is not None else "discovered"
        if self.suite is None and self.extractors is None:
            # Warm restart: a suite frozen over *exactly this corpus
            # content* (same digest, same attached program) is as good
            # as rediscovery — extractor calibration saw the same
            # traces — so the whole discovery pass is skipped.
            persisted = self.store.load_suite(
                program=self.program.name if self.program else None
            )
            if persisted is not None:
                self.suite = persisted
                suite_source = "persisted"
        if self.suite is None:
            # Discovery calibration is global by construction (duration
            # envelopes and order baselines span the whole corpus), so
            # the parent loads every trace — but the propose phase
            # (per-trace summarization) fans out across the engine's
            # backend, and the serial calibrate over the merged summary
            # freezes a byte-identical suite for any job count.
            corpus = self.store.labeled_corpus().restrict_failures(
                self.signature
            )
            with self._span("discovery"):
                self.suite = PredicateSuite.discover(
                    corpus.successes,
                    corpus.failures,
                    extractors=self.extractors,
                    program=self.program,
                    engine=engine,
                )
            if self.extractors is None:
                # Memoize the freeze for the next analyze over this
                # exact content (custom extractor stacks are not
                # serializable, so only the default catalogue persists).
                self.store.save_suite(
                    self.suite,
                    signature=self.signature,
                    program=self.program.name if self.program else None,
                )
            fingerprints = [
                t.fingerprint for t in corpus.successes + corpus.failures
            ]
            self._emit(
                SuiteFrozen(n_predicates=len(self.suite), source=suite_source)
            )
            with self._span("evaluate"):
                evaluations = self.matrix.evaluate_shards(
                    self.suite,
                    corpus.successes + corpus.failures,
                    engine=engine,
                    return_logs=False,
                    build_dags=True,
                    policy=self.policy,
                )
        else:
            # Pre-frozen suite: nothing global needs the trace bodies,
            # so shard tasks load their own traces — deserialization
            # parallelizes along with evaluation and DAG construction.
            # Same canonical order as a labeled_corpus walk: successes
            # then on-signature failures, each fingerprint-sorted.
            ordered = sorted(self.store.entries.items())
            fingerprints = [
                fp for fp, e in ordered if not e.failed
            ] + [
                fp
                for fp, e in ordered
                if e.failed and e.signature == self.signature
            ]
            self._emit(
                SuiteFrozen(n_predicates=len(self.suite), source=suite_source)
            )
            with self._span("evaluate"):
                evaluations = self.matrix.evaluate_fingerprints(
                    self.suite,
                    fingerprints,
                    engine=engine,
                    return_logs=False,
                    build_dags=True,
                    policy=self.policy,
                )
        # Logs stay in the workers; the canonical-order list (successes
        # then failures, fingerprint-sorted — independent of how shards
        # were scheduled) materializes lazily from the matrix bitsets.
        self._log_fps = fingerprints
        self._logs = None
        self._emit(
            LogsEvaluated(
                n_logs=len(fingerprints),
                fresh=self.matrix.pair_evaluations,
                memoized=self.matrix.pair_hits,
                kernel_calls=self.matrix.kernel_calls,
            )
        )
        with self._span("dag-build"):
            self.debugger = IncrementalDebugger()
            for evaluation in evaluations:  # sorted shard order
                self.debugger.merge(evaluation.counters)
            failure_pids = [
                pid
                for pid in self.suite.failure_pids()
                if self.debugger.counts.get(pid, (0, 0))[0]
            ]
            if not failure_pids:
                raise CorpusError("no failure predicate was extracted")
            self.failure_pid = failure_pids[0]
            self.fully = self._derive_fully()
            dags = [ev.dag for ev in evaluations if ev.dag is not None]
            if not dags:
                raise CorpusError("corpus has no failed traces to analyze")
            # Each shard built its partial DAG over its own failed logs;
            # the merge (edge intersection, summed supports, re-applied
            # ancestors-of-F filter) equals one build over all failed logs —
            # after restricting to the *global* FD set, because a shard
            # holding only successes contributes no partial DAG yet can
            # still break another shard's local candidates' precision.
            self.dag = ACDag.merge(dags)
            self.dag.restrict_to(set(self.fully) | {self.failure_pid})
        self._bootstrapped = True
        from ..api.events import DagBuilt

        self._emit(
            DagBuilt(
                n_nodes=self.dag.graph.number_of_nodes(),
                n_edges=self.dag.graph.number_of_edges(),
            )
        )

    def _derive_fully(self) -> list[str]:
        failure_pids = set(self.suite.failure_pids())
        return [
            pid
            for pid in self.debugger.fully_discriminative_pids()
            if pid not in failure_pids
        ]

    # -- ingestion -------------------------------------------------------

    def ingest(
        self, trace, schedule_signature: Optional[str] = None
    ) -> IngestResult:
        """Store one new trace and patch every maintained view.

        Duplicates (same content fingerprint) change nothing.  Failed
        traces with a different failure signature are stored but excluded
        from this pipeline's views, exactly as
        :meth:`~repro.harness.runner.LabeledCorpus.restrict_failures`
        excludes them from a batch session.  ``schedule_signature``
        stamps interleaving provenance into the manifest row (see
        :meth:`~repro.corpus.store.TraceStore.ingest`).
        """
        if not self.bootstrapped:
            raise CorpusError("bootstrap() the pipeline before ingesting")
        with self._span("ingest"):
            return self._ingest(trace, schedule_signature)

    def _ingest(
        self, trace, schedule_signature: Optional[str] = None
    ) -> IngestResult:
        fp, added = self.store.ingest(
            trace, schedule_signature=schedule_signature
        )
        failed = trace.failed
        if not added:
            return IngestResult(fingerprint=fp, added=False, failed=failed)
        signature = (
            trace.failure.signature if trace.failure is not None else None
        )
        if failed and signature != self.signature:
            return IngestResult(
                fingerprint=fp, added=True, failed=True, skipped=True
            )
        if getattr(trace, "fingerprint", None) is None:
            # live ExecutionTrace: attach the content address the matrix
            # memoizes under (identical to the store's by construction)
            trace = self.store.load(fp)
        log = self.matrix.log_for(self.suite, trace)
        self.logs.append(log)
        self.debugger.add(log)
        new_fully = self._derive_fully()
        removed = set(self.fully) - set(new_fully)
        self.fully = new_fully
        if failed:
            # Recall casualties are exactly the pids the new log does not
            # observe; update_failed_log drops them while advancing the
            # per-edge support counters.
            removed |= self.dag.update_failed_log(log, policy=self.policy)
        elif removed:
            # A success can only break precision; edges are untouched.
            removed |= self.dag.restrict_to(
                set(new_fully) | {self.failure_pid}
            )
        result = IngestResult(
            fingerprint=fp,
            added=True,
            failed=failed,
            removed_pids=frozenset(removed),
        )
        if self.bus is not None:
            from ..api.events import DagPatched

            self._emit(
                DagPatched(fingerprint=fp, removed_pids=result.removed_pids)
            )
        return result

    # -- batched ingestion -----------------------------------------------

    def ingest_batch(
        self,
        traces: Sequence,
        schedule_signatures: Optional[Sequence[Optional[str]]] = None,
        save: bool = False,
    ) -> BatchIngestResult:
        """Ingest one wave of traces with a single view update.

        Every trace is stored (and deduplicated / signature-filtered)
        exactly as :meth:`ingest` would, but the maintained views are
        patched once for the whole batch: all logs join the SD counters
        first, the fully-discriminative set is re-derived once, each
        failed log patches the AC-DAG in submission order, and one final
        restriction drops whatever left the FD set.  With ``save=True``
        the store manifests and matrix shards are written once at the
        end — one fsync per wave instead of per trace.

        The final pipeline state is byte-identical to calling
        :meth:`ingest` per trace in the same order (asserted in tests);
        only per-trace ``removed_pids`` attribution is coarser — see
        :class:`BatchIngestResult`.
        """
        if not self.bootstrapped:
            raise CorpusError("bootstrap() the pipeline before ingesting")
        traces = list(traces)
        if schedule_signatures is None:
            schedule_signatures = [None] * len(traces)
        else:
            schedule_signatures = list(schedule_signatures)
            if len(schedule_signatures) != len(traces):
                raise ValueError(
                    f"{len(traces)} traces but "
                    f"{len(schedule_signatures)} schedule signatures"
                )
        with self._span("ingest-batch"):
            batch = self._ingest_batch(traces, schedule_signatures)
        if save:
            self.save()
        return batch

    def _ingest_batch(
        self, traces: Sequence, schedule_signatures: Sequence[Optional[str]]
    ) -> BatchIngestResult:
        results: list[Optional[IngestResult]] = [None] * len(traces)
        analyzable: list[tuple[int, str, object, bool]] = []
        for slot, (trace, sched_sig) in enumerate(
            zip(traces, schedule_signatures)
        ):
            fp, added = self.store.ingest(
                trace, schedule_signature=sched_sig
            )
            failed = trace.failed
            if not added:
                results[slot] = IngestResult(
                    fingerprint=fp, added=False, failed=failed
                )
                continue
            signature = (
                trace.failure.signature
                if trace.failure is not None
                else None
            )
            if failed and signature != self.signature:
                results[slot] = IngestResult(
                    fingerprint=fp, added=True, failed=True, skipped=True
                )
                continue
            if getattr(trace, "fingerprint", None) is None:
                trace = self.store.load(fp)
            analyzable.append((slot, fp, trace, failed))
        if not analyzable:
            return BatchIngestResult(
                results=results  # type: ignore[arg-type]
            )

        # One counter update for the whole wave...
        batch_logs: list[PredicateLog] = []
        for slot, fp, trace, failed in analyzable:
            log = self.matrix.log_for(self.suite, trace)
            self.logs.append(log)
            self.debugger.add(log)
            batch_logs.append(log)
        # ...one FD-set derivation...
        new_fully = self._derive_fully()
        removed = set(self.fully) - set(new_fully)
        self.fully = new_fully
        # ...each failed log patches the DAG in submission order...
        per_slot: dict[int, frozenset[str]] = {}
        for (slot, fp, trace, failed), log in zip(analyzable, batch_logs):
            if failed:
                dropped = self.dag.update_failed_log(log, policy=self.policy)
                per_slot[slot] = frozenset(dropped)
                removed |= dropped
        # ...and one restriction to the batch-final FD set.
        removed |= self.dag.restrict_to(set(new_fully) | {self.failure_pid})
        for slot, fp, trace, failed in analyzable:
            results[slot] = IngestResult(
                fingerprint=fp,
                added=True,
                failed=failed,
                removed_pids=per_slot.get(slot, frozenset()),
            )
        if self.bus is not None:
            from ..api.events import DagPatched

            for slot, fp, trace, failed in analyzable:
                self._emit(
                    DagPatched(
                        fingerprint=fp,
                        removed_pids=per_slot.get(slot, frozenset()),
                    )
                )
        return BatchIngestResult(
            results=results,  # type: ignore[arg-type]
            removed_pids=frozenset(removed),
        )

    # -- the from-scratch fallback --------------------------------------

    def rebuild(self) -> ACDag:
        """Recompute the AC-DAG from the full log history with the frozen
        suite — the ground truth the incremental patching must equal."""
        if not self.bootstrapped:
            raise CorpusError("bootstrap() the pipeline before rebuilding")
        batch = StatisticalDebugger(logs=list(self.logs))
        failure_pids = set(self.suite.failure_pids())
        fully = [
            pid
            for pid in batch.fully_discriminative_pids()
            if pid not in failure_pids
        ]
        return ACDag.build(
            defs=dict(self.suite.defs),
            failed_logs=[log for log in self.logs if log.failed],
            failure=self.failure_pid,
            policy=self.policy,
            candidate_pids=fully,
        )

    # -- compaction ------------------------------------------------------

    def compact(self) -> CompactionStats:
        """Reclaim matrix rows shadowed by predicate drift and columns of
        evicted traces (the bootstrapped suite defines what is live)."""
        if not self.bootstrapped:
            raise CorpusError("bootstrap() the pipeline before compacting")
        keep_digests = {
            pid: pred.definition_digest()
            for pid, pred in self.suite.defs.items()
        }
        return self.matrix.compact(keep_digests)

    # -- persistence -----------------------------------------------------

    def save(self) -> None:
        """Persist the store manifests and the sharded evaluation matrix."""
        self.store.save()
        self.matrix.save()
