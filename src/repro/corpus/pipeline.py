"""Incremental analysis over a trace corpus: SD + AC-DAG under updates.

This is the incremental-view-maintenance half of the corpus subsystem
(after Berkholz et al., *Answering FO+MOD queries under updates*): the
discriminative-predicate set and the AC-DAG are *views* over the stored
logs, and log insertion patches them instead of recomputing.

Lifecycle::

    pipeline = IncrementalPipeline(store, program=workload.program)
    pipeline.bootstrap()        # freeze suite, evaluate via the matrix
    pipeline.ingest(new_trace)  # store + patch counts, FD set, AC-DAG
    pipeline.rebuild()          # the from-scratch fallback (tests assert
                                # it equals the patched state)

The predicate suite is frozen at bootstrap — extractors run once over
the then-current corpus.  Ingested logs are evaluated against the frozen
suite (each pair exactly once, via the eval matrix) and can only
*shrink* the fully-discriminative set and the DAG, which is what makes
pure patching sound.  Re-discovering predicates over a grown corpus is a
new bootstrap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.acdag import ACDag
from ..core.extraction import Extractor, PredicateSuite
from ..core.precedence import PrecedencePolicy, default_policy
from ..core.statistical import (
    IncrementalDebugger,
    PredicateLog,
    StatisticalDebugger,
)
from ..sim.program import Program
from .matrix import EvalMatrix
from .store import CorpusError, TraceStore


@dataclass
class IngestResult:
    """What one ingestion did to the corpus and its maintained views."""

    fingerprint: str
    added: bool
    failed: bool
    #: trace stored but excluded from analysis (off-signature failure)
    skipped: bool = False
    #: pids that left the fully-discriminative set / the DAG
    removed_pids: frozenset[str] = frozenset()


class IncrementalPipeline:
    """Maintains suite evaluation, SD counts, and the AC-DAG over a store."""

    def __init__(
        self,
        store: TraceStore,
        program: Optional[Program] = None,
        matrix: Optional[EvalMatrix] = None,
        extractors: Optional[Sequence[Extractor]] = None,
        policy: Optional[PrecedencePolicy] = None,
    ) -> None:
        self.store = store
        self.program = program
        self.matrix = matrix if matrix is not None else EvalMatrix(store.matrix_path)
        self.extractors = extractors
        self.policy = policy or default_policy()
        # frozen at bootstrap:
        self.suite: Optional[PredicateSuite] = None
        self.failure_pid: Optional[str] = None
        self.signature: Optional[str] = None
        self.debugger = IncrementalDebugger()
        self.logs: list[PredicateLog] = []
        self.fully: list[str] = []
        self.dag: Optional[ACDag] = None

    @property
    def bootstrapped(self) -> bool:
        return self.suite is not None

    # -- bootstrap -------------------------------------------------------

    def bootstrap(self) -> None:
        """Freeze the predicate suite over the current corpus and build
        every maintained view (all evaluation goes through the matrix, so
        a warm restart performs zero fresh evaluations)."""
        corpus = self.store.labeled_corpus()
        if not corpus.failures:
            raise CorpusError("corpus has no failed traces to analyze")
        if not corpus.successes:
            raise CorpusError("corpus has no successful traces to analyze")
        self.signature = corpus.dominant_failure_signature()
        corpus = corpus.restrict_failures(self.signature)
        self.suite = PredicateSuite.discover(
            corpus.successes,
            corpus.failures,
            extractors=self.extractors,
            program=self.program,
        )
        self.logs = [
            self.matrix.log_for(self.suite, t)
            for t in corpus.successes + corpus.failures
        ]
        self.debugger = IncrementalDebugger()
        self.debugger.extend(self.logs)
        failure_pids = [
            pid
            for pid in self.suite.failure_pids()
            if any(log.observed(pid) for log in self.logs if log.failed)
        ]
        if not failure_pids:
            raise CorpusError("no failure predicate was extracted")
        self.failure_pid = failure_pids[0]
        self.fully = self._derive_fully()
        self.dag = ACDag.build(
            defs=dict(self.suite.defs),
            failed_logs=[log for log in self.logs if log.failed],
            failure=self.failure_pid,
            policy=self.policy,
            candidate_pids=self.fully,
        )

    def _derive_fully(self) -> list[str]:
        failure_pids = set(self.suite.failure_pids())
        return [
            pid
            for pid in self.debugger.fully_discriminative_pids()
            if pid not in failure_pids
        ]

    # -- ingestion -------------------------------------------------------

    def ingest(self, trace) -> IngestResult:
        """Store one new trace and patch every maintained view.

        Duplicates (same content fingerprint) change nothing.  Failed
        traces with a different failure signature are stored but excluded
        from this pipeline's views, exactly as
        :meth:`~repro.harness.runner.LabeledCorpus.restrict_failures`
        excludes them from a batch session.
        """
        if not self.bootstrapped:
            raise CorpusError("bootstrap() the pipeline before ingesting")
        fp, added = self.store.ingest(trace)
        failed = trace.failed
        if not added:
            return IngestResult(fingerprint=fp, added=False, failed=failed)
        signature = (
            trace.failure.signature if trace.failure is not None else None
        )
        if failed and signature != self.signature:
            return IngestResult(
                fingerprint=fp, added=True, failed=True, skipped=True
            )
        if getattr(trace, "fingerprint", None) is None:
            # live ExecutionTrace: attach the content address the matrix
            # memoizes under (identical to the store's by construction)
            trace = self.store.load(fp)
        log = self.matrix.log_for(self.suite, trace)
        self.logs.append(log)
        self.debugger.add(log)
        new_fully = self._derive_fully()
        removed = set(self.fully) - set(new_fully)
        self.fully = new_fully
        if failed:
            # Recall casualties are exactly the pids the new log does not
            # observe; update_failed_log drops them while advancing the
            # per-edge support counters.
            removed |= self.dag.update_failed_log(log, policy=self.policy)
        elif removed:
            # A success can only break precision; edges are untouched.
            removed |= self.dag.restrict_to(
                set(new_fully) | {self.failure_pid}
            )
        return IngestResult(
            fingerprint=fp,
            added=True,
            failed=failed,
            removed_pids=frozenset(removed),
        )

    # -- the from-scratch fallback --------------------------------------

    def rebuild(self) -> ACDag:
        """Recompute the AC-DAG from the full log history with the frozen
        suite — the ground truth the incremental patching must equal."""
        if not self.bootstrapped:
            raise CorpusError("bootstrap() the pipeline before rebuilding")
        batch = StatisticalDebugger(logs=list(self.logs))
        failure_pids = set(self.suite.failure_pids())
        fully = [
            pid
            for pid in batch.fully_discriminative_pids()
            if pid not in failure_pids
        ]
        return ACDag.build(
            defs=dict(self.suite.defs),
            failed_logs=[log for log in self.logs if log.failed],
            failure=self.failure_pid,
            policy=self.policy,
            candidate_pids=fully,
        )

    # -- persistence -----------------------------------------------------

    def save(self) -> None:
        """Persist the store manifest and the evaluation matrix."""
        self.store.save()
        self.matrix.save()
