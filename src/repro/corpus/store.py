"""The content-addressed, on-disk trace store — sharded by fingerprint.

Role
----
The paper's offline phase (Appendix A) assumes a corpus of labeled
execution logs collected once and re-analyzed many times.  This module
is that corpus made durable: each trace is serialized via
:mod:`repro.sim.serialize` and stored under its content fingerprint, so
ingesting the same execution twice stores it once, and manifests record
labels, seeds, and failure signatures so analyses can plan without
touching trace bodies.

Persistence format (v3, sharded + columnar)
-------------------------------------------
Traces are bucketed by a hex prefix of their fingerprint (the *shard
id*), so no directory and no JSON file ever has to hold the whole
corpus, and shards are the unit of parallel analysis::

    DIR/
      manifest.json                 top-level index: version, program,
                                    shard_width, populated shard ids
      evalmatrix.json               eval-matrix index (written by
                                    repro.corpus.matrix: version + the
                                    shards holding bitset files)
      shards/<sid>/
        manifest.json               label/seed/signature per fingerprint
        traces/<fp>.json            one serialized trace each
        evalmatrix.json             this shard's predicate-evaluation
                                    memo (v1 single-matrix format)
        columnar.bin                structure-of-arrays trace table
                                    (repro.corpus.columnar; derived
                                    cache, built lazily on analyze)

The columnar table is keyed by the shard's content digest (the stable
digest of its sorted fingerprints): ingest or eviction changes the
digest and the next :meth:`TraceStore.columnar_table` call rebuilds the
file.  Deleting ``columnar.bin`` is always safe.

``shard_width`` is the number of hex characters of the fingerprint used
as the shard id (default 2 → up to 256 shards); width 0 disables
sharding (a single ``shards/all/`` bucket).  The width is fixed at
``init`` and recorded in the top-level manifest.

Invariants
----------
* a fingerprint appears in at most one shard, and always in the shard
  its prefix names;
* the top-level manifest's shard list equals the set of non-empty
  shards, so ``open`` never scans the filesystem;
* ``save`` rewrites only shards dirtied since the last save (plus the
  top-level manifest), each atomically (temp file + rename).

Migration
---------
Version-1 corpora (flat ``traces/`` + one ``manifest.json`` + one
``evalmatrix.json``) are migrated **in place and transparently** on
:meth:`TraceStore.open`: trace bodies are renamed into their shards, the
manifest is split, and the single eval matrix is split into per-shard
bitset files — preserving every memoized (predicate, trace) pair, so the
first post-migration analysis performs zero re-evaluations.  The
migration is idempotent: a crash mid-way leaves a state a later ``open``
finishes from.

Version-2 corpora differ from v3 only by the columnar side files, which
are derived caches — so the v2→v3 migration is just the manifest version
bump (the commit point); tables appear lazily on first analyze, or
eagerly via ``repro corpus migrate-columnar``.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Optional

from ..harness.runner import LabeledCorpus
from ..sim.serialize import (
    ImportedTrace,
    stable_digest,
    trace_from_dict,
    trace_to_dict,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .matrix import ShardedEvalMatrix

MANIFEST_NAME = "manifest.json"
MATRIX_NAME = "evalmatrix.json"
SUITE_NAME = "suite.json"
TRACES_DIR = "traces"
SHARDS_DIR = "shards"
STORE_VERSION = 3
SUITE_FILE_VERSION = 1
#: version of the ``repro corpus stats --json`` payload
STATS_SCHEMA_VERSION = 1
DEFAULT_SHARD_WIDTH = 2
#: shard id used when sharding is disabled (width 0)
SINGLE_SHARD_ID = "all"


class CorpusError(RuntimeError):
    """The corpus directory is missing, malformed, or inconsistent."""


@dataclass(frozen=True)
class TraceEntry:
    """Manifest row: everything known about one stored trace."""

    fingerprint: str
    label: str  # "pass" | "fail"
    seed: int
    signature: Optional[str]  # failure signature, None for passes
    #: schedule (interleaving) signature when the producer recorded one
    #: (the exploration driver stamps it); ``None`` for plain ingests
    schedule: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.label == "fail"

    def to_dict(self) -> dict:
        payload = {
            "label": self.label,
            "seed": self.seed,
            "signature": self.signature,
        }
        # Written only when present, so manifests without schedule
        # provenance stay byte-identical to what older builds wrote.
        if self.schedule is not None:
            payload["schedule"] = self.schedule
        return payload

    @classmethod
    def from_dict(cls, fingerprint: str, raw: dict) -> "TraceEntry":
        return cls(
            fingerprint=fingerprint,
            label=raw["label"],
            seed=raw["seed"],
            signature=raw.get("signature"),
            schedule=raw.get("schedule"),
        )


def _write_json(path: Path, payload: dict, indent: Optional[int] = 2) -> None:
    """Atomic JSON write: temp file in the same directory + rename."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(payload, indent=indent, sort_keys=True))
    tmp.replace(path)


class TraceStore:
    """A persistent, deduplicating, sharded corpus of execution traces."""

    def __init__(
        self,
        root: str | os.PathLike,
        program: Optional[str] = None,
        shard_width: int = DEFAULT_SHARD_WIDTH,
        entries: Optional[dict[str, TraceEntry]] = None,
    ) -> None:
        self.root = Path(root)
        self._program = program
        self.shard_width = shard_width
        self.entries: dict[str, TraceEntry] = dict(entries or {})
        #: shard ids whose manifest must be rewritten on the next save
        self._dirty: set[str] = set()
        #: per-shard columnar-table cache: sid -> (content digest,
        #: ShardTable or None).  mmap-backed, so dropped on pickle.
        self._tables: dict[str, tuple] = {}

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_tables"] = {}
        return state

    # -- lifecycle -------------------------------------------------------

    @classmethod
    def init(
        cls,
        root: str | os.PathLike,
        program: Optional[str] = None,
        shard_width: int = DEFAULT_SHARD_WIDTH,
    ) -> "TraceStore":
        """Create a fresh corpus directory (refuses to clobber one)."""
        root = Path(root)
        if (root / MANIFEST_NAME).exists():
            raise CorpusError(f"{root} already holds a corpus")
        if not 0 <= shard_width <= 4:
            raise CorpusError(
                f"shard_width must be between 0 and 4, got {shard_width}"
            )
        (root / SHARDS_DIR).mkdir(parents=True, exist_ok=True)
        store = cls(root, program=program, shard_width=shard_width)
        store.save()
        return store

    @classmethod
    def open(cls, root: str | os.PathLike) -> "TraceStore":
        root = Path(root)
        path = root / MANIFEST_NAME
        if not path.exists():
            raise CorpusError(f"{root} is not a corpus (no {MANIFEST_NAME})")
        try:
            manifest = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise CorpusError(f"{path} is unreadable: {exc}") from exc
        version = manifest.get("version")
        if version == 1:
            manifest = _migrate_v1(root, manifest)
        elif version == 2:
            manifest = _migrate_v2(root, manifest)
        elif version != STORE_VERSION:
            raise CorpusError(
                f"unsupported corpus version {version!r} in {path}"
            )
        shard_width = manifest.get("shard_width", DEFAULT_SHARD_WIDTH)
        entries: dict[str, TraceEntry] = {}
        for sid in manifest.get("shards", []):
            shard_manifest = root / SHARDS_DIR / sid / MANIFEST_NAME
            if not shard_manifest.exists():
                raise CorpusError(
                    f"top-level manifest lists shard {sid!r} but "
                    f"{shard_manifest} is gone"
                )
            raw = json.loads(shard_manifest.read_text())
            for fp, row in raw.get("traces", {}).items():
                entries[fp] = TraceEntry.from_dict(fp, row)
        return cls(
            root,
            program=manifest.get("program"),
            shard_width=shard_width,
            entries=entries,
        )

    def save(self) -> None:
        """Write dirty shard manifests plus the top-level index, each
        atomically (temp file + rename)."""
        by_shard: dict[str, dict[str, TraceEntry]] = {}
        for fp, entry in self.entries.items():
            by_shard.setdefault(self.shard_id(fp), {})[fp] = entry
        for sid in sorted(self._dirty):
            rows = by_shard.get(sid, {})
            _write_json(
                self.shard_dir(sid) / MANIFEST_NAME,
                {"traces": {fp: e.to_dict() for fp, e in sorted(rows.items())}},
            )
        _write_json(
            self.root / MANIFEST_NAME,
            {
                "version": STORE_VERSION,
                "program": self._program,
                "shard_width": self.shard_width,
                "shards": sorted(by_shard),
            },
        )
        self._dirty.clear()

    # -- identity and layout ---------------------------------------------

    @property
    def program(self) -> Optional[str]:
        """The program name every stored trace must come from (pinned at
        init or by the first ingested trace)."""
        return self._program

    def shard_id(self, fingerprint: str) -> str:
        """The shard a fingerprint belongs to (its hex prefix)."""
        if self.shard_width == 0:
            return SINGLE_SHARD_ID
        return fingerprint[: self.shard_width]

    def is_valid_shard_id(self, shard_id: str) -> bool:
        """Whether ``shard_id`` can be produced by this store's width.

        Shard ids of a *different* width (seen mid-``reshard`` crash:
        stale directories or index entries from the other layout) must
        be ignored, never double-counted.  For a sharded store the id
        must be a hex fingerprint prefix of exactly the right length —
        the length check alone would let the width-0 sentinel ``"all"``
        masquerade as a width-3 id."""
        if self.shard_width == 0:
            return shard_id == SINGLE_SHARD_ID
        return len(shard_id) == self.shard_width and all(
            c in "0123456789abcdef" for c in shard_id
        )

    @property
    def shard_ids(self) -> list[str]:
        """Sorted ids of the non-empty shards."""
        return sorted({self.shard_id(fp) for fp in self.entries})

    def shard_dir(self, shard_id: str) -> Path:
        return self.root / SHARDS_DIR / shard_id

    def shard_matrix_path(self, shard_id: str) -> Path:
        """Where this shard's eval-matrix bitset file lives."""
        return self.shard_dir(shard_id) / MATRIX_NAME

    def columnar_path(self, shard_id: str) -> Path:
        """Where this shard's columnar trace table lives."""
        from .columnar import COLUMNAR_NAME

        return self.shard_dir(shard_id) / COLUMNAR_NAME

    def shard_content_digest(self, shard_id: str) -> str:
        """Stable digest of the shard's sorted fingerprints — the
        invalidation key for its derived columnar table."""
        return stable_digest(sorted(self.shard_entries(shard_id)))

    def columnar_table(self, shard_id: str, build: bool = True):
        """The shard's columnar trace table, or ``None``.

        Opens (and caches) a fresh on-disk table; a missing or stale
        table is rebuilt from the stored payloads when ``build`` is
        true.  Returns ``None`` when the shard's payloads cannot be
        represented in the columnar format (the caller falls back to
        the per-trace object path) or when ``build`` is false and no
        fresh table exists.  The cache is keyed by the shard content
        digest, so ingest/eviction invalidates it automatically.
        """
        from .columnar import (
            ColumnarError,
            ColumnarUnsupported,
            ShardTable,
            build_shard_table,
        )

        digest = self.shard_content_digest(shard_id)
        cached = self._tables.get(shard_id)
        if cached is not None and cached[0] == digest:
            return cached[1]
        path = self.columnar_path(shard_id)
        table = None
        if path.exists():
            try:
                candidate = ShardTable.open(path)
            except (ColumnarError, OSError):
                candidate = None
            if candidate is not None:
                if candidate.shard_digest == digest:
                    table = candidate
                else:
                    candidate.close()
        if table is None and build:
            try:
                rows = [
                    (fp, json.loads(self.trace_path(fp).read_text()))
                    for fp in sorted(self.shard_entries(shard_id))
                ]
                build_shard_table(path, rows, shard_digest=digest)
                table = ShardTable.open(path)
            except (ColumnarUnsupported, OSError, json.JSONDecodeError):
                # Unrepresentable or unreadable payloads: remember the
                # verdict for this digest and leave evaluation to the
                # object path (which surfaces real corpus errors).
                table = None
        if table is not None or build:
            self._tables[shard_id] = (digest, table)
        return table

    @property
    def matrix_index_path(self) -> Path:
        """The top-level eval-matrix index (see repro.corpus.matrix)."""
        return self.root / MATRIX_NAME

    def trace_path(self, fingerprint: str) -> Path:
        return (
            self.shard_dir(self.shard_id(fingerprint))
            / TRACES_DIR
            / f"{fingerprint}.json"
        )

    def eval_matrix(self) -> "ShardedEvalMatrix":
        """The persistent predicate-evaluation memo over this store."""
        from .matrix import ShardedEvalMatrix

        return ShardedEvalMatrix(self)

    @property
    def content_digest(self) -> str:
        """Stable digest of the corpus *content*: the sorted trace
        fingerprints.  Two corpora hold the same executions iff their
        digests match, however they were assembled — the key persisted
        artifacts (the frozen predicate suite, memoized intervention
        outcomes) are filed under."""
        return stable_digest(sorted(self.entries))

    # -- the persisted predicate suite ----------------------------------

    @property
    def suite_path(self) -> Path:
        return self.root / SUITE_NAME

    def save_suite(
        self,
        suite,
        signature: Optional[str] = None,
        program: Optional[str] = None,
    ) -> Path:
        """Persist a frozen :class:`~repro.core.extraction.PredicateSuite`
        keyed by the current :attr:`content_digest`, so a later analyze
        over the *same* corpus content skips extractor rediscovery
        entirely.  ``program`` records which live program's safety
        filter shaped the suite (``None`` for an unattached analysis)."""
        payload = {
            "version": SUITE_FILE_VERSION,
            "corpus_digest": self.content_digest,
            "program": program,
            "signature": signature,
            "suite": suite.to_dict(),
        }
        _write_json(self.suite_path, payload, indent=None)
        return self.suite_path

    def load_suite(self, program: Optional[str] = None):
        """The persisted suite, or ``None`` when it cannot stand in for
        rediscovery: missing file, unknown version, a corpus whose
        content changed since the suite froze (extractor thresholds are
        calibrated on the whole corpus), or a different attached
        program (the Section 3.3 safety filter depends on it)."""
        path = self.suite_path
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError:
            return None
        if payload.get("version") != SUITE_FILE_VERSION:
            return None
        if payload.get("corpus_digest") != self.content_digest:
            return None
        if payload.get("program") != program:
            return None
        from ..core.extraction import PredicateSuite

        try:
            return PredicateSuite.from_dict(payload["suite"])
        except (KeyError, TypeError, ValueError):
            return None

    # -- ingestion -------------------------------------------------------

    def ingest(
        self, trace, schedule_signature: Optional[str] = None
    ) -> tuple[str, bool]:
        """Add one trace (live or imported); returns ``(fp, added)``.

        Dedup is content-addressed: the fingerprint is the stable digest
        of the serialized trace, so re-ingesting an identical execution
        is a no-op.  ``schedule_signature`` stamps the interleaving
        identity (:meth:`repro.sim.schedule.Schedule.signature`) into
        the manifest row when the producer recorded one.  Call
        :meth:`save` after a batch to persist the manifests.
        """
        payload = trace_to_dict(trace)
        return self.ingest_payload(
            payload, schedule_signature=schedule_signature
        )

    def ingest_payload(
        self, payload: dict, schedule_signature: Optional[str] = None
    ) -> tuple[str, bool]:
        """Add one already-serialized trace payload; returns ``(fp, added)``."""
        # Validate eagerly — a malformed payload must fail on ingest, not
        # years later mid-analysis.  Also checks the schema version.
        trace = trace_from_dict(payload)
        if self._program is None:
            self._program = trace.program_name
        elif trace.program_name != self._program:
            raise CorpusError(
                f"trace is from program {trace.program_name!r}, but this "
                f"corpus holds {self._program!r}"
            )
        fp = stable_digest(payload)
        existing = self.entries.get(fp)
        if existing is not None:
            if schedule_signature is not None and existing.schedule is None:
                # Enrich a duplicate with the provenance it lacked.
                self.entries[fp] = dataclasses.replace(
                    existing, schedule=schedule_signature
                )
                self._dirty.add(self.shard_id(fp))
            return fp, False
        path = self.trace_path(fp)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, sort_keys=True))
        self.entries[fp] = TraceEntry(
            fingerprint=fp,
            label="fail" if trace.failed else "pass",
            seed=trace.seed,
            signature=(
                trace.failure.signature if trace.failure is not None else None
            ),
            schedule=schedule_signature,
        )
        self._dirty.add(self.shard_id(fp))
        return fp, True

    def evict(self, fingerprint: str) -> bool:
        """Drop one trace from the manifest and delete its body.

        Returns whether anything was evicted.  The eval matrix keeps the
        trace's memoized column until ``repro corpus compact`` reclaims
        it (see :meth:`~repro.corpus.matrix.ShardedEvalMatrix.compact`).
        """
        entry = self.entries.pop(fingerprint, None)
        if entry is None:
            return False
        self.trace_path(fingerprint).unlink(missing_ok=True)
        self._dirty.add(self.shard_id(fingerprint))
        return True

    # -- retrieval -------------------------------------------------------

    def load(self, fingerprint: str) -> ImportedTrace:
        entry = self.entries.get(fingerprint)
        if entry is None:
            raise CorpusError(f"no trace {fingerprint!r} in this corpus")
        path = self.trace_path(fingerprint)
        if not path.exists():
            raise CorpusError(f"manifest lists {fingerprint} but {path} is gone")
        return trace_from_dict(
            json.loads(path.read_text()), fingerprint=fingerprint
        )

    def traces(self, label: Optional[str] = None) -> Iterator[ImportedTrace]:
        """All stored traces (optionally one label), fingerprint order."""
        for fp, entry in sorted(self.entries.items()):
            if label is None or entry.label == label:
                yield self.load(fp)

    def labeled_corpus(self) -> LabeledCorpus:
        """The stored traces as a :class:`LabeledCorpus` (every loaded
        trace carries its ``fingerprint``)."""
        corpus = LabeledCorpus()
        for trace in self.traces():
            (corpus.failures if trace.failed else corpus.successes).append(trace)
        return corpus

    # -- resharding ------------------------------------------------------

    def reshard(self, width: int) -> dict:
        """Rewrite the corpus under a new shard width, in place.

        Built on :func:`~repro.corpus.matrix.merge_matrices` /
        :func:`~repro.corpus.matrix.split_matrix`, so **every memoized
        (predicate, trace) pair survives** — the first post-reshard
        analyze performs zero fresh evaluations (asserted in tests).

        Sequence (old layout stays readable until the commit point):
        trace bodies are *copied* into their new shards, new shard
        manifests and matrix files are written, then the top-level
        manifest commits the new width, and finally the old shard
        directories are removed.  Shard ids of the wrong width are
        ignored everywhere (directories here, index entries in
        :meth:`~repro.corpus.matrix.ShardedEvalMatrix.persisted_shard_ids`),
        so a crash on either side of the commit leaves a consistent
        view; re-running reshard — even with the already-committed
        width — finishes the cleanup.

        Returns a stats dict: ``n_traces``, ``shards_before``,
        ``shards_after``, ``pairs_preserved``.
        """
        from .matrix import MATRIX_INDEX_VERSION, merge_matrices, split_matrix

        if not 0 <= width <= 4:
            raise CorpusError(
                f"shard width must be between 0 and 4, got {width}"
            )
        old_width = self.shard_width
        old_sids = self.shard_ids
        if width == old_width:
            # Still sweep stale other-width directories: a crash after
            # the previous reshard's commit point but before its cleanup
            # leaves them behind, and the documented recovery is to
            # re-run reshard with the (now current) width.
            self._drop_stale_shard_dirs()
            return {
                "n_traces": len(self.entries),
                "shards_before": len(old_sids),
                "shards_after": len(old_sids),
                "pairs_preserved": 0,
            }

        def new_shard_id(fp: str) -> str:
            return fp[:width] if width else SINGLE_SHARD_ID

        # 1. Fold every persisted shard matrix into one, then split it
        #    along the new layout (pair-preserving by construction).
        matrix = self.eval_matrix()
        merged = merge_matrices(
            matrix.shard(sid) for sid in matrix.persisted_shard_ids()
        )
        new_matrices = split_matrix(merged, new_shard_id)

        # 2. Copy trace bodies into their new shards (old bodies stay
        #    until the commit point).
        by_new_shard: dict[str, dict[str, TraceEntry]] = {}
        for fp, entry in self.entries.items():
            by_new_shard.setdefault(new_shard_id(fp), {})[fp] = entry
            src = self.trace_path(fp)
            dst = (
                self.root / SHARDS_DIR / new_shard_id(fp)
                / TRACES_DIR / f"{fp}.json"
            )
            if src == dst or dst.exists():
                continue
            if not src.exists():
                raise CorpusError(
                    f"cannot reshard {self.root}: manifest lists {fp} "
                    f"but {src} is gone"
                )
            dst.parent.mkdir(parents=True, exist_ok=True)
            dst.write_bytes(src.read_bytes())

        # 3. New shard manifests and matrix files, plus the matrix index.
        for sid, rows in by_new_shard.items():
            _write_json(
                self.root / SHARDS_DIR / sid / MANIFEST_NAME,
                {"traces": {fp: e.to_dict() for fp, e in sorted(rows.items())}},
            )
        matrix_sids = []
        for sid, shard_matrix in sorted(new_matrices.items()):
            shard_matrix.save(self.root / SHARDS_DIR / sid / MATRIX_NAME)
            matrix_sids.append(sid)
        _write_json(
            self.matrix_index_path,
            {"version": MATRIX_INDEX_VERSION, "shards": matrix_sids},
            indent=None,
        )

        # 4. Commit: the top-level manifest now names the new layout.
        self.shard_width = width
        self._dirty.clear()
        _write_json(
            self.root / MANIFEST_NAME,
            {
                "version": STORE_VERSION,
                "program": self._program,
                "shard_width": width,
                "shards": sorted(by_new_shard),
            },
        )

        # 5. Cleanup: old and new shard ids never collide (different
        #    widths name different-shaped directories), so every
        #    directory outside the new layout is stale.  Shards that
        #    hold only matrix columns (evicted traces awaiting compact)
        #    are part of the new layout too.
        self._drop_stale_shard_dirs()

        return {
            "n_traces": len(self.entries),
            "shards_before": len(old_sids),
            "shards_after": len(by_new_shard),
            "pairs_preserved": merged.n_pairs,
        }

    def _drop_stale_shard_dirs(self) -> None:
        """Remove shard directories whose id cannot belong to the
        current width — leftovers of an interrupted :meth:`reshard`."""
        import shutil

        shards_root = self.root / SHARDS_DIR
        if not shards_root.is_dir():
            return
        for path in shards_root.iterdir():
            if path.is_dir() and not self.is_valid_shard_id(path.name):
                shutil.rmtree(path, ignore_errors=True)

    # -- bookkeeping -----------------------------------------------------

    @property
    def n_pass(self) -> int:
        return sum(1 for e in self.entries.values() if not e.failed)

    @property
    def n_fail(self) -> int:
        return sum(1 for e in self.entries.values() if e.failed)

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    def shard_entries(self, shard_id: str) -> dict[str, TraceEntry]:
        """Manifest rows belonging to one shard."""
        return {
            fp: e
            for fp, e in self.entries.items()
            if self.shard_id(fp) == shard_id
        }

    def signature_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for e in self.entries.values():
            if e.signature is not None:
                counts[e.signature] = counts.get(e.signature, 0) + 1
        return counts

    def dominant_failure_signature(self) -> Optional[str]:
        counts = self.signature_counts()
        if not counts:
            return None
        return max(sorted(counts), key=lambda s: counts[s])

    def schedule_counts(self) -> dict[str, int]:
        """Distinct recorded schedule signatures per label — the
        fuzzing-progress number: how many *interleavings* (not merely
        traces) each label has accumulated.  Traces ingested without
        schedule provenance do not count."""
        schedules: dict[str, set[str]] = {"pass": set(), "fail": set()}
        for e in self.entries.values():
            if e.schedule is not None:
                schedules[e.label].add(e.schedule)
        return {label: len(sigs) for label, sigs in schedules.items()}

    def schedule_counts_by_signature(self) -> dict[str, int]:
        """Distinct recorded schedules per failure signature — schedule
        diversity within each debugged bug."""
        schedules: dict[str, set[str]] = {}
        for e in self.entries.values():
            if e.signature is not None and e.schedule is not None:
                schedules.setdefault(e.signature, set()).add(e.schedule)
        return {sig: len(s) for sig, s in schedules.items()}

    def stats_dict(self) -> dict:
        """The ``repro corpus stats --json`` payload: a versioned,
        machine-readable snapshot of corpus and eval-matrix health —
        what a service health check polls instead of screen-scraping
        the text stats (mirrors the report-schema pattern: a ``schema``
        field, sorted keys, pure function of the stored state)."""
        matrix = self.eval_matrix()
        return {
            "schema": STATS_SCHEMA_VERSION,
            "dir": str(self.root),
            "program": self.program,
            "traces": {
                "total": len(self),
                "pass": self.n_pass,
                "fail": self.n_fail,
            },
            "shards": {
                "width": self.shard_width,
                "populated": len(self.shard_ids),
            },
            "signatures": dict(sorted(self.signature_counts().items())),
            "schedules": {
                **self.schedule_counts(),
                "by_signature": dict(
                    sorted(self.schedule_counts_by_signature().items())
                ),
            },
            "matrix": {
                "predicates": matrix.n_pids,
                "traces": matrix.n_traces,
                "pairs": matrix.n_pairs,
                "coverage": round(matrix.coverage(), 6),
            },
        }


def _migrate_v2(root: Path, manifest: dict) -> dict:
    """Migrate a v2 (sharded) corpus to v3 (sharded + columnar).

    v3 keeps the v2 layout byte-for-byte and adds per-shard
    ``columnar.bin`` side files — but those are *derived caches*, built
    lazily on the first analyze (or eagerly by ``repro corpus
    migrate-columnar``) and keyed by shard content digest.  Migration
    is therefore just the manifest version bump; the atomic manifest
    write is the commit point and re-running is a no-op.
    """
    migrated = dict(manifest)
    migrated["version"] = STORE_VERSION
    _write_json(root / MANIFEST_NAME, migrated)
    return migrated


def _migrate_v1(root: Path, manifest: dict) -> dict:
    """Migrate a v1 (flat) corpus directory to the sharded layout
    (landing directly on the current store version).

    Idempotent and crash-tolerant: trace bodies are renamed one by one
    (skipping ones already in place), shard manifests and matrix files
    are written before the top-level manifest, and the versioned
    top-level manifest write is the commit point — until then a
    re-``open`` sees version 1 and resumes the migration.
    """
    width = DEFAULT_SHARD_WIDTH
    rows = manifest.get("traces", {})
    by_shard: dict[str, dict[str, dict]] = {}
    for fp, row in rows.items():
        sid = fp[:width] if width else SINGLE_SHARD_ID
        by_shard.setdefault(sid, {})[fp] = row
        src = root / TRACES_DIR / f"{fp}.json"
        dst = root / SHARDS_DIR / sid / TRACES_DIR / f"{fp}.json"
        if src.exists():
            dst.parent.mkdir(parents=True, exist_ok=True)
            src.replace(dst)
        elif not dst.exists():
            raise CorpusError(
                f"cannot migrate {root}: manifest lists {fp} but "
                f"{src} is gone"
            )
    for sid, shard_rows in by_shard.items():
        _write_json(
            root / SHARDS_DIR / sid / MANIFEST_NAME,
            {"traces": dict(sorted(shard_rows.items()))},
        )

    # Split the single v1 eval matrix into per-shard bitset files,
    # preserving every memoized pair (zero re-evaluations afterwards).
    matrix_path = root / MATRIX_NAME
    if matrix_path.exists():
        from .matrix import migrate_matrix_v1

        migrate_matrix_v1(
            matrix_path,
            shard_id=lambda fp: fp[:width] if width else SINGLE_SHARD_ID,
            shard_path=lambda sid: root / SHARDS_DIR / sid / MATRIX_NAME,
        )

    migrated = {
        "version": STORE_VERSION,
        "program": manifest.get("program"),
        "shard_width": width,
        "shards": sorted(by_shard),
    }
    _write_json(root / MANIFEST_NAME, migrated)

    # Best-effort cleanup of the now-empty v1 trace directory.
    old_traces = root / TRACES_DIR
    if old_traces.is_dir() and not any(old_traces.iterdir()):
        old_traces.rmdir()
    return migrated
