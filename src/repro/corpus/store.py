"""The content-addressed, on-disk trace store.

The paper's offline phase (Appendix A) assumes a corpus of labeled
execution logs collected once and re-analyzed many times.  This module
is that corpus made durable: each trace is serialized via
:mod:`repro.sim.serialize` and stored under its content fingerprint
(``traces/<fp>.json``), so ingesting the same execution twice stores it
once, and a manifest records labels, seeds, and failure signatures so
analyses can plan without touching trace bodies.

Layout of a corpus directory::

    DIR/
      manifest.json       label/seed/signature per fingerprint + metadata
      traces/<fp>.json    one serialized trace each (content-addressed)
      evalmatrix.json     the persisted predicate-evaluation memo
                          (written by :mod:`repro.corpus.matrix`)
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

from ..harness.runner import LabeledCorpus
from ..sim.serialize import (
    ImportedTrace,
    stable_digest,
    trace_from_dict,
    trace_to_dict,
)

MANIFEST_NAME = "manifest.json"
MATRIX_NAME = "evalmatrix.json"
TRACES_DIR = "traces"
STORE_VERSION = 1


class CorpusError(RuntimeError):
    """The corpus directory is missing, malformed, or inconsistent."""


@dataclass(frozen=True)
class TraceEntry:
    """Manifest row: everything known about one stored trace."""

    fingerprint: str
    label: str  # "pass" | "fail"
    seed: int
    signature: Optional[str]  # failure signature, None for passes

    @property
    def failed(self) -> bool:
        return self.label == "fail"


class TraceStore:
    """A persistent, deduplicating corpus of execution traces."""

    def __init__(self, root: str | os.PathLike, manifest: dict) -> None:
        self.root = Path(root)
        self._program: Optional[str] = manifest.get("program")
        self.entries: dict[str, TraceEntry] = {
            fp: TraceEntry(
                fingerprint=fp,
                label=raw["label"],
                seed=raw["seed"],
                signature=raw.get("signature"),
            )
            for fp, raw in manifest.get("traces", {}).items()
        }

    # -- lifecycle -------------------------------------------------------

    @classmethod
    def init(
        cls, root: str | os.PathLike, program: Optional[str] = None
    ) -> "TraceStore":
        """Create a fresh corpus directory (refuses to clobber one)."""
        root = Path(root)
        if (root / MANIFEST_NAME).exists():
            raise CorpusError(f"{root} already holds a corpus")
        (root / TRACES_DIR).mkdir(parents=True, exist_ok=True)
        store = cls(root, {"program": program})
        store.save()
        return store

    @classmethod
    def open(cls, root: str | os.PathLike) -> "TraceStore":
        root = Path(root)
        path = root / MANIFEST_NAME
        if not path.exists():
            raise CorpusError(f"{root} is not a corpus (no {MANIFEST_NAME})")
        try:
            manifest = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise CorpusError(f"{path} is unreadable: {exc}") from exc
        version = manifest.get("version")
        if version != STORE_VERSION:
            raise CorpusError(
                f"unsupported corpus version {version!r} in {path}"
            )
        return cls(root, manifest)

    def save(self) -> None:
        """Write the manifest (atomically: temp file + rename)."""
        payload = {
            "version": STORE_VERSION,
            "program": self._program,
            "traces": {
                fp: {
                    "label": e.label,
                    "seed": e.seed,
                    "signature": e.signature,
                }
                for fp, e in sorted(self.entries.items())
            },
        }
        path = self.root / MANIFEST_NAME
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        tmp.replace(path)

    # -- identity --------------------------------------------------------

    @property
    def program(self) -> Optional[str]:
        """The program name every stored trace must come from (pinned at
        init or by the first ingested trace)."""
        return self._program

    @property
    def matrix_path(self) -> Path:
        return self.root / MATRIX_NAME

    def trace_path(self, fingerprint: str) -> Path:
        return self.root / TRACES_DIR / f"{fingerprint}.json"

    # -- ingestion -------------------------------------------------------

    def ingest(self, trace) -> tuple[str, bool]:
        """Add one trace (live or imported); returns ``(fp, added)``.

        Dedup is content-addressed: the fingerprint is the stable digest
        of the serialized trace, so re-ingesting an identical execution
        is a no-op.  Call :meth:`save` after a batch to persist the
        manifest.
        """
        payload = trace_to_dict(trace)
        return self.ingest_payload(payload)

    def ingest_payload(self, payload: dict) -> tuple[str, bool]:
        """Add one already-serialized trace payload; returns ``(fp, added)``."""
        # Validate eagerly — a malformed payload must fail on ingest, not
        # years later mid-analysis.  Also checks the schema version.
        trace = trace_from_dict(payload)
        if self._program is None:
            self._program = trace.program_name
        elif trace.program_name != self._program:
            raise CorpusError(
                f"trace is from program {trace.program_name!r}, but this "
                f"corpus holds {self._program!r}"
            )
        fp = stable_digest(payload)
        if fp in self.entries:
            return fp, False
        path = self.trace_path(fp)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, sort_keys=True))
        self.entries[fp] = TraceEntry(
            fingerprint=fp,
            label="fail" if trace.failed else "pass",
            seed=trace.seed,
            signature=(
                trace.failure.signature if trace.failure is not None else None
            ),
        )
        return fp, True

    # -- retrieval -------------------------------------------------------

    def load(self, fingerprint: str) -> ImportedTrace:
        entry = self.entries.get(fingerprint)
        if entry is None:
            raise CorpusError(f"no trace {fingerprint!r} in this corpus")
        path = self.trace_path(fingerprint)
        if not path.exists():
            raise CorpusError(f"manifest lists {fingerprint} but {path} is gone")
        return trace_from_dict(
            json.loads(path.read_text()), fingerprint=fingerprint
        )

    def traces(self, label: Optional[str] = None) -> Iterator[ImportedTrace]:
        """All stored traces (optionally one label), manifest order."""
        for fp, entry in sorted(self.entries.items()):
            if label is None or entry.label == label:
                yield self.load(fp)

    def labeled_corpus(self) -> LabeledCorpus:
        """The stored traces as a :class:`LabeledCorpus` (every loaded
        trace carries its ``fingerprint``)."""
        corpus = LabeledCorpus()
        for trace in self.traces():
            (corpus.failures if trace.failed else corpus.successes).append(trace)
        return corpus

    # -- bookkeeping -----------------------------------------------------

    @property
    def n_pass(self) -> int:
        return sum(1 for e in self.entries.values() if not e.failed)

    @property
    def n_fail(self) -> int:
        return sum(1 for e in self.entries.values() if e.failed)

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    def signature_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for e in self.entries.values():
            if e.signature is not None:
                counts[e.signature] = counts.get(e.signature, 0) + 1
        return counts

    def dominant_failure_signature(self) -> Optional[str]:
        counts = self.signature_counts()
        if not counts:
            return None
        return max(sorted(counts), key=lambda s: counts[s])
