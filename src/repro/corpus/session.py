"""Corpus-backed debugging sessions.

Role
----
:class:`CorpusSession` is an :class:`~repro.harness.session.AIDSession`
whose learning phase reads from a :class:`~repro.corpus.store.TraceStore`
instead of re-running the workload: stored traces stand in for the
collection sweep, and predicate evaluation routes through the persistent
:class:`~repro.corpus.matrix.ShardedEvalMatrix`.  The intervention phase
is unchanged — interventions are re-executions and need the live
program.

Invariants
----------
* a warm corpus re-evaluates **zero** already-seen (predicate, trace)
  pairs — every decided pair is answered from the per-shard bitsets;
* when the session's :class:`~repro.harness.session.SessionConfig`
  carries an execution engine with more than one job, evaluation fans
  out one task per corpus shard across that engine's backend, with
  results identical to the serial walk (see
  :meth:`ShardedEvalMatrix.evaluate_shards`);
* intervention outcomes are memoized under a corpus-content key, so two
  sessions over the same stored traces share outcomes no matter how
  the corpus was assembled.

Persistence: ``save`` writes the store manifests and the per-shard
matrix files (plus the top-level matrix index).
"""

from __future__ import annotations

from typing import Optional

from ..core.statistical import PredicateLog
from ..harness.session import AIDSession, SessionConfig
from ..sim.program import Program
from .matrix import ShardedEvalMatrix
from .store import CorpusError, TraceStore


class CorpusSession(AIDSession):
    """A full debugging session whose corpus lives on disk."""

    def __init__(
        self,
        program: Program,
        store: TraceStore,
        config: Optional[SessionConfig] = None,
        matrix: Optional[ShardedEvalMatrix] = None,
    ) -> None:
        if store.program is not None and store.program != program.name:
            raise CorpusError(
                f"corpus holds traces of {store.program!r}, "
                f"not {program.name!r}"
            )
        super().__init__(program, config=config)
        self.store = store
        self.matrix = matrix if matrix is not None else store.eval_matrix()

    def collect(self):
        """Stage 1 from the store: no executions, just loads."""
        if self._corpus is None:
            from ..api.events import CollectionFinished, CorpusLoaded

            self._emit(
                CorpusLoaded(
                    n_traces=len(self.store),
                    n_pass=self.store.n_pass,
                    n_fail=self.store.n_fail,
                )
            )
            corpus = self.store.labeled_corpus()
            if not corpus.failures:
                raise CorpusError("corpus has no failed traces to debug from")
            if not corpus.successes:
                raise CorpusError(
                    "corpus has no successful traces to debug from"
                )
            signature = corpus.dominant_failure_signature()
            self._signature = signature
            self._corpus = corpus.restrict_failures(signature)
            self._emit(
                CollectionFinished(
                    n_success=len(self._corpus.successes),
                    n_fail=len(self._corpus.failures),
                    signature=signature,
                )
            )
        return self._corpus

    def _evaluate_logs(self, traces) -> list[PredicateLog]:
        """Evaluate through the sharded memo, shard-parallel when the
        session's engine has workers to offer."""
        return self.matrix.logs_for(
            self._suite, traces, engine=self.config.engine
        )

    def _evaluation_counters(self):
        """Matrix counters: fresh ``evaluate`` calls vs memo answers."""
        return self.matrix.pair_evaluations, self.matrix.pair_hits

    def _kernel_calls(self):
        """Kernel batches the matrix dispatched for the fresh pairs."""
        return self.matrix.kernel_calls

    def _workload_key(self) -> str:
        """Outcome-cache namespace for corpus-backed runs.

        Uses the corpus contents (sorted fingerprints) rather than
        collection quotas: two sessions over the same stored traces share
        memoized intervention outcomes no matter how the corpus was
        assembled.
        """
        from ..sim.serialize import stable_digest

        key = (
            f"{self.program.name}#corpus-{stable_digest(sorted(self.store.entries))}"
            f"@{self.config.max_steps}"
        )
        if self.config.extractors is not None:
            names = ",".join(
                sorted(type(e).__name__ for e in self.config.extractors)
            )
            key += f"!x[{names}]"
        return key

    def save(self) -> None:
        """Persist the sharded evaluation matrix and the store manifests."""
        self.store.save()
        self.matrix.save()
