"""The approaches compared in the paper's evaluation (Section 7.2).

================  ==========  ==============  =============  ============
Approach          ordering    branch pruning  Def.2 pruning  uses AC-DAG
================  ==========  ==============  =============  ============
AID               topological yes             yes            fully
AID-P             topological yes             no             structure
AID-P-B           topological no              no             order only
TAGT              random      no              no             no
LINEAR            random      —               —              no
================  ==========  ==============  =============  ============

All approaches always derive the correct causal predicates (they share
GIWP's counterfactual logic); they differ only in the *number of
intervention rounds* — which is exactly what Figure 8 plots.
"""

from __future__ import annotations

import random
from enum import Enum
from typing import TYPE_CHECKING, Optional

from .acdag import ACDag
from .discovery import DiscoveryResult, causal_path_discovery, linear_discovery
from .intervention import InterventionRunner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.engine import ExecutionEngine


class Approach(str, Enum):
    AID = "AID"
    AID_P = "AID-P"
    AID_P_B = "AID-P-B"
    TAGT = "TAGT"
    LINEAR = "LINEAR"


#: Approach -> (branch_pruning, observational_pruning, ordering)
_CONFIG = {
    Approach.AID: (True, True, "topological"),
    Approach.AID_P: (True, False, "topological"),
    Approach.AID_P_B: (False, False, "topological"),
    Approach.TAGT: (False, False, "random"),
}


def discover(
    approach: Approach | str,
    dag: ACDag,
    runner: InterventionRunner,
    rng: Optional[random.Random] = None,
    engine: Optional["ExecutionEngine"] = None,
) -> DiscoveryResult:
    """Run one approach end to end and return its discovery result.

    All intervened executions route through ``engine`` (or the runner's
    own engine when not given); the approach only decides *which* groups
    are requested, never *how* they run.
    """
    approach = Approach(approach)
    if approach is Approach.LINEAR:
        return linear_discovery(dag, runner, rng=rng)
    branch, obs_pruning, ordering = _CONFIG[approach]
    return causal_path_discovery(
        dag,
        runner,
        branch_pruning=branch,
        observational_pruning=obs_pruning,
        ordering=ordering,
        rng=rng,
        engine=engine,
    )


def all_approaches() -> list[Approach]:
    """The four approaches of Figure 8, strongest first."""
    return [Approach.AID, Approach.AID_P, Approach.AID_P_B, Approach.TAGT]
