"""Human-readable explanations — and the machine-readable report schema.

The paper's headline deliverable is not just the root cause but the
*story*: "(1) two threads race on an index variable (2) the second
thread accesses the array beyond its size (3) this throws
IndexOutOfRange (4) the application fails to handle it and crashes."
This module turns a :class:`~repro.core.discovery.DiscoveryResult` plus
the predicate definitions into exactly that kind of numbered narrative.

It is also the home of the **versioned report JSON schema**
(:data:`REPORT_SCHEMA_VERSION`): :func:`report_to_dict` renders a
:class:`~repro.harness.session.SessionReport` as a deterministic,
JSON-able dict — the one payload shape shared by ``repro run --json``,
the benchmarks, and the test suite — and :func:`validate_report_dict`
checks a payload against the schema, returning actionable problems.
The dict is a pure function of the analysis results (no wall-clock
times, no machine state), so two runs that computed the same thing
serialize byte-identically.  The one deliberate exception is the
additive ``meta`` key: its ``run_id`` and ``metrics`` stay ``None``
unless observability was explicitly attached to the run (see
:mod:`repro.obs`), in which case they carry the run id and the metrics
snapshot — and only they differ between two otherwise-identical runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from .discovery import DiscoveryResult
from .predicates import PredicateDef

REPORT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ExplanationStep:
    """One hop of the causal path."""

    index: int
    pid: str
    description: str
    role: str  # "root cause" | "effect" | "failure"


@dataclass
class Explanation:
    """The causal path rendered as a numbered narrative."""

    steps: list[ExplanationStep]
    n_rounds: int
    n_executions: int

    @property
    def root_cause(self) -> Optional[ExplanationStep]:
        return self.steps[0] if len(self.steps) > 1 else None

    def render(self) -> str:
        if len(self.steps) <= 1:
            return (
                "No causal predicate was confirmed; the available "
                "predicates do not explain the failure."
            )
        lines = ["Causal explanation of the failure:"]
        for step in self.steps:
            lines.append(f"  ({step.index}) [{step.role}] {step.description}")
        lines.append(
            f"Derived with {self.n_rounds} intervention rounds "
            f"({self.n_executions} executions)."
        )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def render_sd_ranking(
    stats: "list",
    defs: Mapping[str, PredicateDef],
    limit: int = 20,
) -> str:
    """What classic statistical debugging hands the developer.

    A ranked list of predicates with precision/recall — no root cause
    singled out, no causal story.  Rendered so examples and the CLI can
    put the paper's motivating contrast (SD's flat list vs. AID's causal
    path) side by side.
    """
    lines = ["Statistical debugging output (ranked by F1):"]
    for stat in stats[:limit]:
        pred = defs.get(stat.pid)
        description = pred.description if pred is not None else stat.pid
        lines.append(
            f"  P={stat.precision:4.2f} R={stat.recall:4.2f}  {description}"
        )
    hidden = max(0, len(stats) - limit)
    if hidden:
        lines.append(f"  … and {hidden} more predicates")
    lines.append(
        "(every line is a *suspect*; SD leaves choosing and connecting "
        "them to the developer)"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The versioned report schema
# ---------------------------------------------------------------------------


def explanation_to_dict(explanation: Explanation) -> dict:
    return {
        "steps": [
            {
                "index": step.index,
                "pid": step.pid,
                "role": step.role,
                "description": step.description,
            }
            for step in explanation.steps
        ],
        "text": explanation.render(),
    }


def report_to_dict(report) -> dict:
    """Render a session report as the versioned JSON payload.

    ``report`` is duck-typed (any object with the
    :class:`~repro.harness.session.SessionReport` attributes), so this
    module stays independent of the harness.  ``kind`` is ``"session"``
    when interventions ran (discovery + explanation present) and
    ``"analysis"`` for analyze-only runs (both sections ``None``).
    """
    discovery = report.discovery
    collection = None
    if report.corpus is not None:
        collection = {
            "n_success": len(report.corpus.successes),
            "n_fail": len(report.corpus.failures),
        }
    elif report.n_success is not None or report.n_fail is not None:
        collection = {
            "n_success": report.n_success or 0,
            "n_fail": report.n_fail or 0,
        }
    program = report.program.name if report.program is not None else None
    if program is None:
        program = getattr(report, "program_name", None)
    graph = report.dag.graph
    payload: dict = {
        "schema": REPORT_SCHEMA_VERSION,
        # Observability metadata: run_id and metrics stay None unless a
        # repro.obs.ObsContext was attached — the rest of the payload is
        # byte-identical with observability on or off (metrics carry
        # wall-clock, so stamping them unconditionally would break the
        # "pure function of the analysis results" invariant above).
        "meta": {
            "schema_version": REPORT_SCHEMA_VERSION,
            "run_id": getattr(report, "run_id", None),
            "metrics": getattr(report, "metrics", None),
        },
        "kind": "session" if discovery is not None else "analysis",
        "program": program,
        "approach": report.approach.value if report.approach else None,
        "signature": report.signature,
        "collection": collection,
        "predicates": {
            "n_extracted": len(report.suite),
            "n_fully_discriminative": len(report.fully_discriminative),
            "fully_discriminative": list(report.fully_discriminative),
        },
        "dag": {
            "n_nodes": graph.number_of_nodes(),
            "n_edges": graph.number_of_edges(),
            "nodes": sorted(graph.nodes),
            "edges": sorted([u, v] for u, v in graph.edges),
        },
        "discovery": None,
        "explanation": None,
    }
    if discovery is not None:
        payload["discovery"] = {
            "causal_path": list(discovery.causal_path),
            "failure": discovery.failure,
            "root_cause": discovery.root_cause,
            "spurious": list(discovery.spurious),
            "n_rounds": discovery.n_rounds,
            "n_executions": discovery.n_executions,
        }
    if report.explanation is not None:
        payload["explanation"] = explanation_to_dict(report.explanation)
    return payload


#: schema key → (required, type-or-None-allowed) — the shape checked by
#: :func:`validate_report_dict`
_TOP_LEVEL_KEYS = {
    "schema": (int, False),
    "meta": (dict, False),
    "kind": (str, False),
    "program": (str, True),
    "approach": (str, True),
    "signature": (str, True),
    "collection": (dict, True),
    "predicates": (dict, False),
    "dag": (dict, False),
    "discovery": (dict, True),
    "explanation": (dict, True),
}


def validate_report_dict(payload: object) -> list[str]:
    """Check a payload against the report schema; returns problems.

    An empty list means the payload is a valid version-
    |REPORT_SCHEMA_VERSION| report.  Problems are dotted-path-prefixed
    and actionable (what was expected, what was found).
    """
    if not isinstance(payload, dict):
        return [f"expected an object, got {type(payload).__name__}"]
    problems: list[str] = []
    if payload.get("schema") != REPORT_SCHEMA_VERSION:
        problems.append(
            f"schema: expected {REPORT_SCHEMA_VERSION}, "
            f"got {payload.get('schema')!r}"
        )
    for key, (expected, nullable) in _TOP_LEVEL_KEYS.items():
        if key not in payload:
            # "meta" arrived in-version as an additive key: payloads
            # written before it are still valid version-1 reports.
            if key != "meta":
                problems.append(f"{key}: missing")
            continue
        value = payload[key]
        if value is None:
            if not nullable:
                problems.append(f"{key}: must not be null")
            continue
        if not isinstance(value, expected):
            problems.append(
                f"{key}: expected {expected.__name__}, "
                f"got {type(value).__name__}"
            )
    unknown = sorted(set(payload) - set(_TOP_LEVEL_KEYS))
    if unknown:
        problems.append(
            f"unknown key {unknown[0]!r} "
            f"(valid: {', '.join(sorted(_TOP_LEVEL_KEYS))})"
        )
    if problems:
        return problems

    meta = payload.get("meta")
    if isinstance(meta, dict):
        for subkey in ("schema_version", "run_id", "metrics"):
            if subkey not in meta:
                problems.append(f"meta.{subkey}: missing")
        if meta.get("schema_version") != payload["schema"]:
            problems.append(
                f"meta.schema_version: expected {payload['schema']}, "
                f"got {meta.get('schema_version')!r}"
            )
    kind = payload["kind"]
    if kind not in ("session", "analysis"):
        problems.append(
            f"kind: expected 'session' or 'analysis', got {kind!r}"
        )
    if kind == "session":
        for key in ("discovery", "explanation"):
            if payload[key] is None:
                problems.append(f"{key}: required for kind 'session'")
    for key, subkeys in (
        ("predicates", ("n_extracted", "n_fully_discriminative",
                        "fully_discriminative")),
        ("dag", ("n_nodes", "n_edges", "nodes", "edges")),
    ):
        for subkey in subkeys:
            if subkey not in payload[key]:
                problems.append(f"{key}.{subkey}: missing")
    discovery = payload.get("discovery")
    if isinstance(discovery, dict):
        for subkey in ("causal_path", "failure", "n_rounds", "n_executions"):
            if subkey not in discovery:
                problems.append(f"discovery.{subkey}: missing")
    explanation = payload.get("explanation")
    if isinstance(explanation, dict):
        for subkey in ("steps", "text"):
            if subkey not in explanation:
                problems.append(f"explanation.{subkey}: missing")
    return problems


def explain(
    result: DiscoveryResult, defs: Mapping[str, PredicateDef]
) -> Explanation:
    """Build an explanation from a discovery result."""
    steps: list[ExplanationStep] = []
    path = result.causal_path
    for i, pid in enumerate(path):
        if i == len(path) - 1:
            role = "failure"
        elif i == 0:
            role = "root cause"
        else:
            role = "effect"
        pred = defs.get(pid)
        description = pred.description if pred is not None else pid
        steps.append(
            ExplanationStep(index=i + 1, pid=pid, description=description, role=role)
        )
    return Explanation(
        steps=steps,
        n_rounds=result.n_rounds,
        n_executions=result.n_executions,
    )
