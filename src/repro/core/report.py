"""Human-readable explanations of discovered causal paths.

The paper's headline deliverable is not just the root cause but the
*story*: "(1) two threads race on an index variable (2) the second
thread accesses the array beyond its size (3) this throws
IndexOutOfRange (4) the application fails to handle it and crashes."
This module turns a :class:`~repro.core.discovery.DiscoveryResult` plus
the predicate definitions into exactly that kind of numbered narrative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from .discovery import DiscoveryResult
from .predicates import PredicateDef


@dataclass(frozen=True)
class ExplanationStep:
    """One hop of the causal path."""

    index: int
    pid: str
    description: str
    role: str  # "root cause" | "effect" | "failure"


@dataclass
class Explanation:
    """The causal path rendered as a numbered narrative."""

    steps: list[ExplanationStep]
    n_rounds: int
    n_executions: int

    @property
    def root_cause(self) -> Optional[ExplanationStep]:
        return self.steps[0] if len(self.steps) > 1 else None

    def render(self) -> str:
        if len(self.steps) <= 1:
            return (
                "No causal predicate was confirmed; the available "
                "predicates do not explain the failure."
            )
        lines = ["Causal explanation of the failure:"]
        for step in self.steps:
            lines.append(f"  ({step.index}) [{step.role}] {step.description}")
        lines.append(
            f"Derived with {self.n_rounds} intervention rounds "
            f"({self.n_executions} executions)."
        )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def render_sd_ranking(
    stats: "list",
    defs: Mapping[str, PredicateDef],
    limit: int = 20,
) -> str:
    """What classic statistical debugging hands the developer.

    A ranked list of predicates with precision/recall — no root cause
    singled out, no causal story.  Rendered so examples and the CLI can
    put the paper's motivating contrast (SD's flat list vs. AID's causal
    path) side by side.
    """
    lines = ["Statistical debugging output (ranked by F1):"]
    for stat in stats[:limit]:
        pred = defs.get(stat.pid)
        description = pred.description if pred is not None else stat.pid
        lines.append(
            f"  P={stat.precision:4.2f} R={stat.recall:4.2f}  {description}"
        )
    hidden = max(0, len(stats) - limit)
    if hidden:
        lines.append(f"  … and {hidden} more predicates")
    lines.append(
        "(every line is a *suspect*; SD leaves choosing and connecting "
        "them to the developer)"
    )
    return "\n".join(lines)


def explain(
    result: DiscoveryResult, defs: Mapping[str, PredicateDef]
) -> Explanation:
    """Build an explanation from a discovery result."""
    steps: list[ExplanationStep] = []
    path = result.causal_path
    for i, pid in enumerate(path):
        if i == len(path) - 1:
            role = "failure"
        elif i == 0:
            role = "root cause"
        else:
            role = "effect"
        pred = defs.get(pid)
        description = pred.description if pred is not None else pid
        steps.append(
            ExplanationStep(index=i + 1, pid=pid, description=description, role=role)
        )
    return Explanation(
        steps=steps,
        n_rounds=result.n_rounds,
        n_executions=result.n_executions,
    )
