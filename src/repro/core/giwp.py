"""GIWP — Group Intervention With Pruning (paper Algorithm 1).

A divide-and-conquer adaptive group-testing loop over *items*
(predicates, or branch disjunctions during branch pruning):

1. pick the first half of the remaining pool in topological order
   (ties broken randomly);
2. intervene on the whole half in one round;
3. if the failure stopped, the half contains a counterfactual cause —
   confirm it directly (singleton) or recurse;
4. if the failure persisted, every intervened item is spurious
   (counterfactual causes cannot co-exist with the failure);
5. either way, apply Definition 2 to the non-intervened candidates:
   any item that reaches no intervened item and shows a counterfactual
   violation on an intervened run is pruned *without being intervened
   on* — this observational pruning is AID's main savings over
   traditional group testing.

Implementation note on pruning scope: Algorithm 1 writes the pruning
scan as ``P − P1`` of the current call, but the paper's illustrative
example (Section 5.2, steps 6-7) prunes predicates that belong to an
*enclosing* call's pool.  We therefore scan the global remaining pool,
which matches the example and is strictly more powerful while applying
the identical per-item rule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from .intervention import InterventionRunner, RunOutcome

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.engine import ExecutionEngine
from .pruning import (
    GroupItem,
    ReachesFn,
    failure_stopped,
    observational_prunes,
)


@dataclass
class RoundRecord:
    """One intervention round, for reporting/verification."""

    intervened: tuple[str, ...]
    stopped: bool
    pruned_by_observation: tuple[str, ...] = ()
    confirmed_causal: tuple[str, ...] = ()


@dataclass
class GIWPResult:
    """Output of Algorithm 1: disjoint causal and spurious item sets."""

    causal: list[GroupItem] = field(default_factory=list)
    spurious: list[GroupItem] = field(default_factory=list)
    rounds: list[RoundRecord] = field(default_factory=list)

    @property
    def causal_pids(self) -> list[str]:
        return [i.pid for i in self.causal]

    @property
    def spurious_pids(self) -> list[str]:
        return [i.pid for i in self.spurious]

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)


def topological_item_order(
    items: Sequence[GroupItem],
    levels: Sequence[Sequence[str]],
    rng: random.Random,
) -> list[GroupItem]:
    """Order items by topological level, shuffling ties randomly.

    ``levels`` is a level decomposition over item pids (from
    :meth:`ACDag.topological_levels` for predicates, or a single level
    for branches).  Items absent from ``levels`` sort last.
    """
    position = {pid: i for i, level in enumerate(levels) for pid in level}
    buckets: dict[int, list[GroupItem]] = {}
    for item in items:
        buckets.setdefault(position.get(item.pid, len(levels)), []).append(item)
    ordered: list[GroupItem] = []
    for level in sorted(buckets):
        bucket = sorted(buckets[level], key=lambda i: i.pid)
        rng.shuffle(bucket)
        ordered.extend(bucket)
    return ordered


class GIWP:
    """Runs Algorithm 1 over a pool of items.

    Parameters
    ----------
    runner:
        Intervention runner; every :meth:`InterventionRunner.run_group`
        call is one intervention round (count via
        :class:`~repro.core.intervention.CountingRunner`).
    reaches:
        ``reaches(a, b)`` — whether item a reaches item b in the AC-DAG
        (always False between branch items).
    observational_pruning:
        Definition 2 pruning of non-intervened items (lines 15-17).
        Disabled for the AID-P / AID-P-B ablations and TAGT.
    engine:
        Optional execution engine (usually the runner's own); rounds are
        marked on its stats so :class:`~repro.exec.stats.ExecStats` can
        report algorithm-level round counts next to execution counts.
    phase:
        Stats label for this GIWP instance's rounds (``giwp`` for the
        chain phase, ``branch`` during branch pruning).
    """

    def __init__(
        self,
        runner: InterventionRunner,
        reaches: ReachesFn,
        observational_pruning: bool = True,
        probe_all_first: bool = False,
        on_round: Optional[Callable[[RoundRecord], None]] = None,
        engine: Optional["ExecutionEngine"] = None,
        phase: str = "giwp",
    ) -> None:
        self.runner = runner
        self.reaches = reaches
        self.observational_pruning = observational_pruning
        #: Classic group-testing opener: intervene on the whole pool
        #: once.  If the failure persists, *everything* is spurious for
        #: the price of one round.  Used at junctions, where the single-
        #: causal-path assumption makes all-noise pools the common case.
        self.probe_all_first = probe_all_first
        self.on_round = on_round
        self.engine = engine if engine is not None else getattr(
            runner, "engine", None
        )
        self.phase = phase

    def _finish_round(self, record: RoundRecord) -> None:
        if self.engine is not None:
            self.engine.note_round(self.phase)
        if self.on_round is not None:
            self.on_round(record)

    def run(self, items: Sequence[GroupItem]) -> GIWPResult:
        """Resolve every item as causal or spurious."""
        result = GIWPResult()
        remaining: dict[str, GroupItem] = {i.pid: i for i in items}
        order = {item.pid: idx for idx, item in enumerate(items)}
        if self.probe_all_first and len(items) > 1:
            outcomes = self.runner.run_group(
                frozenset().union(*(i.predicates for i in items))
            )
            record = RoundRecord(
                intervened=tuple(i.pid for i in items),
                stopped=failure_stopped(outcomes),
            )
            result.rounds.append(record)
            self._finish_round(record)
            if not record.stopped:
                for item in list(items):
                    self._mark_spurious(item, remaining, result)
                return result
        self._solve(list(items), remaining, order, result)
        return result

    # -- internals --------------------------------------------------------

    def _solve(
        self,
        pool: list[GroupItem],
        remaining: dict[str, GroupItem],
        order: dict[str, int],
        result: GIWPResult,
    ) -> None:
        while True:
            pool = [i for i in pool if i.pid in remaining]
            if not pool:
                return
            half = pool[: (len(pool) + 1) // 2]
            outcomes = self.runner.run_group(
                frozenset().union(*(i.predicates for i in half))
            )
            record = RoundRecord(
                intervened=tuple(i.pid for i in half),
                stopped=failure_stopped(outcomes),
            )
            if record.stopped and len(half) == 1:
                # A single intervened item stopping the failure is a
                # confirmed counterfactual cause (Alg. 1 line 8).
                remaining.pop(half[0].pid, None)
                result.causal.append(half[0])
                record.confirmed_causal = (half[0].pid,)
            elif not record.stopped:
                # Failure survived the repairs: nothing intervened is a
                # counterfactual cause (Alg. 1 line 14).
                for item in half:
                    self._mark_spurious(item, remaining, result)
            record.pruned_by_observation = self._prune_observational(
                half, outcomes, remaining, order, result
            )
            result.rounds.append(record)
            self._finish_round(record)
            if record.stopped and len(half) > 1:
                # The half hides at least one cause: recurse (line 10).
                self._solve(list(half), remaining, order, result)

    def _prune_observational(
        self,
        half: Sequence[GroupItem],
        outcomes: Sequence[RunOutcome],
        remaining: dict[str, GroupItem],
        order: dict[str, int],
        result: GIWPResult,
    ) -> tuple[str, ...]:
        if not self.observational_pruning:
            return ()
        candidates = sorted(remaining.values(), key=lambda i: order.get(i.pid, 0))
        pruned = observational_prunes(candidates, half, outcomes, self.reaches)
        for item in pruned:
            self._mark_spurious(item, remaining, result)
        return tuple(i.pid for i in pruned)

    def _mark_spurious(self, item, remaining, result) -> None:
        if item.pid in remaining:
            remaining.pop(item.pid)
            result.spurious.append(item)
