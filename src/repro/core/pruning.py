"""Interventional pruning — the paper's Definition 2.

Given executions ``R_C`` that intervene on a predicate group ``C``:

* every ``C ∈ C`` is pruned iff some ``r ∈ R_C`` still fails
  (an intervened counterfactual cause *cannot* co-exist with the
  failure, so surviving failure proves non-causality);
* any other predicate ``P ∉ C`` is pruned iff it does **not** reach any
  intervened predicate in the AC-DAG (``P ̸⤳ C``; ancestors are exempt
  because the intervention may have muted their effect) and some run
  shows a counterfactual violation:
  ``(P(r) ∧ ¬F(r)) ∨ (¬P(r) ∧ F(r))``.

These checks are shared by GIWP and branch pruning, so they live here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from .intervention import RunOutcome


@dataclass(frozen=True)
class GroupItem:
    """Unit of group intervention: a predicate or a branch disjunction.

    ``predicates`` is the set of pids to repair when intervening on the
    item (singleton for a plain predicate, all members for a branch —
    a disjunction is false only when every disjunct is).  The item is
    *observed* on a run when any of its predicates is.
    """

    pid: str
    predicates: frozenset[str]

    @classmethod
    def single(cls, pid: str) -> "GroupItem":
        return cls(pid=pid, predicates=frozenset({pid}))

    @classmethod
    def disjunction(cls, pid: str, members: frozenset[str]) -> "GroupItem":
        return cls(pid=pid, predicates=members)

    def observed(self, outcome: RunOutcome) -> bool:
        return bool(self.predicates & outcome.observed)

    def __str__(self) -> str:
        return self.pid


ReachesFn = Callable[[GroupItem, GroupItem], bool]


def failure_stopped(outcomes: Sequence[RunOutcome]) -> bool:
    """Whether no intervened execution exhibited the failure (Alg.1 l.6)."""
    return not any(o.failed for o in outcomes)


def counterfactual_violation(
    item: GroupItem, outcomes: Sequence[RunOutcome]
) -> bool:
    """``∃r: (P(r) ∧ ¬F(r)) ∨ (¬P(r) ∧ F(r))`` (Alg.1 line 16)."""
    for outcome in outcomes:
        observed = item.observed(outcome)
        if observed != outcome.failed:
            return True
    return False


def observational_prunes(
    candidates: Sequence[GroupItem],
    intervened: Sequence[GroupItem],
    outcomes: Sequence[RunOutcome],
    reaches: ReachesFn,
) -> list[GroupItem]:
    """Definition 2 applied to the non-intervened candidates.

    Returns the items to prune: those that reach no intervened item yet
    show a counterfactual violation on some intervened run.
    """
    intervened_set = {i.pid for i in intervened}
    pruned: list[GroupItem] = []
    for item in candidates:
        if item.pid in intervened_set:
            continue
        if any(reaches(item, target) for target in intervened):
            continue  # ancestors' effects may be muted; never prune them
        if counterfactual_violation(item, outcomes):
            pruned.append(item)
    return pruned
