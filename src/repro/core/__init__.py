"""``repro.core`` — the AID pipeline (the paper's contribution).

Stages, in data-flow order:

1. :mod:`~repro.core.extraction` — traces → predicate logs;
2. :mod:`~repro.core.statistical` — logs → fully-discriminative set;
3. :mod:`~repro.core.acdag` + :mod:`~repro.core.precedence` —
   temporal precedence → Approximate Causal DAG;
4. :mod:`~repro.core.discovery` (Algorithm 3) orchestrating
   :mod:`~repro.core.branch` (Algorithm 2) and :mod:`~repro.core.giwp`
   (Algorithm 1) over an :mod:`~repro.core.intervention` runner;
5. :mod:`~repro.core.report` — causal path → narrative explanation.

:mod:`~repro.core.variants` exposes the evaluation's approach ladder
(AID / AID-P / AID-P-B / TAGT / LINEAR) and :mod:`~repro.core.theory`
the Section 6 bounds.
"""

from .acdag import ACDag, Branch, GraphInvariantError
from .branch import BranchPruneResult, branch_prune
from .discovery import DiscoveryResult, causal_path_discovery, linear_discovery
from .evalkernel import (
    BitsetCounter,
    CorpusSummary,
    SuiteKernel,
    popcount_split,
    summarize_corpus,
)
from .extraction import (
    CompoundConjunctionExtractor,
    DataRaceExtractor,
    DurationExtractor,
    Extractor,
    FailureExtractor,
    MethodExecutedExtractor,
    MethodFailsExtractor,
    OrderViolationExtractor,
    PredicateSuite,
    TWO_PHASE_EXTRACTORS,
    WrongReturnExtractor,
    default_extractors,
)
from .giwp import GIWP, GIWPResult, RoundRecord, topological_item_order
from .intervention import (
    CountingRunner,
    InterventionBudget,
    InterventionRunner,
    RunOutcome,
    ScriptedRunner,
    SimulationRunner,
)
from .precedence import (
    EndTimePolicy,
    KindAnchorPolicy,
    LamportAnchorPolicy,
    PrecedencePolicy,
    StartTimePolicy,
    default_policy,
)
from .predicates import (
    CompoundAndPredicate,
    DataRacePredicate,
    ExecutedPredicate,
    FailurePredicate,
    MethodFailsPredicate,
    Observation,
    OrderViolationPredicate,
    PredicateDef,
    PredicateKind,
    TooFastPredicate,
    TooSlowPredicate,
    WrongReturnPredicate,
)
from .pruning import GroupItem, counterfactual_violation, observational_prunes
from .report import Explanation, ExplanationStep, explain, render_sd_ranking
from .statistical import (
    PredicateLog,
    PredicateStats,
    StatisticalDebugger,
    split_logs,
)
from .variants import Approach, all_approaches, discover

__all__ = [
    "ACDag",
    "Approach",
    "BitsetCounter",
    "Branch",
    "BranchPruneResult",
    "CompoundAndPredicate",
    "CompoundConjunctionExtractor",
    "CorpusSummary",
    "CountingRunner",
    "DataRaceExtractor",
    "DataRacePredicate",
    "DiscoveryResult",
    "DurationExtractor",
    "ExecutedPredicate",
    "EndTimePolicy",
    "Explanation",
    "ExplanationStep",
    "Extractor",
    "FailureExtractor",
    "FailurePredicate",
    "GIWP",
    "GIWPResult",
    "GraphInvariantError",
    "GroupItem",
    "InterventionBudget",
    "InterventionRunner",
    "KindAnchorPolicy",
    "LamportAnchorPolicy",
    "MethodExecutedExtractor",
    "MethodFailsExtractor",
    "MethodFailsPredicate",
    "Observation",
    "OrderViolationExtractor",
    "OrderViolationPredicate",
    "PrecedencePolicy",
    "PredicateDef",
    "PredicateKind",
    "PredicateLog",
    "PredicateStats",
    "PredicateSuite",
    "RoundRecord",
    "RunOutcome",
    "ScriptedRunner",
    "SimulationRunner",
    "StartTimePolicy",
    "StatisticalDebugger",
    "SuiteKernel",
    "TWO_PHASE_EXTRACTORS",
    "TooFastPredicate",
    "TooSlowPredicate",
    "WrongReturnPredicate",
    "all_approaches",
    "branch_prune",
    "causal_path_discovery",
    "counterfactual_violation",
    "default_extractors",
    "default_policy",
    "discover",
    "explain",
    "linear_discovery",
    "observational_prunes",
    "popcount_split",
    "render_sd_ranking",
    "split_logs",
    "summarize_corpus",
    "topological_item_order",
]
