"""The single-pass evaluation kernel: indexed traces in, bitsets out.

Role
----
Everything AID computes reduces to one inner loop — evaluate every
predicate of a frozen suite against every execution trace, then count
discriminative power.  This module is that loop, made single-pass at
every layer:

* :class:`SuiteKernel` — key-grouped batch evaluation of a frozen
  suite over one trace.  Predicates are grouped by
  :class:`~repro.core.predicates.PredicateKind` at kernel-build time
  (once per frozen suite); per trace the kernel resolves the trace's
  :meth:`~repro.sim.tracing.ExecutionTrace.executions_by_key` index
  once and drives every key-based predicate through its
  ``evaluate_indexed`` hook — no linear scans, no re-sorting, no
  per-predicate trace walks.  Output is byte-identical to calling
  ``pred.evaluate(trace)`` per predicate (asserted property-style in
  the tests).
* :class:`BitsetCounter` — the popcount counting kernel shared by
  :class:`~repro.core.statistical.StatisticalDebugger`, the corpus
  :class:`~repro.corpus.matrix.EvalMatrix`, and the shard-parallel
  pipeline: per-pid observation bitsets over execution columns plus a
  failed-column mask turn precision/recall counting into two
  ``int.bit_count`` calls (:func:`popcount_split`).
* :class:`CorpusSummary` — the **propose** half of two-phase extractor
  discovery: one pass over each trace collects every per-trace fact the
  default extractor catalogue needs (exception sites, duration/return
  aggregates, key presence, success-order pairs via a sort-based sweep,
  race candidates, failure signatures).  Summaries form a commutative
  monoid under :meth:`CorpusSummary.merge`, so the propose phase fans
  out over trace chunks through :class:`~repro.exec.engine.ExecutionEngine`
  (:func:`summarize_corpus`) and reduces to the same summary for any
  job count.  The serial **calibrate** phase (envelope/order-baseline
  intersection) lives with the extractors in
  :mod:`repro.core.extraction`.

Invariants
----------
* kernel evaluation equals per-predicate evaluation — same
  :class:`Observation` objects, same observation order;
* ``summarize_corpus(engine=N jobs)`` equals the serial fold — every
  summary field is order-independent under merge (unions,
  intersections, min/max, sums, distinct-caps);
* nothing here persists; the kernel and summaries are derived state,
  rebuilt from traces on demand.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Sequence

from ..sim.tracing import MethodExecution, MethodKey
from .predicates import Observation, PredicateDef, PredicateKind, racy_window

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.engine import ExecutionEngine

#: Exception kinds that mark harness artifacts, not program behaviour
#: (re-exported by :mod:`repro.core.extraction` for its extractors).
IGNORED_EXCEPTIONS = frozenset({"Unfinished"})


# ---------------------------------------------------------------------------
# Key-grouped batch evaluation
# ---------------------------------------------------------------------------


class SuiteKernel:
    """Batch evaluator for one frozen predicate-definition table.

    Built once per suite (see
    :meth:`~repro.core.extraction.PredicateSuite.kernel`): predicates
    supporting the indexed protocol are grouped by kind into flat
    ``(pid, evaluate_indexed)`` lists; the rest (failure predicates,
    compounds, third-party classes) keep their whole-trace ``evaluate``.
    Per trace, one key-index resolution serves every group.
    """

    def __init__(self, defs: Mapping[str, PredicateDef]) -> None:
        #: the suite's pid order — kernel output preserves it exactly
        self.pids: tuple[str, ...] = tuple(defs)
        self._indexed: list[tuple[PredicateKind, list[tuple[str, object]]]] = []
        self._general: list[tuple[str, object]] = []
        self._columnar: list[tuple[str, object]] = []
        groups: dict[PredicateKind, list[tuple[str, object]]] = {}
        col_groups: dict[PredicateKind, list[tuple[str, object]]] = {}
        for pid, pred in defs.items():
            if pred.supports_indexed:
                groups.setdefault(pred.kind, []).append(
                    (pid, pred.evaluate_indexed)
                )
            else:
                self._general.append((pid, pred.evaluate))
            if pred.supports_columnar:
                col_groups.setdefault(pred.kind, []).append(
                    (pid, pred.evaluate_columnar)
                )
        # Deterministic group order: the catalogue enum's order.
        for kind in PredicateKind:
            if kind in groups:
                self._indexed.append((kind, groups[kind]))
            if kind in col_groups:
                self._columnar.extend(col_groups[kind])
        #: pids the shard-columnar sweep can serve (the rest go through
        #: the per-trace object paths).
        self.columnar_pids: frozenset[str] = frozenset(
            pid for pid, _ in self._columnar
        )

    def observations(
        self, trace, only: Optional[frozenset | set] = None
    ) -> dict[str, Observation]:
        """Evaluate the suite on one trace in a single indexed pass.

        ``only`` restricts evaluation to a pid subset (the eval matrix
        passes its undecided pids).  The returned dict is ordered by the
        suite's definition order — identical, entry for entry, to the
        per-predicate loop it replaces.
        """
        by_key = getattr(trace, "executions_by_key", None)
        find = by_key().get if by_key is not None else trace.lookup
        found: dict[str, Observation] = {}
        for _, group in self._indexed:
            for pid, evaluate_indexed in group:
                if only is not None and pid not in only:
                    continue
                obs = evaluate_indexed(find)
                if obs is not None:
                    found[pid] = obs
        for pid, evaluate in self._general:
            if only is not None and pid not in only:
                continue
            obs = evaluate(trace)
            if obs is not None:
                found[pid] = obs
        if not found:
            return found
        # Kind-grouped evaluation filled ``found`` out of suite order;
        # restore the definition order the per-predicate loop had.
        return {pid: found[pid] for pid in self.pids if pid in found}

    def sweep(
        self, table, only: Optional[frozenset | set] = None
    ) -> dict[str, dict[int, Observation]]:
        """Evaluate the columnar-capable suite subset over a whole shard.

        One pass per predicate over the shard's
        :class:`~repro.corpus.columnar.ShardTable` column runs; returns
        ``{pid: {trace_row: Observation}}`` for every swept pid (pids in
        ``only`` that are not columnar-capable are simply absent — the
        caller routes them through :meth:`observations`).  For each
        table row the result equals the per-trace evaluation, asserted
        property-style in tests/test_columnar.py.
        """
        results: dict[str, dict[int, Observation]] = {}
        for pid, evaluate_columnar in self._columnar:
            if only is not None and pid not in only:
                continue
            results[pid] = evaluate_columnar(table)
        return results


# ---------------------------------------------------------------------------
# The popcount counting kernel
# ---------------------------------------------------------------------------


def popcount_split(bits: int, failed_mask: int) -> tuple[int, int]:
    """``(in_failed, in_success)`` for one observation bitset.

    The one counting primitive behind every SD statistic in the repo:
    a row's failed-column popcount and its complement.
    """
    in_failed = (bits & failed_mask).bit_count()
    return in_failed, bits.bit_count() - in_failed


class BitsetCounter:
    """Columnar observation bitsets over a growing set of executions.

    One column per execution, one arbitrary-precision-int row per
    observed pid, plus a failed-column mask: precision/recall counting
    is :func:`popcount_split` per pid instead of a rescan of every log.
    """

    __slots__ = ("n_columns", "failed_mask", "observed")

    def __init__(self) -> None:
        self.n_columns = 0
        self.failed_mask = 0
        #: pid -> bitset over columns (bit set = predicate observed)
        self.observed: dict[str, int] = {}

    def add_column(self, pids: Iterable[str], failed: bool) -> int:
        """Append one execution's observed-pid set; returns its column."""
        column = self.n_columns
        self.n_columns = column + 1
        bit = 1 << column
        if failed:
            self.failed_mask |= bit
        observed = self.observed
        for pid in pids:
            observed[pid] = observed.get(pid, 0) | bit
        return column

    @property
    def n_failed(self) -> int:
        return self.failed_mask.bit_count()

    @property
    def n_success(self) -> int:
        return self.n_columns - self.failed_mask.bit_count()

    def counts(self, pid: str) -> tuple[int, int]:
        """(true_in_failed, true_in_success) by popcount."""
        return popcount_split(self.observed.get(pid, 0), self.failed_mask)


# ---------------------------------------------------------------------------
# Two-phase discovery: the propose half
# ---------------------------------------------------------------------------


@dataclass
class DistinctCap:
    """"How many distinct values?" capped at two — all any extractor asks.

    Tracks a stream of values by equality: after absorbing any number of
    them it knows whether none, exactly one, or more than one distinct
    value appeared (``value`` is meaningful only in the exactly-one
    case).  Merging two caps is order-independent for that question,
    which is what makes per-chunk summaries reducible.
    """

    seen: bool = False
    multi: bool = False
    value: object = None

    def add(self, value: object) -> None:
        if not self.seen:
            self.seen = True
            self.value = value
        elif not self.multi and value != self.value:
            self.multi = True

    def merge(self, other: "DistinctCap") -> None:
        if not other.seen:
            return
        if not self.seen:
            self.seen, self.multi, self.value = True, other.multi, other.value
            return
        if other.multi or other.value != self.value:
            self.multi = True

    @property
    def single(self) -> Optional[object]:
        """The unique value, or ``None`` when none or several."""
        return self.value if self.seen and not self.multi else None


@dataclass
class KeyStats:
    """Per-:class:`MethodKey` aggregates over one side of the corpus.

    ``n_completed``/durations/returns cover *completed* executions
    (``exception is None``) — the only ones the duration and return
    extractors reason about.  ``returns`` ingests hashable values only
    on the success side (mirroring the extractors' ``_hashable`` filter)
    and every completed value on the failure side (distinctness there is
    by equality, which is all the mismatch test needs).
    """

    n_present: int = 0
    n_completed: int = 0
    min_duration: int = 0
    max_duration: int = 0
    returns: DistinctCap = field(default_factory=DistinctCap)

    def add_completed(self, duration: int) -> None:
        if self.n_completed == 0:
            self.min_duration = self.max_duration = duration
        else:
            if duration < self.min_duration:
                self.min_duration = duration
            if duration > self.max_duration:
                self.max_duration = duration
        self.n_completed += 1

    def merge(self, other: "KeyStats") -> None:
        self.n_present += other.n_present
        if other.n_completed:
            if self.n_completed == 0:
                self.min_duration = other.min_duration
                self.max_duration = other.max_duration
            else:
                self.min_duration = min(self.min_duration, other.min_duration)
                self.max_duration = max(self.max_duration, other.max_duration)
            self.n_completed += other.n_completed
        self.returns.merge(other.returns)


def ordered_cross_thread_pairs(
    execs: Sequence[MethodExecution],
) -> set[tuple[MethodKey, MethodKey]]:
    """Strictly-ordered cross-thread pairs of one trace, by sweep.

    ``execs`` must be in start-time order (what ``method_executions``
    yields).  For each invocation the candidates that start at or after
    its end form a suffix of the start-sorted list, found by bisection —
    output-sensitive O(k log k + pairs) instead of the all-pairs
    O(k²) comparison walk, with an identical result set.
    """
    starts = [m.start_time for m in execs]
    pairs: set[tuple[MethodKey, MethodKey]] = set()
    for mf in execs:
        first_key = mf.key
        thread = mf.thread
        for ms in execs[bisect_left(starts, mf.end_time):]:
            if ms.thread != thread:
                pairs.add((first_key, ms.key))
    return pairs


def race_candidates(trace) -> set[tuple[MethodKey, MethodKey, str]]:
    """Canonicalized lockset-race candidate triples of one trace.

    The per-trace half of
    :class:`~repro.core.extraction.DataRaceExtractor`: every overlapping
    cross-thread invocation pair sharing an object where
    :func:`~repro.core.predicates.racy_window` fires.
    """
    candidates: set[tuple[MethodKey, MethodKey, str]] = set()
    execs = trace.method_executions()
    for i, ma in enumerate(execs):
        a_objs = {a.obj for a in ma.accesses}
        for mb in execs[i + 1:]:
            if ma.thread == mb.thread or not ma.overlaps(mb):
                continue
            shared = a_objs & {a.obj for a in mb.accesses}
            for obj in shared:
                if racy_window(ma, mb, obj) is not None:
                    pair = tuple(sorted([ma.key, mb.key]))
                    candidates.add((pair[0], pair[1], obj))
    return candidates


@dataclass
class CorpusSummary:
    """Everything the default extractor catalogue needs to calibrate,
    collected in one pass per trace and mergeable across chunks.

    The ``need_*`` flags scope the propose pass to what the present
    extractor stack will actually calibrate from — a failure-signature
    stack must not pay for the O(calls²) race walk or the ordered-pairs
    sweep.  Summaries merged together must share the same flags.
    """

    #: collect the per-execution aggregates (exception sites, duration/
    #: return stats, presence, windows) — any key-based extractor
    need_stats: bool = True
    #: run the per-success ordered-pairs sweep — OrderViolationExtractor
    need_order: bool = True
    #: run the per-trace race-candidate walk — DataRaceExtractor
    need_races: bool = True
    n_traces: int = 0
    n_failures: int = 0
    #: (key, exception kind) sites seen anywhere, harness kinds excluded
    failing: set[tuple[MethodKey, str]] = field(default_factory=set)
    #: per-key aggregates over successful / failed traces
    succ_stats: dict[MethodKey, KeyStats] = field(default_factory=dict)
    fail_stats: dict[MethodKey, KeyStats] = field(default_factory=dict)
    #: key -> number of traces (either label) containing it
    presence: dict[MethodKey, int] = field(default_factory=dict)
    #: strictly-ordered cross-thread pairs in *every* success
    #: (``None`` until the first success is absorbed)
    ordered: Optional[set[tuple[MethodKey, MethodKey]]] = None
    #: per-key latest end / earliest start over successful traces
    latest_end: dict[MethodKey, int] = field(default_factory=dict)
    earliest_start: dict[MethodKey, int] = field(default_factory=dict)
    races: set[tuple[MethodKey, MethodKey, str]] = field(default_factory=set)
    signatures: set[str] = field(default_factory=set)
    #: per failed trace: key -> (start_time, end_time)
    fail_windows: list[dict[MethodKey, tuple[int, int]]] = field(
        default_factory=list
    )

    # -- the propose phase ------------------------------------------------

    def absorb_trace(self, trace, failed: bool) -> None:
        """Fold one labeled trace into the summary (single pass)."""
        self.n_traces += 1
        window: dict[MethodKey, tuple[int, int]] = {}
        if self.need_stats:
            execs = trace.method_executions()
            side = self.fail_stats if failed else self.succ_stats
            for m in execs:
                key = m.key
                exc = m.exception
                if exc and exc not in IGNORED_EXCEPTIONS:
                    self.failing.add((key, exc))
                stats = side.get(key)
                if stats is None:
                    stats = side[key] = KeyStats()
                stats.n_present += 1
                if exc is None:
                    stats.add_completed(m.duration)
                    value = m.return_value
                    if failed:
                        stats.returns.add(value)
                    elif _hashable(value):
                        stats.returns.add(value)
                self.presence[key] = self.presence.get(key, 0) + 1
                if failed:
                    window[key] = (m.start_time, m.end_time)
                else:
                    end = self.latest_end.get(key, 0)
                    if m.end_time > end:
                        self.latest_end[key] = m.end_time
                    start = self.earliest_start.get(key)
                    if start is None or m.start_time < start:
                        self.earliest_start[key] = m.start_time
        if failed:
            self.n_failures += 1
            if trace.failure is not None:
                self.signatures.add(trace.failure.signature)
            if self.need_stats:
                self.fail_windows.append(window)
        elif self.need_order:
            pairs = ordered_cross_thread_pairs(trace.method_executions())
            self.ordered = (
                pairs if self.ordered is None else self.ordered & pairs
            )
        if self.need_races:
            self.races |= race_candidates(trace)

    # -- the monoid -------------------------------------------------------

    def merge(self, other: "CorpusSummary") -> "CorpusSummary":
        """Fold another summary in; chunk merges commute (same result
        for any chunking), ``fail_windows`` keeps chunk order."""
        self.n_traces += other.n_traces
        self.n_failures += other.n_failures
        self.failing |= other.failing
        for mine, theirs in (
            (self.succ_stats, other.succ_stats),
            (self.fail_stats, other.fail_stats),
        ):
            for key, stats in theirs.items():
                ours = mine.get(key)
                if ours is None:
                    mine[key] = stats
                else:
                    ours.merge(stats)
        for key, count in other.presence.items():
            self.presence[key] = self.presence.get(key, 0) + count
        if other.ordered is not None:
            self.ordered = (
                set(other.ordered)
                if self.ordered is None
                else self.ordered & other.ordered
            )
        for key, end in other.latest_end.items():
            if end > self.latest_end.get(key, 0):
                self.latest_end[key] = end
        for key, start in other.earliest_start.items():
            mine_start = self.earliest_start.get(key)
            if mine_start is None or start < mine_start:
                self.earliest_start[key] = start
        self.races |= other.races
        self.signatures |= other.signatures
        self.fail_windows.extend(other.fail_windows)
        return self


def summarize_corpus(
    successes: Sequence,
    failures: Sequence,
    engine: Optional["ExecutionEngine"] = None,
    chunks_per_job: int = 4,
    need_stats: bool = True,
    need_order: bool = True,
    need_races: bool = True,
) -> CorpusSummary:
    """The propose phase over a labeled corpus, optionally fanned out.

    With an engine whose backend has more than one job, traces are
    folded in contiguous chunks across the backend (each worker
    summarizes its chunk; the parent merges in chunk order).  The merged
    summary is identical for any job count — chunk merges commute.
    The ``need_*`` flags scope the pass to what the caller's extractor
    stack calibrates from (see :class:`CorpusSummary`).
    """
    items = [(t, False) for t in successes] + [(t, True) for t in failures]

    def new_summary() -> CorpusSummary:
        return CorpusSummary(
            need_stats=need_stats,
            need_order=need_order,
            need_races=need_races,
        )

    jobs = engine.backend.jobs if engine is not None else 1
    if jobs <= 1 or len(items) < 2:
        summary = new_summary()
        for trace, failed in items:
            summary.absorb_trace(trace, failed)
        return summary

    n_chunks = min(len(items), jobs * chunks_per_job)
    step = -(-len(items) // n_chunks)  # ceil division
    bounds = [
        (lo, min(lo + step, len(items))) for lo in range(0, len(items), step)
    ]

    def summarize_chunk(bound: tuple[int, int]) -> CorpusSummary:
        summary = new_summary()
        for trace, failed in items[bound[0]:bound[1]]:
            summary.absorb_trace(trace, failed)
        return summary

    parts = engine.dispatch(summarize_chunk, bounds)
    merged = parts[0]
    for part in parts[1:]:
        merged.merge(part)
    return merged


def _hashable(value: object) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True
