"""Temporal-precedence policies for AC-DAG construction (paper §4).

Deciding whether predicate P1 "temporally precedes" P2 is subtle when
observations are time *windows* rather than points.  The paper's two
worked cases:

* Case 1 — "foo() runs slow" vs. "bar() runs slow" where foo() awaits
  bar(): the callee's slowness causes the caller's, so **end time**
  implies precedence.
* Case 2 — "foo() starts late" vs. "bar() starts late": lateness
  propagates forward, so **start time** implies precedence.

The policy abstraction maps each (predicate, observation) pair to a
scalar anchor timestamp; P1 precedes P2 on a log iff anchor(P1) <
anchor(P2).  Because each log then induces a strict weak order, and an
AC-DAG edge requires agreement across *all* failed logs, the resulting
relation is guaranteed acyclic (any cycle would need τ1 < τ2 < … < τ1
inside a single log).  This realizes the paper's requirement that *any*
conservative precedence heuristic is admissible as long as it cannot
create cycles — false edges are pruned later by interventions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from .predicates import Observation, PredicateDef, PredicateKind

#: Kinds whose misbehaviour is only knowable when the window closes:
#: failures and wrong values.  Their anchor is the window end.
_END_ANCHORED = {
    PredicateKind.METHOD_FAILS,
    PredicateKind.WRONG_RETURN,
    PredicateKind.FAILURE,
}

#: Kinds whose misbehaviour exists as soon as the window opens: races,
#: order violations, early starts/fast runs — and slowness, whose window
#: opens at the instant the duration envelope is exceeded (the
#: observation already encodes that, see TooSlowPredicate.evaluate).
#: Anchor is the window start.
_START_ANCHORED = {
    PredicateKind.DATA_RACE,
    PredicateKind.TOO_SLOW,
    PredicateKind.ORDER_VIOLATION,
    PredicateKind.TOO_FAST,
    PredicateKind.EXECUTED,
    PredicateKind.COMPOUND_AND,
}


class PrecedencePolicy:
    """Maps (predicate, observation) to a scalar anchor timestamp."""

    def anchor(self, pred: PredicateDef, obs: Observation) -> float:
        raise NotImplementedError

    def precedes(
        self,
        p1: PredicateDef,
        o1: Observation,
        p2: PredicateDef,
        o2: Observation,
    ) -> bool:
        """Strict precedence of P1 before P2 on one log."""
        return self.anchor(p1, o1) < self.anchor(p2, o2)


@dataclass
class KindAnchorPolicy(PrecedencePolicy):
    """The default policy: anchor per predicate kind (paper's Case 1/2).

    ``overrides`` lets a workload pin specific kinds to "start" or
    "end" anchoring without subclassing.
    """

    overrides: Mapping[PredicateKind, str] = field(default_factory=dict)

    def anchor(self, pred: PredicateDef, obs: Observation) -> float:
        mode = self.overrides.get(pred.kind)
        if mode is None:
            mode = "end" if pred.kind in _END_ANCHORED else "start"
        if mode == "end":
            return float(obs.end)
        if mode == "start":
            return float(obs.start)
        raise ValueError(f"unknown anchor mode {mode!r}")


@dataclass
class LamportAnchorPolicy(KindAnchorPolicy):
    """Kind-anchored policy over Lamport timestamps (paper Section 4).

    The paper notes that physical clocks may be too coarse, or skewed
    across cores/machines, and suggests logical clocks.  This policy
    anchors on the Lamport timestamps attached to observations when
    available, falling back to virtual time otherwise.  Lamport order is
    consistent with happens-before, so true causal edges are preserved;
    like any scalar anchor it may add non-causal edges, which the
    interventions prune.
    """

    def anchor(self, pred: PredicateDef, obs: Observation) -> float:
        mode = self.overrides.get(pred.kind)
        if mode is None:
            mode = "end" if pred.kind in _END_ANCHORED else "start"
        if mode == "end":
            if obs.end_lamport is not None:
                return float(obs.end_lamport)
            return float(obs.end)
        if obs.start_lamport is not None:
            return float(obs.start_lamport)
        return float(obs.start)


@dataclass
class StartTimePolicy(PrecedencePolicy):
    """Anchor everything at the window start (most aggressive)."""

    def anchor(self, pred: PredicateDef, obs: Observation) -> float:
        return float(obs.start)


@dataclass
class EndTimePolicy(PrecedencePolicy):
    """Anchor everything at the window end (most conservative)."""

    def anchor(self, pred: PredicateDef, obs: Observation) -> float:
        return float(obs.end)


def default_policy() -> PrecedencePolicy:
    return KindAnchorPolicy()
