"""Intervention execution: re-running the application under repairs.

The intervention algorithms (GIWP, branch pruning, TAGT) are written
against a minimal abstraction — :class:`InterventionRunner` — so they
work identically over

* :class:`SimulationRunner` — re-executes a simulated program with the
  fault injections that repair the selected predicates (the real AID
  pipeline), and
* the ground-truth oracle used by the synthetic benchmark
  (:mod:`repro.workloads.synthetic`), which answers from a known causal
  model without execution.

One call to :meth:`InterventionRunner.run_group` is one *intervention
round* in the paper's accounting (its cost is re-executing the
application, possibly several times because failures are
nondeterministic — footnote 1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Protocol, Sequence

from ..sim.faults import Intervention, InterventionSet
from ..sim.scheduler import Simulator
from .extraction import PredicateSuite


@dataclass(frozen=True)
class RunOutcome:
    """What one intervened execution showed.

    ``observed`` holds the pids of all predicates that evaluated true on
    the intervened run; ``failed`` tells whether the failure (same
    signature) still occurred.  Both feed the pruning rule
    (Definition 2).
    """

    observed: frozenset[str]
    failed: bool
    seed: int = 0


class InterventionRunner(Protocol):
    """One intervention round: repair ``pids``, re-run, report outcomes."""

    def run_group(self, pids: frozenset[str]) -> Sequence[RunOutcome]:
        ...  # pragma: no cover - protocol


@dataclass
class InterventionBudget:
    """Counts rounds and executions across one discovery session."""

    rounds: int = 0
    executions: int = 0
    history: list[tuple[frozenset[str], bool]] = field(default_factory=list)

    def record(self, pids: frozenset[str], outcomes: Sequence[RunOutcome]) -> None:
        self.rounds += 1
        self.executions += len(outcomes)
        self.history.append((pids, any(o.failed for o in outcomes)))


@dataclass
class CountingRunner:
    """Wraps a runner, recording every round on a shared budget."""

    inner: InterventionRunner
    budget: InterventionBudget = field(default_factory=InterventionBudget)

    def run_group(self, pids: frozenset[str]) -> Sequence[RunOutcome]:
        outcomes = self.inner.run_group(pids)
        self.budget.record(pids, outcomes)
        return outcomes


class SimulationRunner:
    """Intervention runner backed by the concurrency simulator.

    Parameters
    ----------
    simulator:
        Simulator for the target program.
    suite:
        Frozen predicate suite from the learning phase; used both to map
        pids to fault injections and to evaluate predicates on the
        intervened traces.
    failure_pid:
        The failure predicate F (an intervened run counts as "failed"
        only if the *same* failure signature recurs — a different crash
        is a different bug).
    seeds:
        Seeds to execute per round.  Pass the seeds that failed during
        the learning phase first: replaying known-bad interleavings is
        what makes a persisting failure show up quickly.
    early_stop:
        Stop the round at the first failing execution — a single
        counter-example suffices for every pruning decision the
        algorithms make (paper footnote 1).
    """

    def __init__(
        self,
        simulator: Simulator,
        suite: PredicateSuite,
        failure_pid: str,
        seeds: Sequence[int],
        early_stop: bool = True,
    ) -> None:
        if not seeds:
            raise ValueError("SimulationRunner needs at least one seed")
        self.simulator = simulator
        self.suite = suite
        self.failure_pid = failure_pid
        self.seeds = list(seeds)
        self.early_stop = early_stop

    def interventions_for(self, pids: Iterable[str]) -> tuple[Intervention, ...]:
        """Collect (deduplicated) fault injections repairing ``pids``."""
        collected: list[Intervention] = []
        seen: set[Intervention] = set()
        for pid in sorted(pids):
            for item in self.suite[pid].interventions():
                if item not in seen:
                    seen.add(item)
                    collected.append(item)
        return tuple(collected)

    def run_group(self, pids: frozenset[str]) -> list[RunOutcome]:
        injections = InterventionSet(self.interventions_for(pids))
        outcomes: list[RunOutcome] = []
        for seed in self.seeds:
            result = self.simulator.run(seed, injections)
            log = self.suite.evaluate(result.trace, seed=seed)
            failed = log.observed(self.failure_pid)
            outcomes.append(
                RunOutcome(
                    observed=frozenset(log.observations),
                    failed=failed,
                    seed=seed,
                )
            )
            if failed and self.early_stop:
                break
        return outcomes


@dataclass
class ScriptedRunner:
    """Deterministic runner for tests: outcomes scripted per pid-set.

    ``script`` maps a frozenset of intervened pids to the outcomes to
    return; ``default`` is returned for unscripted groups.  Useful for
    unit-testing algorithm logic in isolation.
    """

    script: dict[frozenset[str], Sequence[RunOutcome]]
    default: Optional[Sequence[RunOutcome]] = None

    def run_group(self, pids: frozenset[str]) -> Sequence[RunOutcome]:
        if pids in self.script:
            return self.script[pids]
        if self.default is not None:
            return self.default
        raise KeyError(f"no scripted outcome for intervention on {sorted(pids)}")
