"""Intervention execution: re-running the application under repairs.

The intervention algorithms (GIWP, branch pruning, TAGT) are written
against a minimal abstraction — :class:`InterventionRunner` — so they
work identically over

* :class:`SimulationRunner` — re-executes a simulated program with the
  fault injections that repair the selected predicates (the real AID
  pipeline), and
* the ground-truth oracle used by the synthetic benchmark
  (:mod:`repro.workloads.synthetic`), which answers from a known causal
  model without execution.

One call to :meth:`InterventionRunner.run_group` is one *intervention
round* in the paper's accounting (its cost is re-executing the
application, possibly several times because failures are
nondeterministic — footnote 1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Protocol, Sequence

from ..sim.faults import Intervention, InterventionSet
from ..sim.scheduler import Simulator
from .extraction import PredicateSuite

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.cache import RunRequest
    from ..exec.engine import ExecutionEngine


@dataclass(frozen=True)
class RunOutcome:
    """What one intervened execution showed.

    ``observed`` holds the pids of all predicates that evaluated true on
    the intervened run; ``failed`` tells whether the failure (same
    signature) still occurred.  Both feed the pruning rule
    (Definition 2).
    """

    observed: frozenset[str]
    failed: bool
    seed: int = 0


class InterventionRunner(Protocol):
    """One intervention round: repair ``pids``, re-run, report outcomes."""

    def run_group(self, pids: frozenset[str]) -> Sequence[RunOutcome]:
        ...  # pragma: no cover - protocol


@dataclass
class InterventionBudget:
    """Counts rounds and executions across one discovery session."""

    rounds: int = 0
    executions: int = 0
    history: list[tuple[frozenset[str], bool]] = field(default_factory=list)

    def record(self, pids: frozenset[str], outcomes: Sequence[RunOutcome]) -> None:
        self.rounds += 1
        self.executions += len(outcomes)
        self.history.append((pids, any(o.failed for o in outcomes)))


@dataclass
class CountingRunner:
    """Wraps a runner, recording every round on a shared budget."""

    inner: InterventionRunner
    budget: InterventionBudget = field(default_factory=InterventionBudget)

    def run_group(self, pids: frozenset[str]) -> Sequence[RunOutcome]:
        outcomes = self.inner.run_group(pids)
        self.budget.record(pids, outcomes)
        return outcomes

    def run_group_batch(
        self, groups: Sequence[frozenset[str]]
    ) -> list[Sequence[RunOutcome]]:
        """Independent rounds in one dispatch, each recorded in order."""
        groups = list(groups)
        inner_batch = getattr(self.inner, "run_group_batch", None)
        if inner_batch is None:
            return [self.run_group(pids) for pids in groups]
        results = inner_batch(groups)
        for pids, outcomes in zip(groups, results):
            self.budget.record(pids, outcomes)
        return results

    @property
    def engine(self) -> Optional["ExecutionEngine"]:
        return getattr(self.inner, "engine", None)


class SimulationRunner:
    """Intervention runner backed by the concurrency simulator.

    Parameters
    ----------
    simulator:
        Simulator for the target program.
    suite:
        Frozen predicate suite from the learning phase; used both to map
        pids to fault injections and to evaluate predicates on the
        intervened traces.
    failure_pid:
        The failure predicate F (an intervened run counts as "failed"
        only if the *same* failure signature recurs — a different crash
        is a different bug).
    seeds:
        Seeds to execute per round.  Pass the seeds that failed during
        the learning phase first: replaying known-bad interleavings is
        what makes a persisting failure show up quickly.
    early_stop:
        Stop the round at the first failing execution — a single
        counter-example suffices for every pruning decision the
        algorithms make (paper footnote 1).
    engine:
        Execution engine the runs are routed through.  The default
        (serial backend, in-memory cache) reproduces the historical
        in-line loop bit-identically while memoizing repeated groups.
    workload:
        Cache-key namespace for this runner's executions.  Must change
        whenever the predicate suite or simulator would produce
        different outcomes for the same ``(seed, pids)``; defaults to
        the program name plus the step budget.
    """

    def __init__(
        self,
        simulator: Simulator,
        suite: PredicateSuite,
        failure_pid: str,
        seeds: Sequence[int],
        early_stop: bool = True,
        engine: Optional["ExecutionEngine"] = None,
        workload: Optional[str] = None,
    ) -> None:
        if not seeds:
            raise ValueError("SimulationRunner needs at least one seed")
        self.simulator = simulator
        self.suite = suite
        self.failure_pid = failure_pid
        self.seeds = list(seeds)
        self.early_stop = early_stop
        if engine is None:
            from ..exec.engine import ExecutionEngine

            engine = ExecutionEngine()
        self.engine = engine
        self.workload = workload or (
            f"{simulator.program.name}@{simulator.max_steps}"
        )
        self._injections: dict[frozenset[str], InterventionSet] = {}

    def interventions_for(self, pids: Iterable[str]) -> tuple[Intervention, ...]:
        """Collect (deduplicated) fault injections repairing ``pids``."""
        collected: list[Intervention] = []
        seen: set[Intervention] = set()
        for pid in sorted(pids):
            for item in self.suite[pid].interventions():
                if item not in seen:
                    seen.add(item)
                    collected.append(item)
        return tuple(collected)

    def _injection_set(self, pids: frozenset[str]) -> InterventionSet:
        cached = self._injections.get(pids)
        if cached is None:
            cached = InterventionSet(self.interventions_for(pids))
            self._injections[pids] = cached
        return cached

    def execute_request(self, request: "RunRequest") -> RunOutcome:
        """One intervened execution — the engine's ``run_fn``."""
        injections = self._injection_set(request.pids)
        result = self.simulator.run(request.seed, injections)
        log = self.suite.evaluate(result.trace, seed=request.seed)
        return RunOutcome(
            observed=frozenset(log.observations),
            failed=log.observed(self.failure_pid),
            seed=request.seed,
        )

    def _requests(self, pids: frozenset[str]) -> list["RunRequest"]:
        from ..exec.cache import RunRequest

        return [RunRequest(self.workload, seed, pids) for seed in self.seeds]

    def run_group(self, pids: frozenset[str]) -> list[RunOutcome]:
        return list(
            self.engine.run_group(
                self._requests(pids),
                self.execute_request,
                early_stop=self.early_stop,
            )
        )

    def run_group_batch(
        self, groups: Sequence[frozenset[str]]
    ) -> list[list[RunOutcome]]:
        """Independent rounds dispatched as one batch (LINEAR, probes)."""
        return [
            list(outcomes)
            for outcomes in self.engine.run_independent_groups(
                [self._requests(pids) for pids in groups],
                self.execute_request,
                early_stop=self.early_stop,
            )
        ]


@dataclass
class ScriptedRunner:
    """Deterministic runner for tests: outcomes scripted per pid-set.

    ``script`` maps a frozenset of intervened pids to the outcomes to
    return; ``default`` is returned for unscripted groups.  Useful for
    unit-testing algorithm logic in isolation.
    """

    script: dict[frozenset[str], Sequence[RunOutcome]]
    default: Optional[Sequence[RunOutcome]] = None

    def run_group(self, pids: frozenset[str]) -> Sequence[RunOutcome]:
        if pids in self.script:
            return self.script[pids]
        if self.default is not None:
            return self.default
        raise KeyError(f"no scripted outcome for intervention on {sorted(pids)}")
