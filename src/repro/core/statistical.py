"""Statistical debugging (SD): precision/recall over predicate logs.

Given predicate logs labeled successful/failed, SD scores each predicate
by how well it discriminates failures (paper Section 2):

.. math::

    \\text{precision}(P) =
        \\frac{\\#\\text{failed executions where } P}{\\#\\text{executions where } P}
    \\qquad
    \\text{recall}(P) =
        \\frac{\\#\\text{failed executions where } P}{\\#\\text{failed executions}}

AID consumes only *fully-discriminative* predicates — precision and
recall both 100% — because counterfactual causality is meaningless for a
predicate that sometimes co-occurs with success (Sections 2-3).

Counting is bitset-backed: both debuggers answer ``stats()`` from the
shared popcount kernel (:mod:`repro.core.evalkernel`) instead of
rescanning their logs — the batch :class:`StatisticalDebugger` keeps a
lazily-synced :class:`~repro.core.evalkernel.BitsetCounter` over its log
list, the :class:`IncrementalDebugger` keeps plain integer counters
maintained per insertion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from .evalkernel import BitsetCounter
from .predicates import Observation


@dataclass
class PredicateLog:
    """All predicate observations from one execution."""

    observations: Mapping[str, Observation]
    failed: bool
    seed: int = 0
    failure_signature: Optional[str] = None

    def observed(self, pid: str) -> bool:
        return pid in self.observations

    def time_of(self, pid: str) -> Optional[Observation]:
        return self.observations.get(pid)


@dataclass(frozen=True)
class PredicateStats:
    """Discriminative-power statistics for one predicate."""

    pid: str
    true_in_failed: int
    true_in_success: int
    n_failed: int
    n_success: int

    @property
    def precision(self) -> float:
        total_true = self.true_in_failed + self.true_in_success
        return self.true_in_failed / total_true if total_true else 0.0

    @property
    def recall(self) -> float:
        return self.true_in_failed / self.n_failed if self.n_failed else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def fully_discriminative(self) -> bool:
        return self.precision == 1.0 and self.recall == 1.0 and self.n_failed > 0


@dataclass
class StatisticalDebugger:
    """Computes SD statistics over a corpus of predicate logs.

    Logs are the source of truth (``logs`` stays a plain list the AC-DAG
    and tests read directly); counting is answered from a lazily-synced
    :class:`~repro.core.evalkernel.BitsetCounter` — each log is folded
    into per-pid observation bitsets exactly once, and every ``stats()``
    call after that is pure popcounts.  The log list is treated as
    append-only; replacing it (or shrinking it) resets the counter.
    """

    logs: list[PredicateLog] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._counter = BitsetCounter()
        self._synced_logs = self.logs
        self._synced_count = 0

    def add(self, log: PredicateLog) -> None:
        self.logs.append(log)

    def extend(self, logs: Iterable[PredicateLog]) -> None:
        self.logs.extend(logs)

    def _counts(self) -> BitsetCounter:
        """The popcount counter, folded forward to the current logs."""
        if self._synced_logs is not self.logs or self._synced_count > len(
            self.logs
        ):
            self._counter = BitsetCounter()
            self._synced_logs = self.logs
            self._synced_count = 0
        counter = self._counter
        while self._synced_count < len(self.logs):
            log = self.logs[self._synced_count]
            counter.add_column(log.observations, log.failed)
            self._synced_count += 1
        return counter

    @property
    def n_failed(self) -> int:
        return self._counts().n_failed

    @property
    def n_success(self) -> int:
        return self._counts().n_success

    def all_pids(self) -> list[str]:
        return sorted(self._counts().observed)

    def observed_in_failed(self, pid: str) -> int:
        """How many failed logs observe ``pid`` (one popcount)."""
        return self._counts().counts(pid)[0]

    def stats(self) -> dict[str, PredicateStats]:
        """Per-predicate precision/recall statistics, by popcount."""
        counter = self._counts()
        n_failed, n_success = counter.n_failed, counter.n_success
        result: dict[str, PredicateStats] = {}
        for pid in sorted(counter.observed):
            in_failed, in_success = counter.counts(pid)
            result[pid] = PredicateStats(
                pid=pid,
                true_in_failed=in_failed,
                true_in_success=in_success,
                n_failed=n_failed,
                n_success=n_success,
            )
        return result

    def discriminative(self, min_precision: float = 1.0, min_recall: float = 1.0):
        """Predicates meeting the precision/recall thresholds, ranked.

        With default thresholds this returns the *fully-discriminative*
        set that feeds the AC-DAG.
        """
        selected = [
            s
            for s in self.stats().values()
            if s.precision >= min_precision and s.recall >= min_recall
        ]
        return sorted(selected, key=lambda s: (-s.f1, s.pid))

    def fully_discriminative_pids(self) -> list[str]:
        return [s.pid for s in self.discriminative(1.0, 1.0)]

    def ranked(self) -> list[PredicateStats]:
        """All predicates ranked by F1 (classic SD output, for contrast).

        This is what a traditional statistical debugger hands the
        developer: a long list with no causal structure.  AID's
        improvement over this list is the whole point of the paper.
        """
        return sorted(self.stats().values(), key=lambda s: (-s.f1, s.pid))


@dataclass
class IncrementalDebugger:
    """SD statistics maintained under log insertions, no rescans.

    The corpus pipeline's view-maintenance core (in the spirit of
    Berkholz et al.'s FO+MOD incremental evaluation): instead of
    recomputing precision/recall over the whole corpus per
    :meth:`StatisticalDebugger.stats`, keep running counters and update
    them in O(|observations|) per inserted log.  Outputs are asserted
    equal to the batch debugger in the test suite.

    Key monotonicity fact the AC-DAG maintenance relies on: the
    fully-discriminative set only *shrinks* under insertions.  A pid with
    ``true_in_success > 0`` can never regain precision 1, and a pid that
    missed one failed log can never regain recall 1.
    """

    n_failed: int = 0
    n_success: int = 0
    #: pid -> [true_in_failed, true_in_success]
    counts: dict[str, list[int]] = field(default_factory=dict)

    def add(self, log: PredicateLog) -> None:
        self.add_observed(log.observations, failed=log.failed)

    def extend(self, logs: Iterable[PredicateLog]) -> None:
        for log in logs:
            self.add(log)

    def add_observed(self, pids: Iterable[str], failed: bool) -> None:
        """Insert one execution given just its observed-pid set."""
        idx = 0 if failed else 1
        if failed:
            self.n_failed += 1
        else:
            self.n_success += 1
        for pid in pids:
            self.counts.setdefault(pid, [0, 0])[idx] += 1

    def merge(self, other: "IncrementalDebugger") -> "IncrementalDebugger":
        """Fold another debugger's counters into this one.

        Counters are plain sums, so merging per-shard debuggers (each
        built over a disjoint slice of the corpus) equals one debugger
        built over the whole corpus — the reduction step of the
        shard-parallel analyze.  Returns ``self`` for chaining.
        """
        self.n_failed += other.n_failed
        self.n_success += other.n_success
        for pid, (in_failed, in_success) in other.counts.items():
            counters = self.counts.setdefault(pid, [0, 0])
            counters[0] += in_failed
            counters[1] += in_success
        return self

    @property
    def n_logs(self) -> int:
        return self.n_failed + self.n_success

    def all_pids(self) -> list[str]:
        return sorted(self.counts)

    def stats(self) -> dict[str, PredicateStats]:
        """Per-predicate statistics, built straight from the counters."""
        return {
            pid: PredicateStats(
                pid=pid,
                true_in_failed=in_failed,
                true_in_success=in_success,
                n_failed=self.n_failed,
                n_success=self.n_success,
            )
            for pid, (in_failed, in_success) in self.counts.items()
        }

    def fully_discriminative_pids(self) -> list[str]:
        """Precision = recall = 1 straight off the counters."""
        return sorted(
            pid
            for pid, (in_failed, in_success) in self.counts.items()
            if in_success == 0 and in_failed == self.n_failed and self.n_failed
        )


def split_logs(
    logs: Iterable[PredicateLog],
) -> tuple[list[PredicateLog], list[PredicateLog]]:
    """Partition logs into (successful, failed)."""
    succ: list[PredicateLog] = []
    fail: list[PredicateLog] = []
    for log in logs:
        (fail if log.failed else succ).append(log)
    return succ, fail
