"""The Approximate Causal DAG (AC-DAG), paper Section 4.

Nodes are the fully-discriminative predicates plus the failure predicate
F; there is an edge P1 → P2 iff P1 temporally precedes P2 (per the
active :class:`~repro.core.precedence.PrecedencePolicy`) in **every**
failed log.  The relation is stored transitively closed — reachability
(the paper's ``P1 ⤳ P2``) is an edge test.

Guarantees established at build time:

* the graph is acyclic (enforced; see precedence module for why the
  anchor construction makes this structural);
* F is a node, and only *ancestors of F* are kept — a predicate with no
  temporal path to the failure cannot cause it (this is the step that
  discarded 30 of 72 predicates in the paper's Kafka case study);
* every kept predicate is observed in all failed logs (fully
  discriminative ⇒ recall 100%), realizing the counterfactual-causality
  exclusion rule of Section 4.

The class also provides the structural queries the intervention
algorithms need: topological levels, minimal elements ("lowest
topological level"), branch decomposition at junctions (Algorithm 2
line 10), and destructive node removal as pruning proceeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import networkx as nx

from .precedence import PrecedencePolicy, default_policy
from .predicates import PredicateDef
from .statistical import PredicateLog


class GraphInvariantError(RuntimeError):
    """The AC-DAG would violate a structural invariant (e.g. a cycle)."""


@dataclass
class Branch:
    """An independent branch at a junction (Algorithm 2, lines 10-11).

    ``head`` is the minimal predicate the branch is rooted at;
    ``members`` is ``{head} ∪ {Q : head ⤳ Q, no sibling reaches Q}``.
    Intervening on the branch means intervening on *all* members (a
    disjunction is false only when every disjunct is false).
    """

    head: str
    members: frozenset[str]

    @property
    def pid(self) -> str:
        return f"branch[{self.head}]"

    def __len__(self) -> int:
        return len(self.members)


class ACDag:
    """The approximate causal DAG over predicate ids."""

    def __init__(
        self,
        graph: nx.DiGraph,
        failure: str,
        defs: Optional[dict[str, PredicateDef]] = None,
        discarded: Optional[dict[str, str]] = None,
        n_failed_logs: int = 0,
    ) -> None:
        if failure not in graph:
            raise GraphInvariantError(f"failure predicate {failure!r} not in graph")
        if not nx.is_directed_acyclic_graph(graph):
            raise GraphInvariantError("AC-DAG contains a cycle")
        self.graph = graph
        self.failure = failure
        self.defs = defs or {}
        #: pid -> reason, for predicates dropped during construction
        self.discarded = discarded or {}
        #: how many failed logs support this DAG; every edge's ``support``
        #: attribute equals this (edge = precedes in *every* failed log)
        self.n_failed_logs = n_failed_logs

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        defs: dict[str, PredicateDef],
        failed_logs: Sequence[PredicateLog],
        failure: str,
        policy: Optional[PrecedencePolicy] = None,
        candidate_pids: Optional[Iterable[str]] = None,
    ) -> "ACDag":
        """Build the AC-DAG from fully-discriminative predicates.

        Parameters
        ----------
        defs:
            Predicate definitions (must cover every candidate pid).
        failed_logs:
            Logs of failed executions; temporal precedence must hold in
            all of them for an edge to exist.
        failure:
            The pid of the failure-indicating predicate F.
        policy:
            Precedence policy; defaults to the kind-anchored policy.
        candidate_pids:
            The fully-discriminative predicate ids (defaults to all of
            ``defs``).  F is always included.
        """
        if not failed_logs:
            raise GraphInvariantError("cannot build an AC-DAG without failed logs")
        policy = policy or default_policy()
        pids = set(candidate_pids) if candidate_pids is not None else set(defs)
        pids.add(failure)
        discarded: dict[str, str] = {}

        # Anchor timestamps per (log, pid).  A fully-discriminative
        # predicate must be observed in every failed log; drop violators
        # defensively (can happen when callers pass a lax candidate set).
        anchors: dict[str, list[float]] = {}
        for pid in sorted(pids):
            series: list[float] = []
            for log in failed_logs:
                obs = log.time_of(pid)
                if obs is None:
                    break
                series.append(policy.anchor(defs[pid], obs))
            if len(series) == len(failed_logs):
                anchors[pid] = series
            else:
                discarded[pid] = "not observed in every failed log"
        if failure not in anchors:
            raise GraphInvariantError(
                f"failure predicate {failure!r} unobserved in some failed log"
            )

        support = len(failed_logs)
        graph = nx.DiGraph()
        graph.add_nodes_from(anchors)
        nodes = sorted(set(anchors) - {failure})
        for i, p1 in enumerate(nodes):
            for p2 in nodes[i + 1 :]:
                s1, s2 = anchors[p1], anchors[p2]
                if all(a < b for a, b in zip(s1, s2)):
                    graph.add_edge(p1, p2, support=support)
                elif all(b < a for a, b in zip(s1, s2)):
                    graph.add_edge(p2, p1, support=support)
        # F is the terminal event of a failed execution: predicates that
        # never anchor after it precede it (ties allowed — the crash is
        # recorded at the instant its method dies).  Predicates anchored
        # strictly after F (post-crash cleanup) cannot cause it.
        f_series = anchors[failure]
        for pid in nodes:
            series = anchors[pid]
            if all(a <= f for a, f in zip(series, f_series)):
                graph.add_edge(pid, failure, support=support)
            elif all(f < a for a, f in zip(series, f_series)):
                graph.add_edge(failure, pid, support=support)

        # Keep only predicates that may cause F: its ancestors.
        keep = nx.ancestors(graph, failure) | {failure}
        for pid in list(graph.nodes):
            if pid not in keep:
                discarded[pid] = "no temporal path to the failure predicate"
                graph.remove_node(pid)

        return cls(
            graph=graph,
            failure=failure,
            defs=dict(defs),
            discarded=discarded,
            n_failed_logs=support,
        )

    @classmethod
    def merge(cls, dags: Sequence["ACDag"]) -> "ACDag":
        """Merge AC-DAGs built over disjoint failed-log sets (one per
        corpus shard) into the DAG a single build over all logs yields.

        An edge means "precedes in *every* failed log", so the merged
        edge set is the intersection of the per-shard edge sets, with
        per-edge support counters summed; nodes must survive every
        shard (a shard that discarded a pid proves the global build
        would too, since fewer logs can only *add* edges and therefore
        ancestors).  The ancestors-of-F filter is re-applied at the end.
        The merge is order-insensitive, hence deterministic however the
        shards were scheduled.
        """
        if not dags:
            raise GraphInvariantError("cannot merge zero AC-DAGs")
        first = dags[0]
        if any(d.failure != first.failure for d in dags):
            raise GraphInvariantError(
                "cannot merge AC-DAGs with different failure predicates"
            )
        if len(dags) == 1:
            return first.copy()
        nodes = set(first.graph.nodes)
        for other in dags[1:]:
            nodes &= set(other.graph.nodes)
        graph = nx.DiGraph()
        graph.add_nodes_from(sorted(nodes))
        for a, b in first.graph.edges:
            if (
                a in nodes
                and b in nodes
                and all(d.graph.has_edge(a, b) for d in dags[1:])
            ):
                graph.add_edge(
                    a, b, support=sum(d.graph[a][b]["support"] for d in dags)
                )
        discarded: dict[str, str] = {}
        for d in dags:
            discarded.update(d.discarded)
        for pid in set(first.graph.nodes) - nodes:
            discarded.setdefault(pid, "not observed in every failed log")
        merged = cls(
            graph=graph,
            failure=first.failure,
            defs=dict(first.defs),
            discarded=discarded,
            n_failed_logs=sum(d.n_failed_logs for d in dags),
        )
        merged._prune_non_ancestors()
        return merged

    # -- incremental maintenance (corpus ingestion) -------------------------
    #
    # The edge relation is "P1 precedes P2 in every failed log", so a new
    # failed log can only *remove* edges (an edge that held in all n logs
    # either also holds in log n+1 — its support counter advances to n+1
    # — or it dies).  Node-wise, the candidate set is the
    # fully-discriminative set, which likewise only shrinks under
    # insertions (see IncrementalDebugger).  Both facts together make the
    # AC-DAG maintainable without a rebuild; tests assert the patched
    # graph equals `ACDag.build` over the whole log history.

    def update_failed_log(
        self, log: PredicateLog, policy: Optional[PrecedencePolicy] = None
    ) -> set[str]:
        """Patch the DAG under one newly-ingested failed log.

        Drops nodes the log does not observe (their recall just fell
        below 1), drops edges whose precedence the log contradicts,
        advances surviving edges' support counters, and re-applies the
        ancestors-of-F filter.  Returns every pid removed.
        """
        policy = policy or default_policy()
        removed: set[str] = set()
        anchors: dict[str, float] = {}
        for pid in sorted(self.graph.nodes):
            obs = log.time_of(pid)
            if obs is None:
                if pid == self.failure:
                    raise GraphInvariantError(
                        f"failure predicate {self.failure!r} unobserved in "
                        "an ingested failed log (wrong failure signature?)"
                    )
                removed.add(pid)
                self.discarded[pid] = "not observed in every failed log"
                self.graph.remove_node(pid)
            else:
                anchors[pid] = policy.anchor(self.defs[pid], obs)
        for a, b, data in list(self.graph.edges(data=True)):
            # Ties with F are allowed (the crash is recorded at the
            # instant its method dies); all other precedence is strict.
            holds = (
                anchors[a] <= anchors[b]
                if b == self.failure
                else anchors[a] < anchors[b]
            )
            if holds:
                data["support"] = data.get("support", self.n_failed_logs) + 1
            else:
                self.graph.remove_edge(a, b)
        self.n_failed_logs += 1
        removed |= self._prune_non_ancestors()
        return removed

    def restrict_to(self, pids: Iterable[str]) -> set[str]:
        """Drop nodes outside ``pids`` (F is always kept), then re-apply
        the ancestors-of-F filter.  Used when a newly-ingested
        *successful* log breaks some predicates' precision.  Returns
        every pid removed."""
        keep = set(pids) | {self.failure}
        removed = set(self.graph.nodes) - keep
        for pid in removed:
            self.discarded[pid] = "no longer fully discriminative"
        self.graph.remove_nodes_from(removed)
        return removed | self._prune_non_ancestors()

    def _prune_non_ancestors(self) -> set[str]:
        """Re-apply the build-time rule: only ancestors of F may stay."""
        keep = nx.ancestors(self.graph, self.failure) | {self.failure}
        doomed = set(self.graph.nodes) - keep
        for pid in doomed:
            self.discarded[pid] = "no temporal path to the failure predicate"
        self.graph.remove_nodes_from(doomed)
        return doomed

    def structure(self) -> tuple[frozenset, frozenset]:
        """(nodes, edges) — the comparable shape, for equality asserts."""
        return frozenset(self.graph.nodes), frozenset(self.graph.edges)

    # -- basic queries -----------------------------------------------------

    @property
    def predicates(self) -> set[str]:
        """All candidate predicates (excluding F)."""
        return set(self.graph.nodes) - {self.failure}

    def __len__(self) -> int:
        return len(self.graph)

    def __contains__(self, pid: str) -> bool:
        return pid in self.graph

    def reaches(self, a: str, b: str) -> bool:
        """The paper's ``a ⤳ b`` (graph is transitively closed)."""
        if a == b:
            return False
        return self.graph.has_edge(a, b)

    def ancestors(self, pid: str) -> set[str]:
        return set(self.graph.predecessors(pid))

    def descendants(self, pid: str) -> set[str]:
        return set(self.graph.successors(pid))

    def minimal_elements(self, among: Optional[Iterable[str]] = None) -> list[str]:
        """Nodes with no predecessor inside ``among`` ("lowest level")."""
        pool = set(among) if among is not None else set(self.graph.nodes)
        return sorted(
            p for p in pool if not any(q in pool for q in self.graph.predecessors(p))
        )

    def topological_order(self, among: Optional[Iterable[str]] = None) -> list[str]:
        """A deterministic topological order of ``among``.

        Ties (incomparable nodes) break lexicographically; intervention
        algorithms may re-break them randomly per the paper.
        """
        pool = set(among) if among is not None else set(self.graph.nodes)
        sub = self.graph.subgraph(pool)
        return list(nx.lexicographical_topological_sort(sub))

    def topological_levels(
        self, among: Optional[Iterable[str]] = None
    ) -> list[list[str]]:
        """Antichain levels: level k = minimal elements after removing <k."""
        pool = set(among) if among is not None else set(self.graph.nodes)
        levels: list[list[str]] = []
        while pool:
            level = self.minimal_elements(pool)
            levels.append(level)
            pool -= set(level)
        return levels

    # -- branch decomposition (Algorithm 2) ---------------------------------

    def branches_at(self, heads: Sequence[str]) -> list[Branch]:
        """Branch decomposition at a junction with the given heads.

        ``B_P = P ∨ {Q : P ⤳ Q and ∀P' ≠ P at the junction, P' ̸⤳ Q}``.
        Shared descendants (merge points) belong to no branch.
        """
        branches = []
        head_set = set(heads)
        for head in sorted(heads):
            exclusive = {
                q
                for q in self.descendants(head)
                if q != self.failure
                and not any(
                    self.reaches(other, q) for other in head_set - {head}
                )
            }
            branches.append(Branch(head=head, members=frozenset({head} | exclusive)))
        return branches

    # -- mutation ------------------------------------------------------------

    def remove(self, pids: Iterable[str]) -> None:
        doomed = set(pids) - {self.failure}
        self.graph.remove_nodes_from(doomed)

    def copy(self) -> "ACDag":
        return ACDag(
            graph=self.graph.copy(),
            failure=self.failure,
            defs=dict(self.defs),
            discarded=dict(self.discarded),
            n_failed_logs=self.n_failed_logs,
        )

    # -- presentation --------------------------------------------------------

    def transitive_reduction(self) -> nx.DiGraph:
        """Minimal edge set implying the same reachability (for display)."""
        return nx.transitive_reduction(self.graph)

    def to_dot(self) -> str:
        """A Graphviz rendering of the transitive reduction."""
        lines = ["digraph acdag {", "  rankdir=TB;"]
        reduced = self.transitive_reduction()
        for node in sorted(reduced.nodes):
            shape = "doubleoctagon" if node == self.failure else "box"
            lines.append(f'  "{node}" [shape={shape}];')
        for a, b in sorted(reduced.edges):
            lines.append(f'  "{a}" -> "{b}";')
        lines.append("}")
        return "\n".join(lines)

    def describe(self, pid: str) -> str:
        pred = self.defs.get(pid)
        return pred.description if pred is not None else pid
