"""Theoretical analysis of CPD vs. group testing (paper Section 6).

Implements, symbolically and numerically:

* search-space sizes — Lemma 1 (horizontal/vertical DAG expansion), the
  symmetric-AC-DAG closed form, and a brute-force counter used to
  property-test the lemma on small DAGs;
* the information-theoretic lower bounds — ``log C(N, D)`` for group
  testing and Theorem 2's reduced bound for CPD;
* the upper bounds — ``D log N`` for TAGT, Theorem 3's pruning bound,
  and the Section 6.3.1 branch-pruning bound ``J log T + D log N_M``;
* the full Figure 6 table for the symmetric AC-DAG.

A *valid CPD solution* is a set of predicates that can lie on a single
causal path, i.e. a set that is pairwise comparable under AC-DAG
reachability — a chain of the partial order (the empty set counts: the
failure may be unexplained by the available predicates).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import Iterable

import networkx as nx


# ---------------------------------------------------------------------------
# Search spaces (Section 6.1, Lemma 1)
# ---------------------------------------------------------------------------


def gt_search_space(n_predicates: int) -> int:
    """Group testing considers every subset: ``2^N``."""
    return 2**n_predicates


def chain_search_space(n_predicates: int) -> int:
    """On a simple chain CPD and GT coincide: ``2^n``."""
    return 2**n_predicates


def horizontal_expansion(*sizes: int) -> int:
    """Lemma 1: parallel composition. ``W = 1 + Σ (W_i − 1)``.

    Solutions cannot mix predicates from parallel subgraphs; the empty
    solution is shared.
    """
    return 1 + sum(w - 1 for w in sizes)


def vertical_expansion(*sizes: int) -> int:
    """Lemma 1: series composition. ``W = Π W_i``."""
    return math.prod(sizes)


def symmetric_search_space(junctions: int, branches: int, chain_length: int) -> int:
    """Closed form for the symmetric AC-DAG: ``(B(2^n − 1) + 1)^J``."""
    return (branches * (2**chain_length - 1) + 1) ** junctions


def count_cpd_solutions(graph: nx.DiGraph) -> int:
    """Brute-force count of valid CPD solutions (chains incl. empty set).

    Exponential; for property-testing Lemma 1 on small DAGs only.
    """
    if len(graph) > 20:
        raise ValueError("brute-force solution count limited to 20 nodes")
    closure = nx.transitive_closure_dag(graph)
    nodes = list(graph.nodes)
    count = 1  # the empty solution
    for size in range(1, len(nodes) + 1):
        for subset in combinations(nodes, size):
            if _is_chain(closure, subset):
                count += 1
    return count


def _is_chain(closure: nx.DiGraph, subset: Iterable) -> bool:
    subset = list(subset)
    for a, b in combinations(subset, 2):
        if not (closure.has_edge(a, b) or closure.has_edge(b, a)):
            return False
    return True


# ---------------------------------------------------------------------------
# Lower bounds (Section 6.2, Theorem 2)
# ---------------------------------------------------------------------------


def log2_binomial(n: int, k: int) -> float:
    """``log2 C(n, k)`` computed stably via lgamma."""
    if k < 0 or k > n:
        return float("-inf")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    ) / math.log(2)


def gt_lower_bound(n_predicates: int, n_causal: int) -> float:
    """Information-theoretic lower bound for GT: ``log2 C(N, D)``."""
    return log2_binomial(n_predicates, n_causal)


def cpd_lower_bound(n_predicates: int, n_causal: int, s1: int) -> float:
    """Theorem 2: ``N / (N + D·S1) · log2 C(N, D)``.

    ``s1`` is the minimum number of predicates discarded (pruned or
    confirmed causal) per group intervention.
    """
    n, d = n_predicates, n_causal
    if n == 0:
        return 0.0
    return n / (n + d * s1) * log2_binomial(n, d)


# ---------------------------------------------------------------------------
# Upper bounds (Section 6.3, Theorem 3)
# ---------------------------------------------------------------------------


def tagt_upper_bound(n_predicates: int, n_causal: int) -> float:
    """TAGT worst case: ``D log2 N`` (binary search per causal pred)."""
    if n_predicates <= 1:
        return float(n_causal)
    return n_causal * math.log2(n_predicates)


def tagt_worst_case_rounds(n_predicates: int, n_causal: int) -> int:
    """The integer worst case the paper quotes in Figure 7: D·⌈log2 N⌉."""
    if n_predicates <= 1:
        return n_causal
    return n_causal * math.ceil(math.log2(n_predicates))


def aid_upper_bound_pruning(n_predicates: int, n_causal: int, s2: int) -> float:
    """Theorem 3: ``D log2 N − D(D−1)·S2 / (2N)``.

    ``s2`` is the minimum number of predicates discarded per causal-
    predicate discovery.  ``s2 = 1`` degenerates to TAGT.
    """
    n, d = n_predicates, n_causal
    if n <= 1:
        return float(d)
    return d * math.log2(n) - d * (d - 1) * s2 / (2 * n)


def aid_upper_bound_branch(
    junctions: int, max_branches: int, max_path_len: int, n_causal: int
) -> float:
    """Section 6.3.1: ``J log2 T + D log2 N_M``.

    ``max_branches`` is bounded by the thread count T; ``max_path_len``
    (``N_M``) is the longest root-to-F path.  Beats the TAGT bound
    whenever ``J < D``.
    """
    j_term = junctions * math.log2(max_branches) if max_branches > 1 else 0.0
    d_term = n_causal * math.log2(max_path_len) if max_path_len > 1 else float(n_causal)
    return j_term + d_term


# ---------------------------------------------------------------------------
# Figure 6: the symmetric AC-DAG comparison table
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BoundRow:
    """One row of Figure 6 (CPD or GT) for the symmetric AC-DAG."""

    name: str
    search_space: float
    lower_bound: float
    upper_bound: float


def figure6_table(
    junctions: int,
    branches: int,
    chain_length: int,
    n_causal: int,
    s1: int,
    s2: int,
) -> list[BoundRow]:
    """Compute both rows of Figure 6 for the symmetric AC-DAG.

    ``N = J·B·n`` predicates arranged as J sequential junctions, each
    fanning into B parallel chains of n predicates.
    """
    j, b, n, d = junctions, branches, chain_length, n_causal
    total = j * b * n
    cpd = BoundRow(
        name="CPD",
        search_space=float(symmetric_search_space(j, b, n)),
        lower_bound=total / (total + d * s1) * log2_binomial(total, d),
        upper_bound=(
            j * math.log2(b) + d * math.log2(j * n) - d * (d - 1) * s2 / (2 * j * n)
        ),
    )
    gt = BoundRow(
        name="GT",
        search_space=float(gt_search_space(total)),
        lower_bound=log2_binomial(total, d),
        upper_bound=(
            d * math.log2(b) + d * math.log2(j * n) - d * (d - 1) / (2 * j * b * n)
        ),
    )
    return [cpd, gt]


def symmetric_acdag(junctions: int, branches: int, chain_length: int) -> nx.DiGraph:
    """Build the symmetric AC-DAG of Figure 5(c) as a concrete graph.

    Nodes are strings ``"J{j}B{b}N{k}"`` plus junction connectors; the
    graph is the *transitive reduction* (edges only between neighbours),
    suitable for search-space brute-forcing and for feeding the
    synthetic oracle.
    """
    graph = nx.DiGraph()
    previous_sinks: list[str] = []
    for j in range(junctions):
        heads, tails = [], []
        for b in range(branches):
            chain = [f"J{j}B{b}N{k}" for k in range(chain_length)]
            nx.add_path(graph, chain) if len(chain) > 1 else graph.add_node(chain[0])
            heads.append(chain[0])
            tails.append(chain[-1])
        for sink in previous_sinks:
            for head in heads:
                graph.add_edge(sink, head)
        previous_sinks = tails
    return graph
