"""Predicate model: runtime behaviours that AID reasons about.

A *predicate* is a Boolean statement about one execution ("there is a
data race on ``_nextSlot`` between ``TryGetValue`` and ``GetOrAdd``",
"``Commit`` throws ObjectDisposed", …).  Every predicate class knows how
to:

* **evaluate** itself against an execution trace, returning an
  :class:`Observation` (the time window in which it held) or ``None``;
* **build its intervention** — the fault-injection recipe that forces it
  to its successful-execution value (Figure 2, column 3);
* report whether that intervention is **safe** for a given program
  (Section 3.3: return-value and exception-handling interventions are
  restricted to methods declared side-effect free).

The predicate types implemented here are exactly the paper's Figure 2
catalogue plus order violations, compound conjunctions (Section 3.2),
and the failure-indicating predicate F.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..sim.faults import (
    CatchException,
    DelayReturn,
    ForceOrder,
    ForceReturn,
    Intervention,
    MethodSelector,
    SerializeMethods,
)
from ..sim.program import Program
from ..sim.tracing import ExecutionTrace, MethodExecution, MethodKey


class PredicateKind(str, Enum):
    DATA_RACE = "data_race"
    METHOD_FAILS = "method_fails"
    TOO_SLOW = "too_slow"
    TOO_FAST = "too_fast"
    WRONG_RETURN = "wrong_return"
    ORDER_VIOLATION = "order_violation"
    EXECUTED = "executed"
    COMPOUND_AND = "compound_and"
    FAILURE = "failure"


@dataclass(frozen=True)
class Observation:
    """The virtual-time window in which a predicate held on one trace.

    ``start_lamport``/``end_lamport`` optionally carry the Lamport
    timestamps of the anchoring events, for the logical-clock precedence
    policy the paper suggests for environments where physical clocks are
    too coarse or skewed (Section 4).
    """

    start: int
    end: int
    start_lamport: Optional[int] = None
    end_lamport: Optional[int] = None

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"observation ends before it starts: {self}")


class PredicateDef:
    """Base class for all predicate definitions.

    Subclasses must set ``pid`` (stable id string), ``kind``, and
    ``description`` and implement :meth:`evaluate` and
    :meth:`interventions`.
    """

    pid: str
    kind: PredicateKind
    description: str

    #: Batch-evaluation protocol (see :mod:`repro.core.evalkernel`):
    #: a predicate that depends only on resolved :class:`MethodKey`
    #: lookups sets this and implements :meth:`evaluate_indexed`; the
    #: kernel then evaluates it against a trace's key index without
    #: handing over the whole trace.  Predicates that read other trace
    #: state (failure metadata, nested parts) leave it ``False`` and are
    #: evaluated through :meth:`evaluate`.
    supports_indexed: bool = False

    #: Columnar batch protocol (see :mod:`repro.corpus.columnar`): a
    #: predicate that can be computed from a shard's structure-of-arrays
    #: trace table sets this and implements :meth:`evaluate_columnar`,
    #: letting the kernel sweep a whole shard's column runs in one pass
    #: instead of evaluating trace by trace.  Predicates that need the
    #: object model (e.g. access lists with overlap windows) leave it
    #: ``False`` and fall back to the per-trace paths.
    supports_columnar: bool = False

    def evaluate(self, trace: ExecutionTrace) -> Optional[Observation]:
        raise NotImplementedError

    def evaluate_indexed(self, find) -> Optional[Observation]:
        """Evaluate against a key resolver (``find(key) -> execution or
        None``).  Only meaningful when :attr:`supports_indexed`; for
        those classes ``evaluate(trace)`` is exactly
        ``evaluate_indexed(trace.lookup)``."""
        raise NotImplementedError

    def evaluate_columnar(self, table) -> dict:
        """Evaluate against one shard's columnar trace table in one pass.

        Returns ``{trace_row: Observation}`` covering exactly the table
        rows where the predicate holds — for every row ``r`` the entry
        equals ``evaluate(table.decode(r))``, and absent rows are the
        Nones (asserted property-style in tests/test_columnar.py).
        Only meaningful when :attr:`supports_columnar`.
        """
        raise NotImplementedError

    def interventions(self) -> tuple[Intervention, ...]:
        """Fault injections that force this predicate false."""
        raise NotImplementedError

    def is_safe(self, program: Program) -> bool:
        """Whether the intervention has no unwanted side effects.

        Timing and locking interventions are always safe; value-altering
        ones require the target method to be declared read-only.
        """
        return True

    def definition_digest(self) -> str:
        """Stable fingerprint of the *full* definition, not just the pid.

        Pids deliberately omit derived parameters (``slow[key]`` does not
        embed its threshold), so a memo keyed by pid alone would go stale
        when a growing corpus shifts an envelope.  The digest covers the
        class and every dataclass field, letting persistent caches detect
        that a same-pid predicate changed meaning.

        Memoized per instance: definitions are frozen dataclasses, and a
        sharded evaluation asks every shard's matrix for the same table
        — without the cache the digest walk dominates thin shards.
        """
        import dataclasses

        from ..sim.serialize import stable_digest

        cached = getattr(self, "_definition_digest", None)
        if cached is not None:
            return cached

        def value_of(value: object) -> object:
            if isinstance(value, PredicateDef):
                return value.definition_digest()  # compound parts, recursively
            if isinstance(value, (tuple, list)):
                return [value_of(v) for v in value]
            return repr(value)

        if dataclasses.is_dataclass(self):
            fields = {
                f.name: value_of(getattr(self, f.name))
                for f in dataclasses.fields(self)
            }
        else:  # pragma: no cover - all bundled predicates are dataclasses
            fields = {"repr": repr(self)}
        digest = stable_digest(
            {"type": type(self).__name__, "fields": fields}
        )
        object.__setattr__(self, "_definition_digest", digest)
        return digest

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.pid}>"

    def __hash__(self) -> int:
        return hash(self.pid)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PredicateDef) and other.pid == self.pid


@dataclass(frozen=True, eq=False)
class DataRacePredicate(PredicateDef):
    """Two method invocations access ``obj`` concurrently, one writing,
    with disjoint locksets (lockset-style race definition)."""

    a: MethodKey
    b: MethodKey
    obj: str

    supports_indexed = True

    def __post_init__(self) -> None:
        if self.b < self.a:  # canonical order for a stable pid
            first, second = self.b, self.a
            object.__setattr__(self, "a", first)
            object.__setattr__(self, "b", second)

    @property
    def pid(self) -> str:
        return f"race({self.obj})[{self.a}|{self.b}]"

    @property
    def kind(self) -> PredicateKind:
        return PredicateKind.DATA_RACE

    @property
    def description(self) -> str:
        return (
            f"data race on {self.obj!r}: {self.a} and {self.b} access it "
            f"concurrently without a common lock, at least one writing"
        )

    def evaluate(self, trace: ExecutionTrace) -> Optional[Observation]:
        return self.evaluate_indexed(trace.lookup)

    def evaluate_indexed(self, find) -> Optional[Observation]:
        ma, mb = find(self.a), find(self.b)
        if ma is None or mb is None or not ma.overlaps(mb):
            return None
        window = racy_window(ma, mb, self.obj)
        return window

    def interventions(self) -> tuple[Intervention, ...]:
        lock = f"__aid_lock__{self.obj}"
        return (
            SerializeMethods(
                selectors=(
                    MethodSelector.from_key(self.a),
                    MethodSelector.from_key(self.b),
                ),
                lock_name=lock,
            ),
        )


def racy_window(
    ma: MethodExecution, mb: MethodExecution, obj: str
) -> Optional[Observation]:
    """Return the race window between two overlapping invocations, if any.

    We use *interleaved-access* (sandwich) race semantics: a race exists
    when one invocation accesses ``obj`` strictly between another
    invocation's first and last accesses to ``obj``, the locksets of the
    interleaved accesses are disjoint, and a write is involved.  The
    intruding access observed (or corrupted) a half-completed update
    protocol — precisely the situation the paper's Npgsql case study
    crashes on.

    This is deliberately stricter than happens-before race detection
    ("any unordered conflicting pair"): near-miss overlaps that touch the
    object before or after the whole update do not count.  Under
    happens-before semantics, benign near-misses in successful runs make
    the race predicate non-discriminative and SD discards it — the
    stricter semantics keeps the predicate aligned with the harmful
    interleaving, which is what the paper's hand-built race predicates
    achieve (Figure 9c shows 100%/100%).

    The reported window spans from the start of the interrupted protocol
    to the intruding access.
    """
    best: Optional[Observation] = None
    for outer, inner in ((ma, mb), (mb, ma)):
        touches = [a for a in outer.accesses if a.obj == obj]
        if len(touches) < 2:
            continue
        first, last = touches[0], touches[-1]
        writes_involved = any(a.is_write for a in touches)
        for intrusion in inner.accesses:
            if intrusion.obj != obj:
                continue
            if not (first.time < intrusion.time < last.time):
                continue
            if not (writes_involved or intrusion.is_write):
                continue
            if intrusion.locks_held & (first.locks_held | last.locks_held):
                continue
            candidate = Observation(
                first.time, intrusion.time,
                start_lamport=first.lamport, end_lamport=intrusion.lamport,
            )
            if best is None or candidate.start < best.start:
                best = candidate
    return best


@dataclass(frozen=True, eq=False)
class MethodFailsPredicate(PredicateDef):
    """Method invocation raises a (simulated) exception of ``exc_kind``."""

    key: MethodKey
    exc_kind: str
    fallback: object = None

    supports_indexed = True
    supports_columnar = True

    @property
    def pid(self) -> str:
        return f"fails({self.exc_kind})[{self.key}]"

    @property
    def kind(self) -> PredicateKind:
        return PredicateKind.METHOD_FAILS

    @property
    def description(self) -> str:
        return f"method {self.key} fails with {self.exc_kind}"

    def evaluate(self, trace: ExecutionTrace) -> Optional[Observation]:
        return self.evaluate_indexed(trace.lookup)

    def evaluate_indexed(self, find) -> Optional[Observation]:
        m = find(self.key)
        if m is None or m.exception != self.exc_kind:
            return None
        return Observation(
            m.end_time, m.end_time,
            start_lamport=m.end_lamport, end_lamport=m.end_lamport,
        )

    def evaluate_columnar(self, table) -> dict:
        exc_idx = table.string_index(self.exc_kind)
        if exc_idx is None:
            return {}
        run = table.key_run(self.key)
        if run is None:
            return {}
        excs = run.column("c_exc")
        ends = run.column("c_end")
        elams = run.column("c_elam")
        return {
            row: Observation(
                ends[i], ends[i], start_lamport=elams[i], end_lamport=elams[i]
            )
            for i, row in enumerate(run.traces)
            if excs[i] == exc_idx
        }

    def interventions(self) -> tuple[Intervention, ...]:
        return (
            CatchException(
                selector=MethodSelector.from_key(self.key), fallback=self.fallback
            ),
        )

    def is_safe(self, program: Program) -> bool:
        return self.key.method in program.readonly_methods


@dataclass(frozen=True, eq=False)
class TooSlowPredicate(PredicateDef):
    """Invocation's duration exceeds the max seen in successful runs."""

    key: MethodKey
    threshold: int  # max duration over successful executions
    correct_return: object = None

    supports_indexed = True
    supports_columnar = True

    @property
    def pid(self) -> str:
        return f"slow[{self.key}]"

    @property
    def kind(self) -> PredicateKind:
        return PredicateKind.TOO_SLOW

    @property
    def description(self) -> str:
        return (
            f"method {self.key} runs too slow "
            f"(duration > {self.threshold} ticks seen in successful runs)"
        )

    def evaluate(self, trace: ExecutionTrace) -> Optional[Observation]:
        return self.evaluate_indexed(trace.lookup)

    def evaluate_indexed(self, find) -> Optional[Observation]:
        m = find(self.key)
        if m is None or m.duration <= self.threshold:
            return None
        # The slowness *begins* the instant the invocation exceeds its
        # successful-duration envelope — not when the method finally
        # returns.  Anchoring there keeps true causal edges in the
        # AC-DAG: a slow callee's excess point precedes its slow
        # caller's (the paper's Case 1), and a slow method's excess
        # point precedes the order violations it provokes.
        return Observation(
            m.start_time + self.threshold, m.end_time,
            start_lamport=m.start_lamport, end_lamport=m.end_lamport,
        )

    def evaluate_columnar(self, table) -> dict:
        run = table.key_run(self.key)
        if run is None:
            return {}
        starts = run.column("c_start")
        ends = run.column("c_end")
        slams = run.column("c_slam")
        elams = run.column("c_elam")
        threshold = self.threshold
        return {
            row: Observation(
                starts[i] + threshold, ends[i],
                start_lamport=slams[i], end_lamport=elams[i],
            )
            for i, row in enumerate(run.traces)
            if ends[i] - starts[i] > threshold
        }

    def interventions(self) -> tuple[Intervention, ...]:
        # "Prematurely return from M the correct value that M returns in
        # all successful executions" (Figure 2).
        return (
            ForceReturn(
                selector=MethodSelector.from_key(self.key),
                value=self.correct_return,
                skip_body=True,
            ),
        )

    def is_safe(self, program: Program) -> bool:
        return self.key.method in program.readonly_methods


@dataclass(frozen=True, eq=False)
class TooFastPredicate(PredicateDef):
    """Invocation's duration is below the min seen in successful runs."""

    key: MethodKey
    threshold: int  # min duration over successful executions

    supports_indexed = True
    supports_columnar = True

    @property
    def pid(self) -> str:
        return f"fast[{self.key}]"

    @property
    def kind(self) -> PredicateKind:
        return PredicateKind.TOO_FAST

    @property
    def description(self) -> str:
        return (
            f"method {self.key} runs too fast "
            f"(duration < {self.threshold} ticks seen in successful runs)"
        )

    def evaluate(self, trace: ExecutionTrace) -> Optional[Observation]:
        return self.evaluate_indexed(trace.lookup)

    def evaluate_indexed(self, find) -> Optional[Observation]:
        m = find(self.key)
        if m is None or m.duration >= self.threshold:
            return None
        return Observation(
            m.start_time, m.end_time,
            start_lamport=m.start_lamport, end_lamport=m.end_lamport,
        )

    def evaluate_columnar(self, table) -> dict:
        run = table.key_run(self.key)
        if run is None:
            return {}
        starts = run.column("c_start")
        ends = run.column("c_end")
        slams = run.column("c_slam")
        elams = run.column("c_elam")
        threshold = self.threshold
        return {
            row: Observation(
                starts[i], ends[i], start_lamport=slams[i], end_lamport=elams[i]
            )
            for i, row in enumerate(run.traces)
            if ends[i] - starts[i] < threshold
        }

    def interventions(self) -> tuple[Intervention, ...]:
        # "Insert delay before M's return statement" (Figure 2).
        return (
            DelayReturn(
                selector=MethodSelector.from_key(self.key), ticks=self.threshold
            ),
        )


@dataclass(frozen=True, eq=False)
class WrongReturnPredicate(PredicateDef):
    """Invocation returns a value different from the successful one."""

    key: MethodKey
    correct_value: object

    supports_indexed = True
    supports_columnar = True

    @property
    def pid(self) -> str:
        return f"wrongret[{self.key}]"

    @property
    def kind(self) -> PredicateKind:
        return PredicateKind.WRONG_RETURN

    @property
    def description(self) -> str:
        return (
            f"method {self.key} returns an incorrect value "
            f"(successful executions return {self.correct_value!r})"
        )

    def evaluate(self, trace: ExecutionTrace) -> Optional[Observation]:
        return self.evaluate_indexed(trace.lookup)

    def evaluate_indexed(self, find) -> Optional[Observation]:
        m = find(self.key)
        if m is None or m.exception is not None:
            return None
        if m.return_value == self.correct_value:
            return None
        return Observation(
            m.end_time, m.end_time,
            start_lamport=m.end_lamport, end_lamport=m.end_lamport,
        )

    def evaluate_columnar(self, table) -> dict:
        run = table.key_run(self.key)
        if run is None:
            return {}
        # Return values are interned by canonical JSON; comparing the
        # decoded pool once replicates ``==`` against every execution.
        correct = {
            i for i, v in enumerate(table.decoded_values) if v == self.correct_value
        }
        rets = run.column("c_ret")
        excs = run.column("c_exc")
        ends = run.column("c_end")
        elams = run.column("c_elam")
        return {
            row: Observation(
                ends[i], ends[i], start_lamport=elams[i], end_lamport=elams[i]
            )
            for i, row in enumerate(run.traces)
            if excs[i] < 0 and rets[i] not in correct
        }

    def interventions(self) -> tuple[Intervention, ...]:
        return (
            ForceReturn(
                selector=MethodSelector.from_key(self.key),
                value=self.correct_value,
                skip_body=False,
            ),
        )

    def is_safe(self, program: Program) -> bool:
        return self.key.method in program.readonly_methods


@dataclass(frozen=True, eq=False)
class OrderViolationPredicate(PredicateDef):
    """``second`` starts before ``first`` completes.

    In all successful executions ``first`` finishes before ``second``
    starts; the violation of that order is the misbehaviour.
    """

    first: MethodKey
    second: MethodKey

    supports_indexed = True
    supports_columnar = True

    @property
    def pid(self) -> str:
        return f"order[{self.second}<{self.first}]"

    @property
    def kind(self) -> PredicateKind:
        return PredicateKind.ORDER_VIOLATION

    @property
    def description(self) -> str:
        return (
            f"order violation: {self.second} starts before {self.first} "
            f"has completed (successful runs always order them)"
        )

    def evaluate(self, trace: ExecutionTrace) -> Optional[Observation]:
        return self.evaluate_indexed(trace.lookup)

    def evaluate_indexed(self, find) -> Optional[Observation]:
        mf, ms = find(self.first), find(self.second)
        if mf is None or ms is None:
            return None
        if ms.start_time >= mf.end_time:
            return None
        return Observation(
            ms.start_time, min(mf.end_time, ms.end_time),
            start_lamport=ms.start_lamport,
            end_lamport=min(mf.end_lamport, ms.end_lamport),
        )

    def evaluate_columnar(self, table) -> dict:
        run_first = table.key_run(self.first)
        run_second = table.key_run(self.second)
        if run_first is None or run_second is None:
            return {}
        f_ends = run_first.column("c_end")
        f_elams = run_first.column("c_elam")
        first_by_trace = {
            row: (f_ends[i], f_elams[i]) for i, row in enumerate(run_first.traces)
        }
        s_starts = run_second.column("c_start")
        s_ends = run_second.column("c_end")
        s_slams = run_second.column("c_slam")
        s_elams = run_second.column("c_elam")
        out = {}
        for i, row in enumerate(run_second.traces):
            first = first_by_trace.get(row)
            if first is None or s_starts[i] >= first[0]:
                continue
            out[row] = Observation(
                s_starts[i], min(first[0], s_ends[i]),
                start_lamport=s_slams[i],
                end_lamport=min(first[1], s_elams[i]),
            )
        return out

    def interventions(self) -> tuple[Intervention, ...]:
        return (
            ForceOrder(
                first=MethodSelector.from_key(self.first),
                then=MethodSelector.from_key(self.second),
            ),
        )


@dataclass(frozen=True, eq=False)
class ExecutedPredicate(PredicateDef):
    """The invocation ran (its body actually executed).

    The paper's branch-taken predicates ("the program takes the false
    branch at line 31") specialize to "this call happened" at our method
    granularity.  Repaired by a skip-body forced return, which the trace
    records via ``body_skipped`` so the predicate evaluates false on the
    intervened run.
    """

    key: MethodKey
    skip_value: object = None

    supports_indexed = True
    supports_columnar = True

    @property
    def pid(self) -> str:
        return f"exec[{self.key}]"

    @property
    def kind(self) -> PredicateKind:
        return PredicateKind.EXECUTED

    @property
    def description(self) -> str:
        return f"method {self.key} executes (it never runs in successful executions)"

    def evaluate(self, trace: ExecutionTrace) -> Optional[Observation]:
        return self.evaluate_indexed(trace.lookup)

    def evaluate_indexed(self, find) -> Optional[Observation]:
        m = find(self.key)
        if m is None or m.body_skipped:
            return None
        return Observation(
            m.start_time, m.end_time,
            start_lamport=m.start_lamport, end_lamport=m.end_lamport,
        )

    def evaluate_columnar(self, table) -> dict:
        run = table.key_run(self.key)
        if run is None:
            return {}
        starts = run.column("c_start")
        ends = run.column("c_end")
        slams = run.column("c_slam")
        elams = run.column("c_elam")
        skips = run.column("c_skip")
        return {
            row: Observation(
                starts[i], ends[i], start_lamport=slams[i], end_lamport=elams[i]
            )
            for i, row in enumerate(run.traces)
            if not skips[i]
        }

    def interventions(self) -> tuple[Intervention, ...]:
        return (
            ForceReturn(
                selector=MethodSelector.from_key(self.key),
                value=self.skip_value,
                skip_body=True,
            ),
        )

    def is_safe(self, program: Program) -> bool:
        return self.key.method in program.readonly_methods


@dataclass(frozen=True, eq=False)
class CompoundAndPredicate(PredicateDef):
    """Conjunction of predicates (Section 3.2, "Modeling nondeterminism").

    Used when no single predicate is fully discriminative but a
    conjunction is.  Observed when *all* parts are observed; intervened
    by repairing every part (which certainly falsifies the conjunction).
    """

    parts: tuple[PredicateDef, ...]

    @property
    def supports_columnar(self) -> bool:  # type: ignore[override]
        return bool(self.parts) and all(p.supports_columnar for p in self.parts)

    @property
    def pid(self) -> str:
        return "and(" + "&".join(p.pid for p in self.parts) + ")"

    @property
    def kind(self) -> PredicateKind:
        return PredicateKind.COMPOUND_AND

    @property
    def description(self) -> str:
        return " AND ".join(p.description for p in self.parts)

    def evaluate(self, trace: ExecutionTrace) -> Optional[Observation]:
        obs = [p.evaluate(trace) for p in self.parts]
        if any(o is None for o in obs):
            return None
        lamports = [o.start_lamport for o in obs]
        return Observation(
            max(o.start for o in obs),
            max(o.end for o in obs),
            start_lamport=(
                max(lamports) if all(x is not None for x in lamports) else None
            ),
            end_lamport=None,
        )

    def evaluate_columnar(self, table) -> dict:
        parts = [p.evaluate_columnar(table) for p in self.parts]
        rows = set(parts[0])
        for sweep in parts[1:]:
            rows &= set(sweep)
        out = {}
        for row in rows:
            obs = [sweep[row] for sweep in parts]
            lamports = [o.start_lamport for o in obs]
            out[row] = Observation(
                max(o.start for o in obs),
                max(o.end for o in obs),
                start_lamport=(
                    max(lamports) if all(x is not None for x in lamports) else None
                ),
                end_lamport=None,
            )
        return out

    def interventions(self) -> tuple[Intervention, ...]:
        result: list[Intervention] = []
        for p in self.parts:
            result.extend(p.interventions())
        return tuple(result)

    def is_safe(self, program: Program) -> bool:
        return all(p.is_safe(program) for p in self.parts)


@dataclass(frozen=True, eq=False)
class FailurePredicate(PredicateDef):
    """The failure-indicating predicate F (one per failure signature)."""

    signature: str

    supports_columnar = True

    @property
    def pid(self) -> str:
        return f"FAILURE[{self.signature}]"

    @property
    def kind(self) -> PredicateKind:
        return PredicateKind.FAILURE

    @property
    def description(self) -> str:
        return f"the execution fails with signature {self.signature!r}"

    def evaluate(self, trace: ExecutionTrace) -> Optional[Observation]:
        if not trace.failed or trace.failure.signature != self.signature:
            return None
        t = trace.failure.time
        return Observation(t, t)

    def evaluate_columnar(self, table) -> dict:
        times = table.col("t_ftime")
        return {
            row: Observation(times[row], times[row])
            for row, signature in enumerate(table.signatures)
            if signature == self.signature
        }

    def interventions(self) -> tuple[Intervention, ...]:
        raise LookupError("the failure predicate F cannot be intervened on")


# ---------------------------------------------------------------------------
# Serialization: predicates as JSON-able dicts
# ---------------------------------------------------------------------------

#: Format version of the predicate/suite payloads (bump on breaking
#: changes; readers refuse unknown versions rather than misparse).
PREDICATE_FORMAT_VERSION = 1

#: Every serializable predicate class, keyed by class name.
_PREDICATE_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        DataRacePredicate,
        MethodFailsPredicate,
        TooSlowPredicate,
        TooFastPredicate,
        WrongReturnPredicate,
        OrderViolationPredicate,
        ExecutedPredicate,
        CompoundAndPredicate,
        FailurePredicate,
    )
}


def _encode_value(value: object) -> object:
    """JSON-able encoding with type tags for the non-JSON field types.

    Tags: ``{"$key": [...]}`` for :class:`MethodKey`, ``{"$pred": ...}``
    for nested predicates (compound parts), ``{"$tuple": [...]}`` for
    tuples (lists stay lists so the distinction survives the trip —
    ``definition_digest`` hashes ``repr`` and must not drift).
    """
    if isinstance(value, MethodKey):
        return {"$key": [value.method, value.thread, value.occurrence]}
    if isinstance(value, PredicateDef):
        return {"$pred": predicate_to_dict(value)}
    if isinstance(value, tuple):
        return {"$tuple": [_encode_value(v) for v in value]}
    if isinstance(value, list):
        return [_encode_value(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ValueError(
        f"cannot serialize predicate field value {value!r} "
        f"of type {type(value).__name__}"
    )


def _decode_value(value: object) -> object:
    if isinstance(value, dict):
        if "$key" in value:
            method, thread, occurrence = value["$key"]
            return MethodKey(method=method, thread=thread, occurrence=occurrence)
        if "$pred" in value:
            return predicate_from_dict(value["$pred"])
        if "$tuple" in value:
            return tuple(_decode_value(v) for v in value["$tuple"])
        raise ValueError(f"unknown predicate value tag in {value!r}")
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def predicate_to_dict(pred: PredicateDef) -> dict:
    """One predicate as a JSON-able dict (inverse:
    :func:`predicate_from_dict`).  Round-tripping preserves the pid and
    the full :meth:`~PredicateDef.definition_digest`."""
    import dataclasses

    if not dataclasses.is_dataclass(pred):
        raise ValueError(
            f"cannot serialize non-dataclass predicate {type(pred).__name__}"
        )
    return {
        "type": type(pred).__name__,
        "fields": {
            f.name: _encode_value(getattr(pred, f.name))
            for f in dataclasses.fields(pred)
        },
    }


def predicate_from_dict(raw: dict) -> PredicateDef:
    """Rebuild a predicate serialized by :func:`predicate_to_dict`."""
    type_name = raw.get("type")
    cls = _PREDICATE_TYPES.get(type_name)
    if cls is None:
        known = ", ".join(sorted(_PREDICATE_TYPES))
        raise ValueError(
            f"unknown predicate type {type_name!r} (known: {known})"
        )
    fields = {
        name: _decode_value(value)
        for name, value in raw.get("fields", {}).items()
    }
    return cls(**fields)
