"""Causal path discovery — the paper's Algorithm 3, plus result types.

``causal_path_discovery`` wires the two phases together:

1. optional **branch pruning** (Algorithm 2) reduces the AC-DAG to an
   approximate chain using cheap junction interventions;
2. **GIWP** (Algorithm 1) over the surviving predicates separates the
   counterfactual causes of F from the spurious correlates.

The confirmed causes, ordered by the AC-DAG's topological order and
terminated with F, form the *causal path* (Definition 1): the root cause
first, then the explanation predicates, then the failure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from .acdag import ACDag
from .branch import BranchPruneResult, branch_prune
from .giwp import GIWP, GIWPResult, RoundRecord, topological_item_order
from .intervention import (
    CountingRunner,
    InterventionBudget,
    InterventionRunner,
)
from .pruning import GroupItem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.engine import ExecutionEngine


@dataclass
class DiscoveryResult:
    """Everything Algorithm 3 learned, with intervention accounting."""

    causal_path: list[str]  # root cause … explanation …, then F
    failure: str
    spurious: list[str]
    budget: InterventionBudget
    branch_result: Optional[BranchPruneResult] = None
    chain_result: Optional[GIWPResult] = None
    dag: Optional[ACDag] = None

    @property
    def root_cause(self) -> Optional[str]:
        return self.causal_path[0] if len(self.causal_path) > 1 else None

    @property
    def explanation_pids(self) -> list[str]:
        """Predicates strictly between the root cause and F."""
        return self.causal_path[1:-1]

    @property
    def n_rounds(self) -> int:
        return self.budget.rounds

    @property
    def n_executions(self) -> int:
        return self.budget.executions

    @property
    def rounds(self) -> list[RoundRecord]:
        records: list[RoundRecord] = []
        if self.branch_result is not None:
            for giwp in self.branch_result.giwp_results:
                records.extend(giwp.rounds)
        if self.chain_result is not None:
            records.extend(self.chain_result.rounds)
        return records


def causal_path_discovery(
    dag: ACDag,
    runner: InterventionRunner,
    branch_pruning: bool = True,
    observational_pruning: bool = True,
    ordering: str = "topological",
    rng: Optional[random.Random] = None,
    engine: Optional["ExecutionEngine"] = None,
) -> DiscoveryResult:
    """Run Algorithm 3 and return the discovered causal path.

    Parameters
    ----------
    dag:
        The AC-DAG (not mutated; a working copy is made).
    runner:
        Intervention runner; wrapped in a counting adapter so the result
        carries total rounds/executions.
    branch_pruning:
        The paper's ``Flag_B``; disable for the AID-P-B ablation.
    observational_pruning:
        Definition 2 pruning; disable for the AID-P ablation.
    ordering:
        ``"topological"`` (AID and ablations) or ``"random"``
        (traditional adaptive group testing, which ignores the DAG).
    engine:
        Execution engine to account rounds on; defaults to the runner's
        own (all execution already flows through it via the runner).
    """
    if ordering not in ("topological", "random"):
        raise ValueError(f"unknown ordering {ordering!r}")
    rng = rng or random.Random(0)
    work = dag.copy()
    counting = CountingRunner(runner)
    if engine is None:
        engine = counting.engine

    branch_result: Optional[BranchPruneResult] = None
    if branch_pruning:
        branch_result = branch_prune(
            work,
            counting,
            rng=rng,
            observational_pruning=observational_pruning,
            engine=engine,
        )

    candidates = sorted(work.predicates)
    items = [GroupItem.single(pid) for pid in candidates]
    if ordering == "topological":
        levels = work.topological_levels(among=candidates)
        items = topological_item_order(items, levels, rng)
        reaches = lambda a, b: work.reaches(a.pid, b.pid)  # noqa: E731
    else:
        rng.shuffle(items)
        # Traditional group testing assumes independent predicates: it
        # cannot exploit reachability, so no item "reaches" another.
        reaches = lambda a, b: False  # noqa: E731

    chain = GIWP(
        counting,
        reaches=reaches,
        observational_pruning=observational_pruning,
        engine=engine,
    ).run(items)

    causal = [i.pid for i in chain.causal]
    ordered_causal = [pid for pid in dag.topological_order() if pid in set(causal)]
    spurious = sorted(
        (set(candidates) - set(causal))
        | (set(dag.predicates) - set(candidates))  # removed by branch pruning
    )
    work.remove(spurious)

    return DiscoveryResult(
        causal_path=ordered_causal + [dag.failure],
        failure=dag.failure,
        spurious=spurious,
        budget=counting.budget,
        branch_result=branch_result,
        chain_result=chain,
        dag=work,
    )


def linear_discovery(
    dag: ACDag, runner: InterventionRunner, rng: Optional[random.Random] = None
) -> DiscoveryResult:
    """Naive baseline: intervene on one predicate at a time (N rounds).

    The paper's Section 2 strawman ("the number of required
    interventions is linear in the number of predicates").  The probes
    never depend on each other, so all N rounds are dispatched as one
    batch — the engine's backend decides how many run concurrently.
    """
    rng = rng or random.Random(0)
    counting = CountingRunner(runner)
    causal: list[str] = []
    spurious: list[str] = []
    pool = sorted(dag.predicates)
    rng.shuffle(pool)
    batch = counting.run_group_batch([frozenset({pid}) for pid in pool])
    for pid, outcomes in zip(pool, batch):
        if any(o.failed for o in outcomes):
            spurious.append(pid)
        else:
            causal.append(pid)
    ordered_causal = [pid for pid in dag.topological_order() if pid in set(causal)]
    return DiscoveryResult(
        causal_path=ordered_causal + [dag.failure],
        failure=dag.failure,
        spurious=sorted(spurious),
        budget=counting.budget,
    )
