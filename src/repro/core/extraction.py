"""Predicate extraction: from execution traces to predicate logs.

Mirrors the paper's two-phase design (Appendix A): the *instrumentation*
(our simulator) records raw execution traces; extraction happens offline
and can be re-designed after the fact.  Each :class:`Extractor` scans a
corpus of labeled traces and proposes :class:`PredicateDef` candidates;
the resulting :class:`PredicateSuite` is then frozen and used to
evaluate *any* trace — including traces produced later under
intervention, which is how intervention outcomes are interpreted.

Extractors only *propose* predicates; discriminative filtering is the
job of :mod:`repro.core.statistical`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..sim.program import Program
from ..sim.tracing import ExecutionTrace, MethodExecution, MethodKey
from .predicates import (
    DataRacePredicate,
    ExecutedPredicate,
    FailurePredicate,
    MethodFailsPredicate,
    Observation,
    OrderViolationPredicate,
    PredicateDef,
    TooFastPredicate,
    TooSlowPredicate,
    WrongReturnPredicate,
    racy_window,
)
from .statistical import PredicateLog

# Exception kinds that mark harness artifacts, not program behaviour.
_IGNORED_EXCEPTIONS = {"Unfinished"}


class Extractor:
    """Base class: proposes predicate definitions from labeled traces."""

    def discover(
        self,
        successes: Sequence[ExecutionTrace],
        failures: Sequence[ExecutionTrace],
    ) -> list[PredicateDef]:
        raise NotImplementedError


def _executions_by_key(
    traces: Sequence[ExecutionTrace],
) -> dict[MethodKey, list[MethodExecution]]:
    by_key: dict[MethodKey, list[MethodExecution]] = defaultdict(list)
    for trace in traces:
        for m in trace.method_executions():
            by_key[m.key].append(m)
    return by_key


class MethodFailsExtractor(Extractor):
    """One predicate per (invocation, exception kind) seen anywhere."""

    def discover(self, successes, failures):
        seen: set[tuple[MethodKey, str]] = set()
        for trace in list(successes) + list(failures):
            for m in trace.method_executions():
                if m.exception and m.exception not in _IGNORED_EXCEPTIONS:
                    seen.add((m.key, m.exception))
        return [
            MethodFailsPredicate(key=key, exc_kind=exc)
            for key, exc in sorted(seen, key=lambda t: (t[0], t[1]))
        ]


class DurationExtractor(Extractor):
    """Too-slow and too-fast predicates from success-duration envelopes.

    For an invocation key present in successful runs, the successful
    durations define an envelope ``[min, max]``.  A failed run falling
    outside the envelope yields a candidate predicate whose threshold is
    the envelope edge (Figure 2 rows 3-4) — widened by ``slack``,
    because method durations in a concurrent program include
    scheduling-interleave noise of a few ticks and a razor-edge
    threshold would flip on re-execution (the paper's thresholds face
    the same clock-granularity caveat it discusses in Section 4).
    """

    def __init__(self, slack_fraction: float = 0.25, slack_min: int = 5) -> None:
        self.slack_fraction = slack_fraction
        self.slack_min = slack_min

    def _slack(self, value: int) -> int:
        return max(self.slack_min, int(value * self.slack_fraction))

    def discover(self, successes, failures):
        succ = _executions_by_key(successes)
        fail = _executions_by_key(failures)
        preds: list[PredicateDef] = []
        for key in sorted(set(succ) & set(fail)):
            ok = [m for m in succ[key] if m.exception is None]
            if not ok:
                continue
            durations = [m.duration for m in ok]
            lo, hi = min(durations), max(durations)
            lo = max(1, lo - self._slack(lo))
            hi = hi + self._slack(hi)
            returns = {m.return_value for m in ok if _hashable(m.return_value)}
            correct = next(iter(returns)) if len(returns) == 1 else None
            # Only completed invocations count: a crashed method's
            # duration is an artifact of where it died, and the crash is
            # already captured by a method-fails predicate.
            completed = [m for m in fail[key] if m.exception is None]
            if any(m.duration > hi for m in completed):
                preds.append(
                    TooSlowPredicate(key=key, threshold=hi, correct_return=correct)
                )
            if any(m.duration < lo for m in completed):
                preds.append(TooFastPredicate(key=key, threshold=lo))
        return preds


class WrongReturnExtractor(Extractor):
    """Return-value mismatch against a constant successful value."""

    def discover(self, successes, failures):
        succ = _executions_by_key(successes)
        fail = _executions_by_key(failures)
        preds: list[PredicateDef] = []
        for key in sorted(set(succ) & set(fail)):
            ok_returns = {
                m.return_value
                for m in succ[key]
                if m.exception is None and _hashable(m.return_value)
            }
            if len(ok_returns) != 1:
                continue  # no unique "correct value" to compare/repair with
            correct = next(iter(ok_returns))
            mismatch = any(
                m.exception is None and m.return_value != correct for m in fail[key]
            )
            if mismatch:
                preds.append(WrongReturnPredicate(key=key, correct_value=correct))
        return preds


class DataRaceExtractor(Extractor):
    """Lockset-based race candidates from any trace where they fire."""

    def discover(self, successes, failures):
        candidates: set[tuple[MethodKey, MethodKey, str]] = set()
        for trace in list(failures) + list(successes):
            execs = trace.method_executions()
            for i, ma in enumerate(execs):
                for mb in execs[i + 1 :]:
                    if ma.thread == mb.thread or not ma.overlaps(mb):
                        continue
                    shared = {a.obj for a in ma.accesses} & {
                        a.obj for a in mb.accesses
                    }
                    for obj in shared:
                        if racy_window(ma, mb, obj) is not None:
                            pair = tuple(sorted([ma.key, mb.key]))
                            candidates.add((pair[0], pair[1], obj))
        return [
            DataRacePredicate(a=a, b=b, obj=obj)
            for a, b, obj in sorted(candidates, key=lambda t: (t[2], t[0], t[1]))
        ]


class OrderViolationExtractor(Extractor):
    """Pairs strictly ordered in every success but flipped in a failure.

    To avoid a quadratic explosion of trivially-ordered pairs (every
    parent/child call, every sequential statement) we only keep pairs
    running on *different threads* — order violations are a concurrency
    phenomenon (Lu et al.'s study, cited in the paper).
    """

    def discover(self, successes, failures):
        if not successes:
            return []
        ordered: Optional[set[tuple[MethodKey, MethodKey]]] = None
        for trace in successes:
            execs = {m.key: m for m in trace.method_executions()}
            pairs: set[tuple[MethodKey, MethodKey]] = set()
            keys = sorted(execs)
            for first in keys:
                for second in keys:
                    if first == second:
                        continue
                    mf, ms = execs[first], execs[second]
                    if mf.thread == ms.thread:
                        continue
                    if mf.end_time <= ms.start_time:
                        pairs.add((first, second))
            ordered = pairs if ordered is None else (ordered & pairs)
        violated: list[tuple[MethodKey, MethodKey]] = []
        for first, second in sorted(ordered or ()):
            for trace in failures:
                mf, ms = trace.lookup(first), trace.lookup(second)
                if mf and ms and ms.start_time < mf.end_time:
                    violated.append((first, second))
                    break
        # Canonicalize: when several invocations on one side are all
        # ordered before the same `second` and all flip together (e.g.
        # every consumer-thread method precedes the premature Dispose),
        # only the *tightest* constraint is a meaningful predicate — the
        # `first` that ends latest in successful runs.  The looser pairs
        # are implied by it and would each register as a separate,
        # redundant fully-discriminative predicate.
        latest_end: dict[MethodKey, float] = {}
        for trace in successes:
            for m in trace.method_executions():
                latest_end[m.key] = max(latest_end.get(m.key, 0), m.end_time)
        tightest: dict[MethodKey, tuple[MethodKey, MethodKey]] = {}
        for first, second in violated:
            current = tightest.get(second)
            if current is None or latest_end.get(first, 0) > latest_end.get(
                current[0], 0
            ):
                tightest[second] = (first, second)
        # Symmetric pass: several `second`s under one `first` (a call and
        # its nested children all start early together) collapse to the
        # earliest-starting one.
        earliest_start: dict[MethodKey, float] = {}
        for trace in successes:
            for m in trace.method_executions():
                earliest_start[m.key] = min(
                    earliest_start.get(m.key, float("inf")), m.start_time
                )
        by_first: dict[MethodKey, tuple[MethodKey, MethodKey]] = {}
        for first, second in tightest.values():
            current = by_first.get(first)
            if current is None or earliest_start.get(
                second, float("inf")
            ) < earliest_start.get(current[1], float("inf")):
                by_first[first] = (first, second)
        return [
            OrderViolationPredicate(first=first, second=second)
            for first, second in sorted(by_first.values())
        ]


class MethodExecutedExtractor(Extractor):
    """"M executes" predicates for invocations absent from some runs.

    Invocations present in every trace are invariants (never
    discriminative), so only keys that appear in at least one failed
    trace and are missing from at least one trace become candidates.
    """

    def discover(self, successes, failures):
        all_traces = list(successes) + list(failures)
        seen_in: dict[MethodKey, int] = defaultdict(int)
        in_failed: set[MethodKey] = set()
        for trace in all_traces:
            for key in {m.key for m in trace.method_executions()}:
                seen_in[key] += 1
        for trace in failures:
            in_failed.update(m.key for m in trace.method_executions())
        candidates = [
            key
            for key in in_failed
            if seen_in[key] < len(all_traces)
        ]
        return [ExecutedPredicate(key=key) for key in sorted(candidates)]


class CompoundConjunctionExtractor(Extractor):
    """Conjunctions for nondeterministic causes (paper Section 3.2).

    When predicates A and B only cause the failure *together*, neither
    is fully discriminative (each also fires alone in successful runs),
    so plain AID would drop both.  This extractor composes base
    predicates discovered by ``inner`` extractors into pairwise
    conjunctions when

    * both conjuncts hold in **every** failed trace (a conjunction can
      only be fully discriminative if each part has perfect recall), and
    * neither conjunct is individually failure-equivalent already (the
      compound would be redundant), and
    * the conjunction never holds in a successful trace.

    The SD filter downstream re-checks full discrimination; this
    extractor only proposes sound candidates.  Intervening on a
    conjunction repairs every part, which certainly falsifies it.
    """

    def __init__(
        self,
        inner: Optional[Sequence[Extractor]] = None,
        max_compounds: int = 32,
    ) -> None:
        self.inner = list(inner) if inner is not None else None
        self.max_compounds = max_compounds

    def discover(self, successes, failures):
        inner = (
            self.inner
            if self.inner is not None
            else [
                DataRaceExtractor(),
                MethodFailsExtractor(),
                DurationExtractor(),
                WrongReturnExtractor(),
                OrderViolationExtractor(),
                MethodExecutedExtractor(),
            ]
        )
        base: dict[str, PredicateDef] = {}
        for extractor in inner:
            for pred in extractor.discover(successes, failures):
                base.setdefault(pred.pid, pred)

        # Truth tables of each base predicate over the corpus.
        succ_truth: dict[str, list[bool]] = {}
        fail_truth: dict[str, list[bool]] = {}
        for pid, pred in base.items():
            succ_truth[pid] = [pred.evaluate(t) is not None for t in successes]
            fail_truth[pid] = [pred.evaluate(t) is not None for t in failures]

        perfect_recall = [
            pid for pid in sorted(base) if all(fail_truth[pid])
        ]
        already_perfect = {
            pid
            for pid in perfect_recall
            if not any(succ_truth[pid])
        }
        candidates = [p for p in perfect_recall if p not in already_perfect]

        compounds: list[PredicateDef] = []
        from .predicates import CompoundAndPredicate

        for i, pid_a in enumerate(candidates):
            for pid_b in candidates[i + 1 :]:
                together_in_success = any(
                    a and b
                    for a, b in zip(succ_truth[pid_a], succ_truth[pid_b])
                )
                if together_in_success:
                    continue
                compounds.append(
                    CompoundAndPredicate(parts=(base[pid_a], base[pid_b]))
                )
                if len(compounds) >= self.max_compounds:
                    return compounds
        return compounds


class FailureExtractor(Extractor):
    """One failure predicate per distinct failure signature."""

    def discover(self, successes, failures):
        signatures = sorted(
            {t.failure.signature for t in failures if t.failure is not None}
        )
        return [FailurePredicate(signature=s) for s in signatures]


def default_extractors() -> list[Extractor]:
    """The paper's Figure 2 catalogue, in a deterministic order."""
    return [
        DataRaceExtractor(),
        MethodFailsExtractor(),
        DurationExtractor(),
        WrongReturnExtractor(),
        OrderViolationExtractor(),
        MethodExecutedExtractor(),
        FailureExtractor(),
    ]


def _hashable(value: object) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


@dataclass
class PredicateSuite:
    """A frozen set of predicate definitions, evaluable on any trace."""

    defs: dict[str, PredicateDef] = field(default_factory=dict)

    @classmethod
    def discover(
        cls,
        successes: Sequence[ExecutionTrace],
        failures: Sequence[ExecutionTrace],
        extractors: Optional[Iterable[Extractor]] = None,
        program: Optional[Program] = None,
        safe_only: bool = True,
    ) -> "PredicateSuite":
        """Run all extractors over a labeled corpus and build the suite.

        When ``program`` is given and ``safe_only`` is set, predicates
        whose interventions are unsafe (Section 3.3) are dropped — except
        failure predicates, which are never intervened on.
        """
        extractors = (
            list(extractors) if extractors is not None else default_extractors()
        )
        defs: dict[str, PredicateDef] = {}
        for extractor in extractors:
            for pred in extractor.discover(successes, failures):
                defs.setdefault(pred.pid, pred)
        if program is not None and safe_only:
            defs = {
                pid: p
                for pid, p in defs.items()
                if isinstance(p, FailurePredicate) or p.is_safe(program)
            }
        return cls(defs=defs)

    def __len__(self) -> int:
        return len(self.defs)

    @property
    def fingerprint(self) -> str:
        """Stable identity of the frozen suite: digest over every
        predicate's full definition digest (see
        :meth:`~repro.core.predicates.PredicateDef.definition_digest`).
        Persistent evaluation memos use this to notice suite drift."""
        from ..sim.serialize import stable_digest

        return stable_digest(
            {pid: p.definition_digest() for pid, p in self.defs.items()}
        )

    def __contains__(self, pid: str) -> bool:
        return pid in self.defs

    def __getitem__(self, pid: str) -> PredicateDef:
        return self.defs[pid]

    def pids(self) -> list[str]:
        return sorted(self.defs)

    def failure_pids(self) -> list[str]:
        return sorted(
            pid for pid, p in self.defs.items() if isinstance(p, FailurePredicate)
        )

    def to_dict(self) -> dict:
        """The frozen suite as a JSON-able payload (order-preserving).

        Inverse: :meth:`from_dict`.  Round-tripping preserves every pid,
        the definition order, and the suite :attr:`fingerprint` — which
        is what lets a persisted suite stand in for rediscovery (see
        ``repro corpus analyze`` warm starts)."""
        from .predicates import PREDICATE_FORMAT_VERSION, predicate_to_dict

        return {
            "version": PREDICATE_FORMAT_VERSION,
            "predicates": [predicate_to_dict(p) for p in self.defs.values()],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "PredicateSuite":
        """Rebuild a suite serialized by :meth:`to_dict`."""
        from .predicates import PREDICATE_FORMAT_VERSION, predicate_from_dict

        version = raw.get("version")
        if version != PREDICATE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported predicate-suite version {version!r} "
                f"(this build reads version {PREDICATE_FORMAT_VERSION})"
            )
        defs: dict[str, PredicateDef] = {}
        for payload in raw.get("predicates", []):
            pred = predicate_from_dict(payload)
            defs[pred.pid] = pred
        return cls(defs=defs)

    def evaluate(self, trace: ExecutionTrace, seed: int = 0) -> PredicateLog:
        """Evaluate every predicate on one trace → a predicate log."""
        observations: dict[str, Observation] = {}
        for pid, pred in self.defs.items():
            obs = pred.evaluate(trace)
            if obs is not None:
                observations[pid] = obs
        return PredicateLog(
            observations=observations,
            failed=trace.failed,
            seed=seed,
            failure_signature=(
                trace.failure.signature if trace.failure is not None else None
            ),
        )

    def evaluate_all(self, traces: Sequence[ExecutionTrace]) -> list[PredicateLog]:
        return [self.evaluate(t, seed=t.seed) for t in traces]

    def restrict(self, pids: Iterable[str]) -> "PredicateSuite":
        keep = set(pids)
        return PredicateSuite(
            defs={pid: p for pid, p in self.defs.items() if pid in keep}
        )
