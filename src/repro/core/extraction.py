"""Predicate extraction: from execution traces to predicate logs.

Mirrors the paper's two-phase design (Appendix A): the *instrumentation*
(our simulator) records raw execution traces; extraction happens offline
and can be re-designed after the fact.  Each :class:`Extractor` scans a
corpus of labeled traces and proposes :class:`PredicateDef` candidates;
the resulting :class:`PredicateSuite` is then frozen and used to
evaluate *any* trace — including traces produced later under
intervention, which is how intervention outcomes are interpreted.

Extractors only *propose* predicates; discriminative filtering is the
job of :mod:`repro.core.statistical`.

Discovery is two-phase for the default catalogue (see
:mod:`repro.core.evalkernel`): a per-trace **propose** pass folds each
trace into a :class:`~repro.core.evalkernel.CorpusSummary` (fanned over
an :class:`~repro.exec.engine.ExecutionEngine` when one is given), and a
serial **calibrate** pass — each extractor's :meth:`Extractor.calibrate`
— turns the merged summary into the same predicate list its
:meth:`Extractor.discover` would produce from the raw traces.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from ..sim.program import Program
from ..sim.tracing import ExecutionTrace, MethodExecution, MethodKey
from .evalkernel import (
    IGNORED_EXCEPTIONS,
    CorpusSummary,
    _hashable,
    ordered_cross_thread_pairs,
    race_candidates,
    summarize_corpus,
)
from .predicates import (
    DataRacePredicate,
    ExecutedPredicate,
    FailurePredicate,
    MethodFailsPredicate,
    Observation,
    OrderViolationPredicate,
    PredicateDef,
    TooFastPredicate,
    TooSlowPredicate,
    WrongReturnPredicate,
)
from .statistical import PredicateLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.engine import ExecutionEngine
    from .evalkernel import SuiteKernel

# Exception kinds that mark harness artifacts, not program behaviour.
_IGNORED_EXCEPTIONS = IGNORED_EXCEPTIONS


class Extractor:
    """Base class: proposes predicate definitions from labeled traces."""

    def discover(
        self,
        successes: Sequence[ExecutionTrace],
        failures: Sequence[ExecutionTrace],
    ) -> list[PredicateDef]:
        raise NotImplementedError

    def calibrate(self, summary: CorpusSummary) -> list[PredicateDef]:
        """Two-phase discovery's serial half: the predicates
        :meth:`discover` would return, derived from a merged
        :class:`~repro.core.evalkernel.CorpusSummary` instead of the raw
        traces.  Only classes in :data:`TWO_PHASE_EXTRACTORS` implement
        it; everything else falls back to :meth:`discover`."""
        raise NotImplementedError


def _executions_by_key(
    traces: Sequence[ExecutionTrace],
) -> dict[MethodKey, list[MethodExecution]]:
    by_key: dict[MethodKey, list[MethodExecution]] = defaultdict(list)
    for trace in traces:
        for m in trace.method_executions():
            by_key[m.key].append(m)
    return by_key


class MethodFailsExtractor(Extractor):
    """One predicate per (invocation, exception kind) seen anywhere."""

    def discover(self, successes, failures):
        seen: set[tuple[MethodKey, str]] = set()
        for trace in list(successes) + list(failures):
            for m in trace.method_executions():
                if m.exception and m.exception not in _IGNORED_EXCEPTIONS:
                    seen.add((m.key, m.exception))
        return self._from_sites(seen)

    def calibrate(self, summary):
        return self._from_sites(summary.failing)

    @staticmethod
    def _from_sites(sites):
        return [
            MethodFailsPredicate(key=key, exc_kind=exc)
            for key, exc in sorted(sites, key=lambda t: (t[0], t[1]))
        ]


class DurationExtractor(Extractor):
    """Too-slow and too-fast predicates from success-duration envelopes.

    For an invocation key present in successful runs, the successful
    durations define an envelope ``[min, max]``.  A failed run falling
    outside the envelope yields a candidate predicate whose threshold is
    the envelope edge (Figure 2 rows 3-4) — widened by ``slack``,
    because method durations in a concurrent program include
    scheduling-interleave noise of a few ticks and a razor-edge
    threshold would flip on re-execution (the paper's thresholds face
    the same clock-granularity caveat it discusses in Section 4).
    """

    def __init__(self, slack_fraction: float = 0.25, slack_min: int = 5) -> None:
        self.slack_fraction = slack_fraction
        self.slack_min = slack_min

    def _slack(self, value: int) -> int:
        return max(self.slack_min, int(value * self.slack_fraction))

    def discover(self, successes, failures):
        succ = _executions_by_key(successes)
        fail = _executions_by_key(failures)
        preds: list[PredicateDef] = []
        for key in sorted(set(succ) & set(fail)):
            ok = [m for m in succ[key] if m.exception is None]
            if not ok:
                continue
            durations = [m.duration for m in ok]
            lo, hi = min(durations), max(durations)
            lo = max(1, lo - self._slack(lo))
            hi = hi + self._slack(hi)
            returns = {m.return_value for m in ok if _hashable(m.return_value)}
            correct = next(iter(returns)) if len(returns) == 1 else None
            # Only completed invocations count: a crashed method's
            # duration is an artifact of where it died, and the crash is
            # already captured by a method-fails predicate.
            completed = [m for m in fail[key] if m.exception is None]
            if any(m.duration > hi for m in completed):
                preds.append(
                    TooSlowPredicate(key=key, threshold=hi, correct_return=correct)
                )
            if any(m.duration < lo for m in completed):
                preds.append(TooFastPredicate(key=key, threshold=lo))
        return preds

    def calibrate(self, summary):
        preds: list[PredicateDef] = []
        succ, fail = summary.succ_stats, summary.fail_stats
        for key in sorted(set(succ) & set(fail)):
            ok = succ[key]
            if not ok.n_completed:
                continue
            lo = max(1, ok.min_duration - self._slack(ok.min_duration))
            hi = ok.max_duration + self._slack(ok.max_duration)
            correct = ok.returns.single
            completed = fail[key]
            if completed.n_completed and completed.max_duration > hi:
                preds.append(
                    TooSlowPredicate(key=key, threshold=hi, correct_return=correct)
                )
            if completed.n_completed and completed.min_duration < lo:
                preds.append(TooFastPredicate(key=key, threshold=lo))
        return preds


class WrongReturnExtractor(Extractor):
    """Return-value mismatch against a constant successful value."""

    def discover(self, successes, failures):
        succ = _executions_by_key(successes)
        fail = _executions_by_key(failures)
        preds: list[PredicateDef] = []
        for key in sorted(set(succ) & set(fail)):
            ok_returns = {
                m.return_value
                for m in succ[key]
                if m.exception is None and _hashable(m.return_value)
            }
            if len(ok_returns) != 1:
                continue  # no unique "correct value" to compare/repair with
            correct = next(iter(ok_returns))
            mismatch = any(
                m.exception is None and m.return_value != correct for m in fail[key]
            )
            if mismatch:
                preds.append(WrongReturnPredicate(key=key, correct_value=correct))
        return preds

    def calibrate(self, summary):
        preds: list[PredicateDef] = []
        succ, fail = summary.succ_stats, summary.fail_stats
        for key in sorted(set(succ) & set(fail)):
            ok = succ[key].returns
            if not ok.seen or ok.multi:
                continue  # no unique "correct value" to compare/repair with
            correct = ok.value
            observed = fail[key].returns
            # ≥2 distinct completed values cannot both equal ``correct``;
            # a single one mismatches iff it differs.
            mismatch = observed.multi or (
                observed.seen and observed.value != correct
            )
            if mismatch:
                preds.append(WrongReturnPredicate(key=key, correct_value=correct))
        return preds


class DataRaceExtractor(Extractor):
    """Lockset-based race candidates from any trace where they fire."""

    def discover(self, successes, failures):
        candidates: set[tuple[MethodKey, MethodKey, str]] = set()
        for trace in list(failures) + list(successes):
            candidates |= race_candidates(trace)
        return self._from_candidates(candidates)

    def calibrate(self, summary):
        return self._from_candidates(summary.races)

    @staticmethod
    def _from_candidates(candidates):
        return [
            DataRacePredicate(a=a, b=b, obj=obj)
            for a, b, obj in sorted(candidates, key=lambda t: (t[2], t[0], t[1]))
        ]


class OrderViolationExtractor(Extractor):
    """Pairs strictly ordered in every success but flipped in a failure.

    To avoid a quadratic explosion of trivially-ordered pairs (every
    parent/child call, every sequential statement) we only keep pairs
    running on *different threads* — order violations are a concurrency
    phenomenon (Lu et al.'s study, cited in the paper).
    """

    def discover(self, successes, failures):
        if not successes:
            return []
        ordered: Optional[set[tuple[MethodKey, MethodKey]]] = None
        for trace in successes:
            # Sort-based sweep: output-sensitive, identical pair set to
            # the all-pairs comparison walk it replaced.
            pairs = ordered_cross_thread_pairs(trace.method_executions())
            ordered = pairs if ordered is None else (ordered & pairs)
        violated: list[tuple[MethodKey, MethodKey]] = []
        for first, second in sorted(ordered or ()):
            for trace in failures:
                mf, ms = trace.lookup(first), trace.lookup(second)
                if mf and ms and ms.start_time < mf.end_time:
                    violated.append((first, second))
                    break
        latest_end: dict[MethodKey, float] = {}
        for trace in successes:
            for m in trace.method_executions():
                latest_end[m.key] = max(latest_end.get(m.key, 0), m.end_time)
        earliest_start: dict[MethodKey, float] = {}
        for trace in successes:
            for m in trace.method_executions():
                earliest_start[m.key] = min(
                    earliest_start.get(m.key, float("inf")), m.start_time
                )
        return self._canonicalize(violated, latest_end, earliest_start)

    def calibrate(self, summary):
        if summary.ordered is None:
            return []
        violated: list[tuple[MethodKey, MethodKey]] = []
        for first, second in sorted(summary.ordered):
            for windows in summary.fail_windows:
                mf, ms = windows.get(first), windows.get(second)
                if mf is not None and ms is not None and ms[0] < mf[1]:
                    violated.append((first, second))
                    break
        return self._canonicalize(
            violated, summary.latest_end, summary.earliest_start
        )

    @staticmethod
    def _canonicalize(violated, latest_end, earliest_start):
        # Canonicalize: when several invocations on one side are all
        # ordered before the same `second` and all flip together (e.g.
        # every consumer-thread method precedes the premature Dispose),
        # only the *tightest* constraint is a meaningful predicate — the
        # `first` that ends latest in successful runs.  The looser pairs
        # are implied by it and would each register as a separate,
        # redundant fully-discriminative predicate.
        tightest: dict[MethodKey, tuple[MethodKey, MethodKey]] = {}
        for first, second in violated:
            current = tightest.get(second)
            if current is None or latest_end.get(first, 0) > latest_end.get(
                current[0], 0
            ):
                tightest[second] = (first, second)
        # Symmetric pass: several `second`s under one `first` (a call and
        # its nested children all start early together) collapse to the
        # earliest-starting one.
        by_first: dict[MethodKey, tuple[MethodKey, MethodKey]] = {}
        for first, second in tightest.values():
            current = by_first.get(first)
            if current is None or earliest_start.get(
                second, float("inf")
            ) < earliest_start.get(current[1], float("inf")):
                by_first[first] = (first, second)
        return [
            OrderViolationPredicate(first=first, second=second)
            for first, second in sorted(by_first.values())
        ]


class MethodExecutedExtractor(Extractor):
    """"M executes" predicates for invocations absent from some runs.

    Invocations present in every trace are invariants (never
    discriminative), so only keys that appear in at least one failed
    trace and are missing from at least one trace become candidates.
    """

    def discover(self, successes, failures):
        all_traces = list(successes) + list(failures)
        seen_in: dict[MethodKey, int] = defaultdict(int)
        in_failed: set[MethodKey] = set()
        for trace in all_traces:
            for key in {m.key for m in trace.method_executions()}:
                seen_in[key] += 1
        for trace in failures:
            in_failed.update(m.key for m in trace.method_executions())
        candidates = [
            key
            for key in in_failed
            if seen_in[key] < len(all_traces)
        ]
        return [ExecutedPredicate(key=key) for key in sorted(candidates)]

    def calibrate(self, summary):
        candidates = [
            key
            for key in summary.fail_stats
            if summary.presence[key] < summary.n_traces
        ]
        return [ExecutedPredicate(key=key) for key in sorted(candidates)]


class CompoundConjunctionExtractor(Extractor):
    """Conjunctions for nondeterministic causes (paper Section 3.2).

    When predicates A and B only cause the failure *together*, neither
    is fully discriminative (each also fires alone in successful runs),
    so plain AID would drop both.  This extractor composes base
    predicates discovered by ``inner`` extractors into pairwise
    conjunctions when

    * both conjuncts hold in **every** failed trace (a conjunction can
      only be fully discriminative if each part has perfect recall), and
    * neither conjunct is individually failure-equivalent already (the
      compound would be redundant), and
    * the conjunction never holds in a successful trace.

    The SD filter downstream re-checks full discrimination; this
    extractor only proposes sound candidates.  Intervening on a
    conjunction repairs every part, which certainly falsifies it.
    """

    def __init__(
        self,
        inner: Optional[Sequence[Extractor]] = None,
        max_compounds: int = 32,
    ) -> None:
        self.inner = list(inner) if inner is not None else None
        self.max_compounds = max_compounds

    def discover(self, successes, failures):
        inner = (
            self.inner
            if self.inner is not None
            else [
                DataRaceExtractor(),
                MethodFailsExtractor(),
                DurationExtractor(),
                WrongReturnExtractor(),
                OrderViolationExtractor(),
                MethodExecutedExtractor(),
            ]
        )
        base: dict[str, PredicateDef] = {}
        for extractor in inner:
            for pred in extractor.discover(successes, failures):
                base.setdefault(pred.pid, pred)

        # Truth tables of each base predicate over the corpus.
        succ_truth: dict[str, list[bool]] = {}
        fail_truth: dict[str, list[bool]] = {}
        for pid, pred in base.items():
            succ_truth[pid] = [pred.evaluate(t) is not None for t in successes]
            fail_truth[pid] = [pred.evaluate(t) is not None for t in failures]

        perfect_recall = [
            pid for pid in sorted(base) if all(fail_truth[pid])
        ]
        already_perfect = {
            pid
            for pid in perfect_recall
            if not any(succ_truth[pid])
        }
        candidates = [p for p in perfect_recall if p not in already_perfect]

        compounds: list[PredicateDef] = []
        from .predicates import CompoundAndPredicate

        for i, pid_a in enumerate(candidates):
            for pid_b in candidates[i + 1 :]:
                together_in_success = any(
                    a and b
                    for a, b in zip(succ_truth[pid_a], succ_truth[pid_b])
                )
                if together_in_success:
                    continue
                compounds.append(
                    CompoundAndPredicate(parts=(base[pid_a], base[pid_b]))
                )
                if len(compounds) >= self.max_compounds:
                    return compounds
        return compounds


class FailureExtractor(Extractor):
    """One failure predicate per distinct failure signature."""

    def discover(self, successes, failures):
        signatures = sorted(
            {t.failure.signature for t in failures if t.failure is not None}
        )
        return [FailurePredicate(signature=s) for s in signatures]

    def calibrate(self, summary):
        return [FailurePredicate(signature=s) for s in sorted(summary.signatures)]


#: Extractor classes whose discovery splits into the parallelizable
#: propose phase + serial calibrate phase.  Exact-type membership:
#: a subclass with an overridden ``discover`` must not be silently
#: rerouted through the parent's calibrate.
TWO_PHASE_EXTRACTORS: frozenset[type] = frozenset(
    {
        DataRaceExtractor,
        MethodFailsExtractor,
        DurationExtractor,
        WrongReturnExtractor,
        OrderViolationExtractor,
        MethodExecutedExtractor,
        FailureExtractor,
    }
)

#: Which :class:`~repro.core.evalkernel.CorpusSummary` sections each
#: two-phase extractor calibrates from — the propose pass only collects
#: what the present stack will read (a failure-signature stack must not
#: pay for the race walk or the ordered-pairs sweep).
_SUMMARY_NEEDS: dict[type, frozenset[str]] = {
    DataRaceExtractor: frozenset({"races"}),
    MethodFailsExtractor: frozenset({"stats"}),
    DurationExtractor: frozenset({"stats"}),
    WrongReturnExtractor: frozenset({"stats"}),
    OrderViolationExtractor: frozenset({"stats", "order"}),
    MethodExecutedExtractor: frozenset({"stats"}),
    FailureExtractor: frozenset(),
}


def default_extractors() -> list[Extractor]:
    """The paper's Figure 2 catalogue, in a deterministic order."""
    return [
        DataRaceExtractor(),
        MethodFailsExtractor(),
        DurationExtractor(),
        WrongReturnExtractor(),
        OrderViolationExtractor(),
        MethodExecutedExtractor(),
        FailureExtractor(),
    ]


@dataclass
class PredicateSuite:
    """A frozen set of predicate definitions, evaluable on any trace."""

    defs: dict[str, PredicateDef] = field(default_factory=dict)

    @classmethod
    def discover(
        cls,
        successes: Sequence[ExecutionTrace],
        failures: Sequence[ExecutionTrace],
        extractors: Optional[Iterable[Extractor]] = None,
        program: Optional[Program] = None,
        safe_only: bool = True,
        engine: Optional["ExecutionEngine"] = None,
        two_phase: Optional[bool] = None,
    ) -> "PredicateSuite":
        """Run all extractors over a labeled corpus and build the suite.

        When ``program`` is given and ``safe_only`` is set, predicates
        whose interventions are unsafe (Section 3.3) are dropped — except
        failure predicates, which are never intervened on.

        Extractors in :data:`TWO_PHASE_EXTRACTORS` run two-phase: one
        propose pass summarizes every trace (fanned across ``engine``'s
        backend when it has workers to offer — the summary is identical
        for any job count), then each extractor calibrates serially from
        the merged summary.  Other extractors keep their whole-corpus
        :meth:`Extractor.discover`.  ``two_phase=False`` forces the
        legacy single-phase walk everywhere (the reference the tests and
        benchmarks compare against); the suite is byte-identical either
        way.
        """
        extractors = (
            list(extractors) if extractors is not None else default_extractors()
        )
        if two_phase is None:
            two_phase = any(type(e) in TWO_PHASE_EXTRACTORS for e in extractors)
        summary: Optional[CorpusSummary] = None
        if two_phase and any(type(e) in TWO_PHASE_EXTRACTORS for e in extractors):
            needs: set[str] = set()
            for extractor in extractors:
                needs |= _SUMMARY_NEEDS.get(type(extractor), frozenset())
            summary = summarize_corpus(
                successes,
                failures,
                engine=engine,
                need_stats="stats" in needs,
                need_order="order" in needs,
                need_races="races" in needs,
            )
        defs: dict[str, PredicateDef] = {}
        for extractor in extractors:
            if summary is not None and type(extractor) in TWO_PHASE_EXTRACTORS:
                proposed = extractor.calibrate(summary)
            else:
                proposed = extractor.discover(successes, failures)
            for pred in proposed:
                defs.setdefault(pred.pid, pred)
        if program is not None and safe_only:
            defs = {
                pid: p
                for pid, p in defs.items()
                if isinstance(p, FailurePredicate) or p.is_safe(program)
            }
        return cls(defs=defs)

    def __len__(self) -> int:
        return len(self.defs)

    @property
    def fingerprint(self) -> str:
        """Stable identity of the frozen suite: digest over every
        predicate's full definition digest (see
        :meth:`~repro.core.predicates.PredicateDef.definition_digest`).
        Persistent evaluation memos use this to notice suite drift."""
        from ..sim.serialize import stable_digest

        return stable_digest(
            {pid: p.definition_digest() for pid, p in self.defs.items()}
        )

    def __contains__(self, pid: str) -> bool:
        return pid in self.defs

    def __getitem__(self, pid: str) -> PredicateDef:
        return self.defs[pid]

    def pids(self) -> list[str]:
        return sorted(self.defs)

    def failure_pids(self) -> list[str]:
        return sorted(
            pid for pid, p in self.defs.items() if isinstance(p, FailurePredicate)
        )

    def columnar_pids(self) -> list[str]:
        """Pids whose definitions support the columnar batch protocol
        (:meth:`~repro.core.predicates.PredicateDef.evaluate_columnar`)
        — the ones whole-shard sweeps can serve; the rest take the
        per-trace object path.  Sorted for stable reporting."""
        return sorted(
            pid for pid, p in self.defs.items() if p.supports_columnar
        )

    def to_dict(self) -> dict:
        """The frozen suite as a JSON-able payload (order-preserving).

        Inverse: :meth:`from_dict`.  Round-tripping preserves every pid,
        the definition order, and the suite :attr:`fingerprint` — which
        is what lets a persisted suite stand in for rediscovery (see
        ``repro corpus analyze`` warm starts)."""
        from .predicates import PREDICATE_FORMAT_VERSION, predicate_to_dict

        return {
            "version": PREDICATE_FORMAT_VERSION,
            "predicates": [predicate_to_dict(p) for p in self.defs.values()],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "PredicateSuite":
        """Rebuild a suite serialized by :meth:`to_dict`."""
        from .predicates import PREDICATE_FORMAT_VERSION, predicate_from_dict

        version = raw.get("version")
        if version != PREDICATE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported predicate-suite version {version!r} "
                f"(this build reads version {PREDICATE_FORMAT_VERSION})"
            )
        defs: dict[str, PredicateDef] = {}
        for payload in raw.get("predicates", []):
            pred = predicate_from_dict(payload)
            defs[pred.pid] = pred
        return cls(defs=defs)

    def kernel(self) -> "SuiteKernel":
        """The suite's batch evaluator, built once per frozen pid set.

        Rebuilt automatically when ``defs`` gains or loses pids (e.g. a
        suite assembled incrementally); replacing a predicate object
        in-place under an unchanged pid is not supported — freeze a new
        suite instead.
        """
        from .evalkernel import SuiteKernel

        cached = getattr(self, "_kernel", None)
        if cached is None or cached.pids != tuple(self.defs):
            cached = SuiteKernel(self.defs)
            self._kernel = cached
        return cached

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_kernel", None)  # derived; rebuild after unpickling
        return state

    def evaluate(self, trace: ExecutionTrace, seed: int = 0) -> PredicateLog:
        """Evaluate every predicate on one trace → a predicate log.

        Routed through the :meth:`kernel` — one indexed pass per trace,
        byte-identical to the per-predicate ``pred.evaluate(trace)``
        loop it replaced (same observations, same order).
        """
        return PredicateLog(
            observations=self.kernel().observations(trace),
            failed=trace.failed,
            seed=seed,
            failure_signature=(
                trace.failure.signature if trace.failure is not None else None
            ),
        )

    def evaluate_all(self, traces: Sequence[ExecutionTrace]) -> list[PredicateLog]:
        return [self.evaluate(t, seed=t.seed) for t in traces]

    def restrict(self, pids: Iterable[str]) -> "PredicateSuite":
        keep = set(pids)
        return PredicateSuite(
            defs={pid: p for pid, p in self.defs.items() if pid in keep}
        )
