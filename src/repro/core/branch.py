"""Branch pruning — the paper's Algorithm 2.

Walks the AC-DAG by topological level.  Single nodes (still in a chain)
are skipped; when a *junction* is encountered — several minimal
predicates at once — at most one branch can lie on the single causal
path, so GIWP is run over the branch disjunctions to find it, and every
spurious branch is removed wholesale.  With ``B`` branches this costs
about ``log B`` interventions instead of interventions on every branch
predicate, which is where the ``J log T`` term of the Section 6.3.1
bound comes from.

After the walk the AC-DAG has been reduced to (approximately) a chain;
Algorithm 3 finishes the job with plain GIWP over the remaining
predicates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from .acdag import ACDag
from .giwp import GIWP, GIWPResult, topological_item_order
from .intervention import InterventionRunner
from .pruning import GroupItem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.engine import ExecutionEngine


@dataclass
class BranchPruneResult:
    """What branch pruning did to the AC-DAG (mutated in place)."""

    junctions: int = 0
    removed: list[str] = field(default_factory=list)
    giwp_results: list[GIWPResult] = field(default_factory=list)

    @property
    def n_rounds(self) -> int:
        return sum(r.n_rounds for r in self.giwp_results)


def branch_prune(
    dag: ACDag,
    runner: InterventionRunner,
    rng: Optional[random.Random] = None,
    observational_pruning: bool = True,
    engine: Optional["ExecutionEngine"] = None,
) -> BranchPruneResult:
    """Reduce ``dag`` to an approximate causal chain (Algorithm 2).

    The DAG is mutated: spurious branches and unreachable predicates are
    removed.  The runner is consulted only at junctions; every junction
    probe executes through ``engine`` (defaulting to the runner's own)
    and its rounds are tallied under the ``branch`` phase.
    """
    rng = rng or random.Random(0)
    result = BranchPruneResult()
    processed: set[str] = set()  # the paper's C, the potential-causal chain

    while True:
        pool = dag.predicates - processed
        if not pool:
            break
        level = dag.minimal_elements(among=pool)
        if len(level) == 1:
            processed.add(level[0])
            continue

        branches = dag.branches_at(level)
        if all(len(b) == 1 for b in branches):
            # Degenerate junction: every branch is a single predicate, so
            # a branch intervention eliminates nothing a plain chain
            # round would not (the J·log T savings of Section 6.3.1 need
            # multi-predicate branches).  Walk past it; GIWP resolves
            # these predicates with ordinary halving.
            processed.update(level)
            continue

        # A junction: find the causal branch via group intervention.
        result.junctions += 1
        items = [GroupItem.disjunction(b.pid, b.members) for b in branches]
        items = topological_item_order(items, [[i.pid for i in items]], rng)

        def branch_reaches(a: GroupItem, b: GroupItem) -> bool:
            # Branch *heads* are mutually unordered by construction, but
            # member predicates of one branch may still precede members
            # of another; Definition 2's ancestor exemption must honour
            # that, or intervening on one branch could falsely prune a
            # causally-upstream sibling.
            return any(
                dag.reaches(x, y) for x in a.predicates for y in b.predicates
            )

        giwp = GIWP(
            runner,
            reaches=branch_reaches,
            observational_pruning=observational_pruning,
            # With a single causal path, most junctions contain no causal
            # branch at all: one whole-junction probe dismisses them.
            # For two branches plain halving already costs two rounds,
            # so the opener only pays off from three branches up.
            probe_all_first=len(items) >= 3,
            engine=engine,
            phase="branch",
        )
        outcome = giwp.run(items)
        result.giwp_results.append(outcome)

        members_of = {i.pid: i.predicates for i in items}
        removed_now: set[str] = set()
        for item in outcome.spurious:
            removed_now |= members_of[item.pid]
        dag.remove(removed_now)
        result.removed.extend(sorted(removed_now))

        # Line 16: drop predicates no longer reachable from the
        # potential-causal prefix (they hung off pruned branches).
        if processed:
            unreachable = {
                u
                for u in dag.predicates - processed
                if not any(dag.reaches(c, u) for c in processed)
            }
            if unreachable:
                dag.remove(unreachable)
                result.removed.extend(sorted(unreachable))
                removed_now |= unreachable

        if not removed_now:
            # Degenerate junction (e.g. every branch reported causal,
            # possible only when the single-causal-path assumption is
            # violated).  Mark the heads processed to guarantee progress.
            processed.update(level)

    return result
