"""String-keyed plugin registries: the API's extension points.

Role
----
Every name a :class:`~repro.api.spec.RunSpec` can mention — a workload,
an execution backend, a predicate extractor, a precedence policy —
resolves through a :class:`Registry` here.  The CLI builds its
``choices`` lists from the same registries, so a third-party package
that registers a workload or a backend at import time shows up in
``repro debug``/``repro run`` with no core changes::

    from repro.api.registry import workloads

    @workloads.register("my-service")
    def build() -> Workload:
        ...

Invariants
----------
* lookup failures are actionable: :class:`RegistryError` names the
  registry and lists every registered key;
* registration is last-write-wins only with ``replace=True`` —
  accidental shadowing of a bundled name is an error;
* :data:`workloads` *is* :data:`repro.workloads.common.REGISTRY` (one
  object, two import paths), so the bundled case studies and
  third-party registrations can never drift apart.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, Optional, TypeVar

T = TypeVar("T")


class RegistryError(KeyError):
    """An unknown key was looked up (message lists the known ones)."""

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message

    def __str__(self) -> str:  # KeyError would repr-quote the message
        return self.message


class Registry(Generic[T]):
    """A named string → factory mapping with decorator registration."""

    def __init__(self, kind: str) -> None:
        #: what this registry holds, for error messages ("workload", …)
        self.kind = kind
        self._factories: dict[str, T] = {}

    def register(
        self, name: str, factory: Optional[T] = None, replace: bool = False
    ):
        """Register ``factory`` under ``name``; usable as a decorator."""

        def _register(fn: T) -> T:
            if not replace and name in self._factories:
                raise RegistryError(
                    f"{self.kind} {name!r} is already registered "
                    "(pass replace=True to override)"
                )
            self._factories[name] = fn
            return fn

        if factory is not None:
            return _register(factory)
        return _register

    def get(self, name: str) -> T:
        """The registered factory, or a :class:`RegistryError` naming
        every valid key."""
        try:
            return self._factories[name]
        except KeyError:
            known = ", ".join(sorted(self._factories)) or "(none)"
            raise RegistryError(
                f"unknown {self.kind} {name!r} (registered: {known})"
            ) from None

    def build(self, name: str, *args, **kwargs):
        """Call the registered factory."""
        return self.get(name)(*args, **kwargs)

    def names(self) -> list[str]:
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)


# ---------------------------------------------------------------------------
# The four bundled registries
# ---------------------------------------------------------------------------

#: name → zero-arg builder returning a :class:`repro.workloads.Workload`.
#: This is the *same object* as ``repro.workloads.common.REGISTRY``; the
#: bundled case studies register themselves into it at import time.
workloads: Registry[Callable] = Registry("workload")

#: name → factory(jobs) returning a :class:`repro.exec.backends.Backend`.
backends: Registry[Callable] = Registry("backend")

#: name → zero-arg factory returning a :class:`repro.core.Extractor`.
extractors: Registry[Callable] = Registry("extractor")

#: name → zero-arg factory returning a
#: :class:`repro.core.precedence.PrecedencePolicy`.
policies: Registry[Callable] = Registry("precedence policy")

#: name → factory(seed=…, **params) returning a
#: :class:`repro.sim.schedule.SchedulerStrategy`.
strategies: Registry[Callable] = Registry("scheduler strategy")


def _register_builtins() -> None:
    """Populate the backend/extractor/policy registries.

    Imported lazily so this module stays import-cycle-free (workloads
    self-register on ``repro.workloads`` import instead)."""
    from ..core.extraction import (
        CompoundConjunctionExtractor,
        DataRaceExtractor,
        DurationExtractor,
        FailureExtractor,
        MethodExecutedExtractor,
        MethodFailsExtractor,
        OrderViolationExtractor,
        WrongReturnExtractor,
    )
    from ..core.precedence import (
        EndTimePolicy,
        KindAnchorPolicy,
        LamportAnchorPolicy,
        StartTimePolicy,
    )
    from ..exec.backends import BACKENDS
    from ..explore.strategies import DelayStrategy, PCTStrategy
    from ..sim.schedule import RandomStrategy

    for name in BACKENDS:
        backends.register(name, _backend_factory(name))

    for name, cls in (
        ("random", RandomStrategy),
        ("pct", PCTStrategy),
        ("delay", DelayStrategy),
    ):
        strategies.register(name, cls)
    strategies.register("replay", _replay_strategy)

    for name, cls in (
        ("data-race", DataRaceExtractor),
        ("method-fails", MethodFailsExtractor),
        ("duration", DurationExtractor),
        ("wrong-return", WrongReturnExtractor),
        ("order-violation", OrderViolationExtractor),
        ("method-executed", MethodExecutedExtractor),
        ("compound", CompoundConjunctionExtractor),
        ("failure", FailureExtractor),
    ):
        extractors.register(name, cls)

    for name, cls in (
        ("kind-anchor", KindAnchorPolicy),
        ("start-time", StartTimePolicy),
        ("end-time", EndTimePolicy),
        ("lamport", LamportAnchorPolicy),
    ):
        policies.register(name, cls)


def _backend_factory(name: str) -> Callable:
    def factory(jobs: Optional[int] = None):
        from ..exec.backends import make_backend

        return make_backend(name, jobs)

    factory.__name__ = f"make_{name}_backend"
    return factory


def _replay_strategy(seed: int = 0, schedule=None, **params):
    """Factory for the ``replay`` strategy.

    ``schedule`` may be a :class:`~repro.sim.schedule.Schedule`, an
    already-parsed schedule dict, or a path to a saved schedule file.
    ``seed`` is accepted (and ignored) so the factory matches the
    uniform ``factory(seed=…, **params)`` calling convention.
    """
    from ..sim.schedule import ReplayStrategy, Schedule, ScheduleError

    del seed
    if schedule is None:
        raise ScheduleError(
            "the replay strategy needs a schedule= parameter "
            "(a Schedule, a schedule dict, or a path to a saved one)"
        )
    if isinstance(schedule, dict):
        schedule = Schedule.from_dict(schedule)
    elif isinstance(schedule, str):
        schedule = Schedule.load(schedule)
    return ReplayStrategy(schedule=schedule, **params)


def strategy_factory(
    name: str, params: Optional[dict] = None
) -> Callable:
    """A per-seed strategy constructor for registered strategy ``name``.

    Returns ``seed -> strategy`` — the shape
    :class:`repro.sim.scheduler.Simulator` and the harness sweep/collect
    loops expect, with ``params`` (e.g. ``depth`` for ``pct``) closed
    over.  Raises :class:`RegistryError` for unknown names immediately,
    not at first use.
    """
    cls = strategies.get(name)
    fixed = dict(params or {})

    def factory(seed: int):
        return cls(seed=seed, **fixed)

    factory.__name__ = f"make_{name}_strategy"
    return factory


def workload_for_program(program_name: Optional[str]):
    """The registered workload whose program has this name, or ``None``.

    Corpus manifests pin a *program* name; this is the reverse lookup
    the corpus commands use to reattach the live program (needed for
    the Section 3.3 safe-intervention filter and for interventions).
    """
    if program_name is None:
        return None
    for name in workloads.names():
        workload = workloads.build(name)
        if workload.program.name == program_name:
            return workload
    return None


_register_builtins()
