"""The observer/event protocol: one seam for progress, logging, services.

Role
----
Every phase of the paper's workflow — trace collection, predicate
evaluation, intervention rounds, AC-DAG maintenance — emits a typed
:class:`Event` onto an :class:`EventBus`.  Anything that wants to watch
a run (a CLI progress line, a test asserting phase ordering, the future
``corpus serve`` ingestion service pushing status over a socket)
subscribes an :class:`Observer` and receives events in emission order,
synchronously, on the emitting thread.

Invariants
----------
* observers never influence results: emission happens *after* the state
  change it describes, and event payloads are read-only snapshots —
  a run with zero observers is byte-identical to a run with many;
* events of one run arrive in a fixed phase order (asserted in tests):
  ``run-started`` → collection/corpus events → ``suite-frozen`` →
  ``logs-evaluated`` → ``dag-built`` → ``intervention-round``* →
  ``engine-finished`` → ``run-finished``;
* this module depends on nothing inside :mod:`repro`, so any subsystem
  (``exec``, ``harness``, ``corpus``) can emit without import cycles;
* a raising observer never aborts the run or starves later observers:
  :meth:`EventBus.emit` isolates every delivery, warns once per broken
  observer, and keeps delivering to it (it may recover).

Envelopes and spans
-------------------
The bus stamps run-scoped context *at emit time* — a monotonically
increasing sequence number, seconds since the bus was created, a wall
clock, and the run id — so the frozen event dataclasses stay pure
descriptions of state changes.  Observers that define ``on_enveloped``
receive the :class:`Envelope`; plain ``on_event`` observers receive the
bare event, exactly as before.  :meth:`EventBus.span` times a phase and
emits a :class:`SpanClosed` event on exit; spans nest (the bus keeps
the stack), and externally-timed child spans (per-intervention-round
timings, which chain open→open) go through :meth:`EventBus.emit_span`.

Persistence: none *here* — events are ephemeral on the bus; durable
telemetry is the job of :class:`repro.obs.JsonlRunLog`, which writes
each envelope to a schema-versioned JSONL run log, and durable
reporting remains :meth:`~repro.harness.session.SessionReport.to_dict`.
"""

from __future__ import annotations

import os
import re
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Optional, Protocol, Union, runtime_checkable


def new_run_id() -> str:
    """A sortable, collision-resistant run id: UTC stamp + random tail."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{stamp}-{os.urandom(3).hex()}"


@dataclass(frozen=True)
class Event:
    """Base class: every event carries a stable ``kind`` string."""

    kind: ClassVar[str] = "event"


@dataclass(frozen=True)
class RunStarted(Event):
    """``repro.api.run`` accepted a spec and is about to dispatch."""

    kind: ClassVar[str] = "run-started"
    program: Optional[str]
    mode: str  # "live" | "corpus" | "incremental"
    approach: Optional[str]


@dataclass(frozen=True)
class CollectionStarted(Event):
    """The live seed sweep is about to run (live sessions only)."""

    kind: ClassVar[str] = "collection-started"
    program: str
    n_success: int
    n_fail: int


@dataclass(frozen=True)
class CollectionFinished(Event):
    """Labeled traces are in hand, restricted to one failure signature."""

    kind: ClassVar[str] = "collection-finished"
    n_success: int
    n_fail: int
    signature: Optional[str]


@dataclass(frozen=True)
class CorpusLoaded(Event):
    """A stored corpus stands in for the collection sweep."""

    kind: ClassVar[str] = "corpus-loaded"
    n_traces: int
    n_pass: int
    n_fail: int


@dataclass(frozen=True)
class SuiteFrozen(Event):
    """The predicate suite is fixed for the rest of the run."""

    kind: ClassVar[str] = "suite-frozen"
    n_predicates: int
    #: "discovered" (extractors ran), "persisted" (loaded from the
    #: corpus, keyed by content digest), or "injected" (caller-supplied)
    source: str = "discovered"


@dataclass(frozen=True)
class LogsEvaluated(Event):
    """The frozen suite was evaluated over the analysis traces."""

    kind: ClassVar[str] = "logs-evaluated"
    n_logs: int
    #: fresh ``PredicateDef.evaluate`` calls vs pairs answered from a
    #: persistent eval matrix (both 0/None for plain live evaluation)
    fresh: Optional[int] = None
    memoized: Optional[int] = None
    #: single-pass kernel batches the fresh pairs rode in on (``None``
    #: when evaluation is not memoized); ``fresh / kernel_calls`` is the
    #: mean evalkernel batch size
    kernel_calls: Optional[int] = None


@dataclass(frozen=True)
class DagBuilt(Event):
    """The AC-DAG over the fully-discriminative predicates is ready."""

    kind: ClassVar[str] = "dag-built"
    n_nodes: int
    n_edges: int


@dataclass(frozen=True)
class InterventionRound(Event):
    """One adaptive group-intervention round was dispatched."""

    kind: ClassVar[str] = "intervention-round"
    phase: str  # "branch" | "giwp" | ...
    index: int  # 1-based, per phase


@dataclass(frozen=True)
class DagPatched(Event):
    """Incremental ingestion patched the maintained views."""

    kind: ClassVar[str] = "dag-patched"
    fingerprint: str
    removed_pids: frozenset[str] = frozenset()


@dataclass(frozen=True)
class ExplorationStarted(Event):
    """A schedule-space exploration run is about to execute."""

    kind: ClassVar[str] = "exploration-started"
    program: str
    strategy: str
    budget: int


@dataclass(frozen=True)
class ExecutionExplored(Event):
    """One exploration execution finished (novel or not)."""

    kind: ClassVar[str] = "execution-explored"
    index: int  # 0-based execution number within the run
    seed: int
    signature: str  # schedule signature of the interleaving
    failed: bool
    mutated: bool  # replayed a frontier prefix vs a fresh strategy run


@dataclass(frozen=True)
class NovelCoverage(Event):
    """An execution exercised at least one unseen handoff edge."""

    kind: ClassVar[str] = "novel-coverage"
    signature: str
    new_edges: int
    total_edges: int


@dataclass(frozen=True)
class EquivalentPruned(Event):
    """An execution landed in an already-seen Mazurkiewicz class.

    Partial-order pruning detected that the interleaving commutes
    (adjacent independent decisions only) with one explored earlier, so
    the driver withholds mutation energy from it — the schedule earns
    no frontier slot and no pass-ingestion, though novel *failures*
    are still recorded by exact signature.
    """

    kind: ClassVar[str] = "equivalent-pruned"
    signature: str  # exact schedule signature of this execution
    canonical: str  # the equivalence class both schedules share
    occurrences: int  # executions seen in this class so far (>= 2)


@dataclass(frozen=True)
class FailureFound(Event):
    """An exploration execution failed with a novel schedule."""

    kind: ClassVar[str] = "failure-found"
    signature: str
    failure_signature: str
    seed: int
    replay_verified: bool


@dataclass(frozen=True)
class FrontierStats(Event):
    """Periodic exploration progress snapshot."""

    kind: ClassVar[str] = "frontier-stats"
    executions: int
    frontier_size: int
    coverage_edges: int
    distinct_signatures: int
    failures_found: int


@dataclass(frozen=True)
class ExplorationFinished(Event):
    """The exploration budget is exhausted."""

    kind: ClassVar[str] = "exploration-finished"
    executions: int
    failures_found: int
    distinct_signatures: int
    distinct_failing_signatures: int
    coverage_edges: int
    #: distinct Mazurkiewicz classes among the executions (defaults
    #: keep pre-pruning run logs reconstructible)
    distinct_canonical: int = 0
    #: executions whose class had already been explored
    pruned_equivalent: int = 0


@dataclass(frozen=True)
class EngineFinished(Event):
    """The execution engine flushed its cache and closed."""

    kind: ClassVar[str] = "engine-finished"
    summary: str
    executed: int
    cached: int


@dataclass(frozen=True)
class RunFinished(Event):
    """The run produced its report (payload: the report object)."""

    kind: ClassVar[str] = "run-finished"
    report: object


@dataclass(frozen=True)
class SpanClosed(Event):
    """A timed phase ended (see :meth:`EventBus.span`).

    Spans close in LIFO order, so a child's ``span-closed`` always
    precedes its parent's; ``started`` (seconds since the bus was
    created) recovers the start order offline.
    """

    kind: ClassVar[str] = "span-closed"
    name: str
    duration: float
    #: nesting depth at open time (0 = top-level phase)
    depth: int
    #: enclosing span's name, or ``None`` at the top level
    parent: Optional[str]
    #: seconds since the bus was created when the span opened
    started: float


@dataclass(frozen=True)
class Envelope:
    """Emit-time context the bus stamps around each event."""

    #: 1-based position in this bus's emission order
    seq: int
    #: monotonic seconds since the bus was created
    t: float
    #: wall-clock unix time of the emission
    wall: float
    run_id: str
    event: Event


@runtime_checkable
class Observer(Protocol):
    """Anything that wants to watch a run."""

    def on_event(self, event: Event) -> None:
        ...  # pragma: no cover - protocol


@dataclass
class EventLog:
    """The reference observer: records every event, in order."""

    events: list[Event] = field(default_factory=list)

    def on_event(self, event: Event) -> None:
        self.events.append(event)

    def kinds(self) -> list[str]:
        return [event.kind for event in self.events]

    def first(self, kind: str) -> Optional[Event]:
        return next((e for e in self.events if e.kind == kind), None)

    def of_kind(self, kind: str) -> list[Event]:
        return [e for e in self.events if e.kind == kind]


class EventBus:
    """Fans each emitted event out to every subscribed observer.

    Plain callables are accepted alongside :class:`Observer` objects;
    subscription order is delivery order.  A bus with no observers is
    nearly free: ``emit`` short-circuits on an empty list.  Observers
    that define ``on_enveloped`` receive an :class:`Envelope` (built
    lazily, once per event, only when someone wants it) instead of the
    bare event.
    """

    def __init__(
        self,
        observers: Optional[
            list[Union[Observer, Callable[[Event], None]]]
        ] = None,
        run_id: Optional[str] = None,
    ) -> None:
        self._observers: list[Observer] = []
        self.run_id = run_id if run_id is not None else new_run_id()
        self._seq = 0
        self._t0 = time.perf_counter()
        self._span_stack: list[str] = []
        #: ids of observers already warned about (one warning each)
        self._warned: set[int] = set()
        #: set to a directory (by ``repro.obs``'s ``--profile``) to
        #: cProfile every top-level span into ``<run_id>-<name>.prof``
        self.profile_dir: Optional[str] = None
        for observer in observers or []:
            self.subscribe(observer)

    def subscribe(
        self, observer: Union[Observer, Callable[[Event], None]]
    ) -> None:
        if not hasattr(observer, "on_event") and not hasattr(
            observer, "on_enveloped"
        ):
            observer = _CallableObserver(observer)
        self._observers.append(observer)

    def emit(self, event: Event) -> None:
        observers = self._observers
        if not observers:
            return
        self._seq += 1
        envelope: Optional[Envelope] = None
        for observer in observers:
            deliver = getattr(observer, "on_enveloped", None)
            if deliver is not None:
                if envelope is None:
                    envelope = Envelope(
                        seq=self._seq,
                        t=time.perf_counter() - self._t0,
                        wall=time.time(),
                        run_id=self.run_id,
                        event=event,
                    )
                payload: object = envelope
            else:
                deliver = observer.on_event
                payload = event
            try:
                deliver(payload)
            except Exception as exc:
                # Observers never affect results: a broken one is
                # quarantined to a single warning and the event keeps
                # flowing to everyone else (and to it — it may recover).
                key = id(observer)
                if key not in self._warned:
                    self._warned.add(key)
                    warnings.warn(
                        f"observer {type(observer).__name__} raised "
                        f"{type(exc).__name__}: {exc} (further errors "
                        "from this observer are suppressed)",
                        RuntimeWarning,
                        stacklevel=2,
                    )

    # -- span tracing -----------------------------------------------------

    def span(self, name: str) -> "Span":
        """A context manager timing one phase; emits :class:`SpanClosed`
        on exit.  Spans nest — the bus tracks the open-span stack."""
        return Span(self, name)

    def emit_span(
        self, name: str, duration: float, started: Optional[float] = None
    ) -> None:
        """Emit a :class:`SpanClosed` for an externally-timed child span
        (``started`` is a ``time.perf_counter()`` reading); it nests
        under whatever span is currently open, without joining the
        stack — the shape intervention rounds need, since round *N*
        only ends when round *N+1* begins."""
        if started is None:
            started = time.perf_counter() - duration
        stack = self._span_stack
        self.emit(
            SpanClosed(
                name=name,
                duration=duration,
                depth=len(stack),
                parent=stack[-1] if stack else None,
                started=started - self._t0,
            )
        )

    def __len__(self) -> int:
        return len(self._observers)


class Span:
    """Times one phase on a bus; see :meth:`EventBus.span`.

    When the bus has a ``profile_dir`` and this is a top-level span,
    the phase also runs under :mod:`cProfile` and dumps its stats to
    ``<profile_dir>/<run_id>-<name>.prof`` (top level only — cProfile
    cannot nest).
    """

    __slots__ = ("bus", "name", "depth", "parent", "started", "_t0", "_profile")

    def __init__(self, bus: EventBus, name: str) -> None:
        self.bus = bus
        self.name = name
        self.depth = 0
        self.parent: Optional[str] = None
        self.started = 0.0
        self._t0 = 0.0
        self._profile = None

    def __enter__(self) -> "Span":
        stack = self.bus._span_stack
        self.parent = stack[-1] if stack else None
        self.depth = len(stack)
        stack.append(self.name)
        if self.bus.profile_dir is not None and self.depth == 0:
            import cProfile

            self._profile = cProfile.Profile()
            self._profile.enable()
        self._t0 = time.perf_counter()
        self.started = self._t0 - self.bus._t0
        return self

    def __exit__(self, *exc_info: object) -> None:
        duration = time.perf_counter() - self._t0
        if self._profile is not None:
            self._profile.disable()
            safe = re.sub(r"[^\w.-]", "_", self.name)
            path = os.path.join(
                self.bus.profile_dir, f"{self.bus.run_id}-{safe}.prof"
            )
            self._profile.dump_stats(path)
            self._profile = None
        stack = self.bus._span_stack
        if stack:
            stack.pop()
        self.bus.emit(
            SpanClosed(
                name=self.name,
                duration=duration,
                depth=self.depth,
                parent=self.parent,
                started=self.started,
            )
        )


@dataclass
class _CallableObserver:
    """Adapter: a bare callable as an :class:`Observer`."""

    fn: Callable[[Event], None]

    def on_event(self, event: Event) -> None:
        self.fn(event)
