"""The observer/event protocol: one seam for progress, logging, services.

Role
----
Every phase of the paper's workflow — trace collection, predicate
evaluation, intervention rounds, AC-DAG maintenance — emits a typed
:class:`Event` onto an :class:`EventBus`.  Anything that wants to watch
a run (a CLI progress line, a test asserting phase ordering, the future
``corpus serve`` ingestion service pushing status over a socket)
subscribes an :class:`Observer` and receives events in emission order,
synchronously, on the emitting thread.

Invariants
----------
* observers never influence results: emission happens *after* the state
  change it describes, and event payloads are read-only snapshots —
  a run with zero observers is byte-identical to a run with many;
* events of one run arrive in a fixed phase order (asserted in tests):
  ``run-started`` → collection/corpus events → ``suite-frozen`` →
  ``logs-evaluated`` → ``dag-built`` → ``intervention-round``* →
  ``engine-finished`` → ``run-finished``;
* this module depends on nothing inside :mod:`repro`, so any subsystem
  (``exec``, ``harness``, ``corpus``) can emit without import cycles.

Persistence: none — events are ephemeral; durable reporting is the
job of :meth:`~repro.harness.session.SessionReport.to_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, ClassVar, Optional, Protocol, Union, runtime_checkable


@dataclass(frozen=True)
class Event:
    """Base class: every event carries a stable ``kind`` string."""

    kind: ClassVar[str] = "event"


@dataclass(frozen=True)
class RunStarted(Event):
    """``repro.api.run`` accepted a spec and is about to dispatch."""

    kind: ClassVar[str] = "run-started"
    program: Optional[str]
    mode: str  # "live" | "corpus" | "incremental"
    approach: Optional[str]


@dataclass(frozen=True)
class CollectionStarted(Event):
    """The live seed sweep is about to run (live sessions only)."""

    kind: ClassVar[str] = "collection-started"
    program: str
    n_success: int
    n_fail: int


@dataclass(frozen=True)
class CollectionFinished(Event):
    """Labeled traces are in hand, restricted to one failure signature."""

    kind: ClassVar[str] = "collection-finished"
    n_success: int
    n_fail: int
    signature: Optional[str]


@dataclass(frozen=True)
class CorpusLoaded(Event):
    """A stored corpus stands in for the collection sweep."""

    kind: ClassVar[str] = "corpus-loaded"
    n_traces: int
    n_pass: int
    n_fail: int


@dataclass(frozen=True)
class SuiteFrozen(Event):
    """The predicate suite is fixed for the rest of the run."""

    kind: ClassVar[str] = "suite-frozen"
    n_predicates: int
    #: "discovered" (extractors ran), "persisted" (loaded from the
    #: corpus, keyed by content digest), or "injected" (caller-supplied)
    source: str = "discovered"


@dataclass(frozen=True)
class LogsEvaluated(Event):
    """The frozen suite was evaluated over the analysis traces."""

    kind: ClassVar[str] = "logs-evaluated"
    n_logs: int
    #: fresh ``PredicateDef.evaluate`` calls vs pairs answered from a
    #: persistent eval matrix (both 0/None for plain live evaluation)
    fresh: Optional[int] = None
    memoized: Optional[int] = None


@dataclass(frozen=True)
class DagBuilt(Event):
    """The AC-DAG over the fully-discriminative predicates is ready."""

    kind: ClassVar[str] = "dag-built"
    n_nodes: int
    n_edges: int


@dataclass(frozen=True)
class InterventionRound(Event):
    """One adaptive group-intervention round was dispatched."""

    kind: ClassVar[str] = "intervention-round"
    phase: str  # "branch" | "giwp" | ...
    index: int  # 1-based, per phase


@dataclass(frozen=True)
class DagPatched(Event):
    """Incremental ingestion patched the maintained views."""

    kind: ClassVar[str] = "dag-patched"
    fingerprint: str
    removed_pids: frozenset[str] = frozenset()


@dataclass(frozen=True)
class EngineFinished(Event):
    """The execution engine flushed its cache and closed."""

    kind: ClassVar[str] = "engine-finished"
    summary: str
    executed: int
    cached: int


@dataclass(frozen=True)
class RunFinished(Event):
    """The run produced its report (payload: the report object)."""

    kind: ClassVar[str] = "run-finished"
    report: object


@runtime_checkable
class Observer(Protocol):
    """Anything that wants to watch a run."""

    def on_event(self, event: Event) -> None:
        ...  # pragma: no cover - protocol


@dataclass
class EventLog:
    """The reference observer: records every event, in order."""

    events: list[Event] = field(default_factory=list)

    def on_event(self, event: Event) -> None:
        self.events.append(event)

    def kinds(self) -> list[str]:
        return [event.kind for event in self.events]

    def first(self, kind: str) -> Optional[Event]:
        return next((e for e in self.events if e.kind == kind), None)

    def of_kind(self, kind: str) -> list[Event]:
        return [e for e in self.events if e.kind == kind]


class EventBus:
    """Fans each emitted event out to every subscribed observer.

    Plain callables are accepted alongside :class:`Observer` objects;
    subscription order is delivery order.  A bus with no observers is
    free: ``emit`` short-circuits on an empty list.
    """

    def __init__(
        self,
        observers: Optional[
            list[Union[Observer, Callable[[Event], None]]]
        ] = None,
    ) -> None:
        self._observers: list[Observer] = []
        for observer in observers or []:
            self.subscribe(observer)

    def subscribe(
        self, observer: Union[Observer, Callable[[Event], None]]
    ) -> None:
        if not hasattr(observer, "on_event"):
            observer = _CallableObserver(observer)
        self._observers.append(observer)

    def emit(self, event: Event) -> None:
        for observer in self._observers:
            observer.on_event(event)

    def __len__(self) -> int:
        return len(self._observers)


@dataclass
class _CallableObserver:
    """Adapter: a bare callable as an :class:`Observer`."""

    fn: Callable[[Event], None]

    def on_event(self, event: Event) -> None:
        self.fn(event)
