"""The declarative front door: ``RunSpec`` and its section dataclasses.

Role
----
A :class:`RunSpec` is a complete, serializable description of one
debugging run — which workload (or stored corpus), how traces are
collected, where intervened executions run, and how the analysis is
configured.  It round-trips through plain dicts, JSON, and TOML, so a
run can live in a config file (``repro run spec.toml``), a service
request body, or a test fixture, and every CLI subcommand builds one
internally instead of hand-wiring sessions.

Sections
--------
* :class:`WorkloadSpec` — which registered workload to debug;
* :class:`CollectionSpec` — the labeled-trace sweep quotas;
* :class:`EngineSpec` — execution backend, job count, outcome cache
  (also the single home of the CLI's ``--jobs/--backend/--cache``
  plumbing: :meth:`EngineSpec.add_flags` / :meth:`EngineSpec.from_args`
  / :meth:`EngineSpec.build`);
* :class:`CorpusSpec` — debug from a stored corpus, or run the
  incremental analyze-only pipeline over it;
* :class:`AnalysisSpec` — approach, intervention repeats, RNG seed,
  and registry names for extractors and the precedence policy.

Invariants
----------
* ``RunSpec.from_dict(spec.to_dict()) == spec`` for every valid spec,
  and the same through TOML and JSON text (asserted in tests);
* unknown keys and unknown registry names fail **with actionable
  errors** (:class:`SpecError` carries the dotted path and lists the
  valid alternatives) — never silently ignored;
* a spec is inert data: building sessions/engines from it happens in
  :func:`repro.api.runner.run`, so specs can be validated, diffed, and
  stored without side effects.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from ..sim.scheduler import DEFAULT_MAX_STEPS
from . import registry as registries

if TYPE_CHECKING:  # pragma: no cover - typing only
    import argparse

    from ..exec.engine import ExecutionEngine
    from .events import EventBus

SPEC_VERSION = 1


class SpecError(ValueError):
    """A spec is malformed; ``path`` says where, ``detail`` says why."""

    def __init__(self, path: str, detail: str) -> None:
        super().__init__(f"{path}: {detail}" if path else detail)
        self.path = path
        self.detail = detail

    def to_dict(self) -> dict:
        """The structured error payload a service 4xx response carries
        (``error`` is the stable discriminator; ``path`` is the dotted
        spec location, empty for whole-document problems)."""
        return {
            "error": "invalid-spec",
            "path": self.path,
            "detail": self.detail,
        }


def _from_section(cls, raw: object, path: str):
    """Build a section dataclass from a dict, rejecting unknown keys."""
    if raw is None:
        return cls()
    if not isinstance(raw, dict):
        raise SpecError(path, f"expected a table/object, got {type(raw).__name__}")
    fields = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(raw) - fields)
    if unknown:
        raise SpecError(
            path,
            f"unknown key {unknown[0]!r} (valid: {', '.join(sorted(fields))})",
        )
    return cls(**raw)


def _section_dict(section) -> dict:
    """A section as a plain dict, ``None`` values omitted."""
    return {
        f.name: getattr(section, f.name)
        for f in dataclasses.fields(section)
        if getattr(section, f.name) is not None
    }


@dataclass(frozen=True)
class WorkloadSpec:
    """Which registered workload to run (``repro.api.registry.workloads``)."""

    name: str = ""

    def problems(self) -> list[str]:
        if not self.name:
            return ["workload.name: required (one of: "
                    f"{', '.join(registries.workloads.names())})"]
        if self.name not in registries.workloads:
            return [
                f"workload.name: unknown workload {self.name!r} "
                f"(registered: {', '.join(registries.workloads.names())})"
            ]
        return []


@dataclass(frozen=True)
class CollectionSpec:
    """The labeled-trace sweep: how many of each label, from which seed.

    ``strategy`` names a registered scheduler strategy
    (``repro.api.registry.strategies``) the sweep — and every
    intervention re-execution — schedules under; ``None`` keeps the
    default seeded-uniform picker.  ``strategy_params`` are the
    strategy's constructor parameters (e.g. ``{"depth": 3}`` for
    ``pct``), scalar-valued so the spec stays TOML/JSON round-trippable.
    """

    n_success: int = 50
    n_fail: int = 50
    start_seed: int = 0
    max_steps: int = DEFAULT_MAX_STEPS
    strategy: Optional[str] = None
    strategy_params: Optional[dict] = None

    def problems(self) -> list[str]:
        problems = []
        for name in ("n_success", "n_fail"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                problems.append(
                    f"collection.{name}: expected a positive integer, "
                    f"got {value!r}"
                )
        if not isinstance(self.max_steps, int) or self.max_steps < 1:
            problems.append(
                f"collection.max_steps: expected a positive integer, "
                f"got {self.max_steps!r}"
            )
        if self.strategy is not None and (
            self.strategy not in registries.strategies
        ):
            problems.append(
                f"collection.strategy: unknown scheduler strategy "
                f"{self.strategy!r} "
                f"(registered: {', '.join(registries.strategies.names())})"
            )
        if self.strategy_params is not None:
            if self.strategy is None:
                problems.append(
                    "collection.strategy_params: requires "
                    "collection.strategy"
                )
            if not isinstance(self.strategy_params, dict):
                problems.append(
                    f"collection.strategy_params: expected a table/object, "
                    f"got {type(self.strategy_params).__name__}"
                )
            else:
                for key, value in sorted(self.strategy_params.items()):
                    if not isinstance(key, str) or not isinstance(
                        value, (bool, int, float, str)
                    ):
                        problems.append(
                            "collection.strategy_params: entries must map "
                            f"names to scalars, got {key!r}={value!r}"
                        )
        return problems


@dataclass(frozen=True)
class EngineSpec:
    """Where intervened re-executions run, and what outcomes persist.

    The single home of the engine-flag plumbing every intervention-heavy
    CLI subcommand shares (``debug``, ``figure7``, ``figure8``,
    ``corpus analyze``, ``run``).
    """

    jobs: Optional[int] = None
    backend: Optional[str] = None
    cache: Optional[str] = None

    # -- CLI plumbing (one code path for every subcommand) ---------------

    @classmethod
    def add_flags(cls, parser: "argparse.ArgumentParser") -> None:
        """Register ``--jobs/--backend/--cache`` on a subparser."""
        parser.add_argument(
            "--jobs",
            type=int,
            default=None,
            metavar="N",
            help="parallel intervened executions (default 1; >1 implies "
            "--backend thread unless given)",
        )
        parser.add_argument(
            "--backend",
            default=None,
            choices=registries.backends.names(),
            help="execution backend for intervened runs (default serial)",
        )
        parser.add_argument(
            "--cache",
            default=None,
            metavar="FILE",
            help="JSON outcome cache; loaded if present, saved on exit",
        )

    @classmethod
    def from_args(cls, args: "argparse.Namespace") -> "EngineSpec":
        return cls(
            jobs=getattr(args, "jobs", None),
            backend=getattr(args, "backend", None),
            cache=getattr(args, "cache", None),
        )

    def problems(self) -> list[str]:
        problems = []
        if self.jobs is not None and (
            not isinstance(self.jobs, int) or self.jobs < 1
        ):
            problems.append(
                f"engine.jobs: expected a positive integer, got {self.jobs!r}"
            )
        if self.backend is not None and self.backend not in registries.backends:
            problems.append(
                f"engine.backend: unknown backend {self.backend!r} "
                f"(registered: {', '.join(registries.backends.names())})"
            )
        return problems

    def build(self, bus: Optional["EventBus"] = None) -> "ExecutionEngine":
        """Construct the engine: backend from the registry, cache loaded
        (its parent directory checked *before* any work is spent)."""
        from ..exec.cache import OutcomeCache
        from ..exec.engine import ExecutionEngine

        if self.cache is not None:
            parent = os.path.dirname(os.path.abspath(self.cache))
            if not os.path.isdir(parent):
                raise SpecError(
                    "engine.cache", f"directory {parent} does not exist"
                )
        try:
            cache = OutcomeCache(path=self.cache)
        except ValueError as exc:
            raise SpecError("engine.cache", str(exc)) from exc
        if self.backend is None:
            # make_backend owns the defaulting rule (serial unless
            # jobs > 1 implies thread); only explicit names go through
            # the registry, where third-party backends live.
            from ..exec.backends import make_backend

            backend = make_backend(None, self.jobs)
        else:
            backend = registries.backends.build(self.backend, self.jobs)
        return ExecutionEngine(backend=backend, cache=cache, bus=bus)


@dataclass(frozen=True)
class CorpusSpec:
    """Debug from (or incrementally analyze) a stored trace corpus."""

    dir: Optional[str] = None
    #: "session" — full debugging session reading traces from the store;
    #: "incremental" — analyze-only: bootstrap the incremental pipeline
    #: (suite → SD → AC-DAG) without running interventions.
    mode: str = "session"

    def problems(self) -> list[str]:
        problems = []
        if self.mode not in ("session", "incremental"):
            problems.append(
                f"corpus.mode: expected 'session' or 'incremental', "
                f"got {self.mode!r}"
            )
        if self.mode == "incremental" and self.dir is None:
            problems.append("corpus.dir: required when corpus.mode is "
                            "'incremental'")
        return problems


@dataclass(frozen=True)
class AnalysisSpec:
    """Approach ladder, intervention budget shape, and plugin names."""

    approach: str = "AID"
    repeats: int = 25
    rng_seed: int = 0
    #: registry names (``repro.api.registry.extractors``); ``None`` =
    #: the paper's default catalogue
    extractors: Optional[tuple[str, ...]] = None
    #: registry name (``repro.api.registry.policies``); ``None`` = the
    #: default kind-anchor policy
    policy: Optional[str] = None

    def __post_init__(self) -> None:
        if isinstance(self.extractors, list):
            object.__setattr__(self, "extractors", tuple(self.extractors))

    def problems(self) -> list[str]:
        from ..core.variants import Approach

        problems = []
        valid = [a.value for a in Approach]
        if self.approach not in valid:
            problems.append(
                f"analysis.approach: unknown approach {self.approach!r} "
                f"(valid: {', '.join(valid)})"
            )
        if not isinstance(self.repeats, int) or self.repeats < 1:
            problems.append(
                f"analysis.repeats: expected a positive integer, "
                f"got {self.repeats!r}"
            )
        for name in self.extractors or ():
            if name not in registries.extractors:
                problems.append(
                    f"analysis.extractors: unknown extractor {name!r} "
                    f"(registered: {', '.join(registries.extractors.names())})"
                )
        if self.policy is not None and self.policy not in registries.policies:
            problems.append(
                f"analysis.policy: unknown precedence policy {self.policy!r} "
                f"(registered: {', '.join(registries.policies.names())})"
            )
        return problems

    def build_extractors(self):
        if self.extractors is None:
            return None
        return [registries.extractors.build(name) for name in self.extractors]

    def build_policy(self):
        if self.policy is None:
            return None
        return registries.policies.build(self.policy)


_SECTIONS = {
    "collection": CollectionSpec,
    "engine": EngineSpec,
    "corpus": CorpusSpec,
    "analysis": AnalysisSpec,
}


@dataclass(frozen=True)
class RunSpec:
    """One declarative debugging run (see the module docstring)."""

    workload: Optional[WorkloadSpec] = None
    collection: CollectionSpec = field(default_factory=CollectionSpec)
    engine: EngineSpec = field(default_factory=EngineSpec)
    corpus: CorpusSpec = field(default_factory=CorpusSpec)
    analysis: AnalysisSpec = field(default_factory=AnalysisSpec)

    # -- validation ------------------------------------------------------

    @property
    def mode(self) -> str:
        """"live", "corpus", or "incremental"."""
        if self.corpus.dir is None:
            return "live"
        return "incremental" if self.corpus.mode == "incremental" else "corpus"

    def problems(self) -> list[str]:
        """Every problem with this spec, dotted-path-prefixed."""
        problems: list[str] = []
        if self.mode == "incremental":
            # the corpus manifest pins the program; a workload is optional
            if self.workload is not None and self.workload.name:
                problems.extend(self.workload.problems())
        elif self.workload is None:
            problems.append(
                "workload: required unless corpus.mode is 'incremental' "
                "(set workload.name to one of: "
                f"{', '.join(registries.workloads.names())})"
            )
        else:
            problems.extend(self.workload.problems())
        for section in (self.collection, self.engine, self.corpus, self.analysis):
            problems.extend(section.problems())
        return problems

    def validate(self) -> "RunSpec":
        """Raise :class:`SpecError` on the first problem; returns self."""
        problems = self.problems()
        if problems:
            raise SpecError("", "; ".join(problems))
        return self

    # -- dict round-trip -------------------------------------------------

    def to_dict(self) -> dict:
        payload: dict = {"version": SPEC_VERSION}
        if self.workload is not None:
            payload["workload"] = _section_dict(self.workload)
        for name in sorted(_SECTIONS):
            section_dict = _section_dict(getattr(self, name))
            if name == "analysis" and "extractors" in section_dict:
                section_dict["extractors"] = list(section_dict["extractors"])
            payload[name] = section_dict
        return payload

    @classmethod
    def from_dict(cls, raw: dict) -> "RunSpec":
        if not isinstance(raw, dict):
            raise SpecError("", f"expected an object, got {type(raw).__name__}")
        version = raw.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise SpecError(
                "version",
                f"unsupported spec version {version!r} "
                f"(this build reads version {SPEC_VERSION})",
            )
        known = {"version", "workload", *_SECTIONS}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise SpecError(
                "", f"unknown section {unknown[0]!r} "
                f"(valid: {', '.join(sorted(known))})"
            )
        workload = (
            _from_section(WorkloadSpec, raw["workload"], "workload")
            if "workload" in raw
            else None
        )
        sections = {
            name: _from_section(section_cls, raw.get(name), name)
            for name, section_cls in _SECTIONS.items()
        }
        return cls(workload=workload, **sections)

    def digest(self) -> str:
        """sha256 of the spec's canonical JSON — the stable identity two
        runs share exactly when they ran the same spec (the serve daemon
        stamps it into run-log headers; the cross-run index groups by
        it)."""
        import hashlib

        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()

    # -- JSON ------------------------------------------------------------

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError("", f"not valid JSON: {exc}") from exc
        return cls.from_dict(raw)

    # -- TOML ------------------------------------------------------------

    def to_toml(self) -> str:
        return _dumps_toml(self.to_dict())

    @classmethod
    def from_toml(cls, text: str) -> "RunSpec":
        import tomllib

        try:
            raw = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise SpecError("", f"not valid TOML: {exc}") from exc
        return cls.from_dict(raw)

    # -- files -----------------------------------------------------------

    @classmethod
    def load(cls, path: str | os.PathLike) -> "RunSpec":
        """Read a spec file; the suffix picks the format (``.toml`` /
        ``.json``; anything else tries JSON, then TOML)."""
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise SpecError("", f"cannot read {path}: {exc}") from exc
        suffix = path.suffix.lower()
        if suffix == ".toml":
            return cls.from_toml(text)
        if suffix == ".json":
            return cls.from_json(text)
        # No recognized suffix: sniff the format.  Fall back to TOML
        # only when the text is not JSON at all — a file that *parses*
        # as JSON but fails spec validation must surface that precise
        # error, not an irrelevant TOML parse failure.
        try:
            raw = json.loads(text)
        except json.JSONDecodeError:
            return cls.from_toml(text)
        return cls.from_dict(raw)

    def save(self, path: str | os.PathLike) -> Path:
        """Write the spec; the suffix picks the format (default TOML)."""
        path = Path(path)
        text = (
            self.to_json() + "\n"
            if path.suffix.lower() == ".json"
            else self.to_toml()
        )
        path.write_text(text)
        return path


def _toml_scalar(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)  # JSON string escaping is valid TOML
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_scalar(v) for v in value) + "]"
    if isinstance(value, dict):
        # Inline table — the shape collection.strategy_params needs.
        inner = ", ".join(
            f"{json.dumps(k)} = {_toml_scalar(v)}" for k, v in value.items()
        )
        return "{" + inner + "}"
    raise SpecError("", f"cannot express {type(value).__name__} in TOML")


def _dumps_toml(payload: dict) -> str:
    """A minimal TOML writer for the spec's shape: top-level scalars
    first, then one ``[section]`` table per nested dict (the standard
    library ships only a reader)."""
    lines: list[str] = []
    for key, value in payload.items():
        if not isinstance(value, dict):
            lines.append(f"{key} = {_toml_scalar(value)}")
    for key, value in payload.items():
        if isinstance(value, dict):
            lines.append("")
            lines.append(f"[{key}]")
            for inner_key, inner in value.items():
                lines.append(f"{inner_key} = {_toml_scalar(inner)}")
    return "\n".join(lines) + "\n"
