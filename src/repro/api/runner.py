"""``repro.api.run`` — dispatch a :class:`RunSpec` to the right session.

Role
----
The one imperative verb of the declarative API.  Given a validated
spec, it:

1. builds the execution engine from :class:`~repro.api.spec.EngineSpec`
   (attaching the run's :class:`~repro.api.events.EventBus`, so
   intervention rounds stream to observers);
2. dispatches by mode — **live** (collect + debug via
   :class:`~repro.harness.session.AIDSession`), **corpus** (debug from
   a stored :class:`~repro.corpus.store.TraceStore` via
   :class:`~repro.corpus.session.CorpusSession`), or **incremental**
   (analyze-only :class:`~repro.corpus.pipeline.IncrementalPipeline`
   bootstrap over the store);
3. returns a :class:`~repro.harness.session.SessionReport` whose
   :meth:`~repro.harness.session.SessionReport.to_dict` is the
   versioned report schema.

Invariants
----------
* results are a pure function of the spec: observers, job counts, and
  backends never change the report (asserted byte-identical to the
  legacy entry points in tests);
* corpus-backed runs persist what they learned (store manifests, eval
  matrix) before returning;
* the engine is always flushed and closed, success or failure.
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING, Iterable, Optional, Union

from .events import EventBus, Observer, RunFinished, RunStarted
from .spec import RunSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..harness.session import SessionReport
    from ..obs import ObsContext


def run(
    spec: RunSpec,
    observers: Iterable[Union[Observer, "callable"]] = (),
    bus: Optional[EventBus] = None,
    obs: Optional["ObsContext"] = None,
) -> "SessionReport":
    """Execute one declarative run and return its report.

    ``observers`` (or a pre-built ``bus``) receive the run's events in
    phase order; see :mod:`repro.api.events` for the catalogue.  ``obs``
    attaches a full :class:`repro.obs.ObsContext` (JSONL run log,
    metrics registry, progress lines) and stamps the report's ``meta``
    key with the run id and metrics snapshot — everything else about
    the report stays byte-identical.
    """
    from ..core.variants import Approach
    from ..corpus import CorpusSession, TraceStore
    from ..harness.session import AIDSession, SessionConfig

    spec.validate()
    if bus is None:
        bus = EventBus(list(observers))
    if obs is not None:
        obs.header_extra.setdefault("spec_digest", spec.digest())
        obs.install(bus)
    mode = spec.mode
    engine = spec.engine.build(bus=bus)
    if obs is not None:
        obs.watch_engine(engine)
    try:
        if mode == "incremental":
            report = _run_incremental(spec, engine, bus)
        else:
            from . import registry as registries

            workload = registries.workloads.build(spec.workload.name)
            config = SessionConfig(
                n_success=spec.collection.n_success,
                n_fail=spec.collection.n_fail,
                start_seed=spec.collection.start_seed,
                max_steps=spec.collection.max_steps,
                repeats=spec.analysis.repeats,
                rng_seed=spec.analysis.rng_seed,
                extractors=spec.analysis.build_extractors(),
                policy=spec.analysis.build_policy(),
                engine=engine,
                bus=bus,
                strategy=spec.collection.strategy,
                strategy_params=dict(spec.collection.strategy_params or {}),
            )
            bus.emit(
                RunStarted(
                    program=workload.program.name,
                    mode=mode,
                    approach=spec.analysis.approach,
                )
            )
            if mode == "corpus":
                store = TraceStore.open(spec.corpus.dir)
                session = CorpusSession(workload.program, store, config)
                report = session.run(Approach(spec.analysis.approach))
                session.save()
            else:
                session = AIDSession(workload.program, config)
                report = session.run(Approach(spec.analysis.approach))
    finally:
        # An interrupted run still persists the outcomes it paid for
        # (and observers still see the engine-finished accounting); an
        # interrupted run log is closed as a valid prefix.
        engine.finish()
        if obs is not None:
            obs_error = sys.exc_info()[0] is not None
            if obs_error:
                obs.close()
    if obs is not None:
        # Stamp before run-finished so the event (and the run log's
        # copy of the report) already carries run id + metrics.
        obs.stamp(report)
    bus.emit(RunFinished(report=report))
    if obs is not None:
        obs.close()
    return report


def _run_incremental(spec: RunSpec, engine, bus: EventBus) -> "SessionReport":
    """Analyze-only: bootstrap the incremental pipeline over the store
    (shard-parallel when the engine has workers) and report its views."""
    from ..corpus import IncrementalPipeline, TraceStore
    from ..harness.session import SessionReport
    from . import registry as registries

    store = TraceStore.open(spec.corpus.dir)
    workload = registries.workload_for_program(store.program)
    program = workload.program if workload is not None else None
    bus.emit(
        RunStarted(program=store.program, mode="incremental", approach=None)
    )
    pipeline = IncrementalPipeline(
        store,
        program=program,
        extractors=spec.analysis.build_extractors(),
        policy=spec.analysis.build_policy(),
        bus=bus,
    )
    pipeline.bootstrap(engine=engine)
    pipeline.save()
    n_fail = sum(
        1
        for entry in store.entries.values()
        if entry.failed and entry.signature == pipeline.signature
    )
    return SessionReport(
        program=program,
        corpus=None,
        suite=pipeline.suite,
        debugger=pipeline.debugger,
        fully_discriminative=list(pipeline.fully),
        dag=pipeline.dag,
        discovery=None,
        explanation=None,
        approach=None,
        signature=pipeline.signature,
        n_success=store.n_pass,
        n_fail=n_fail,
        program_name=store.program,
    )


__all__ = ["run"]
