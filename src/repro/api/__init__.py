"""``repro.api`` — the declarative front door to the whole pipeline.

One entry point replaces the four historical ones (``AIDSession``,
``CorpusSession``, ``IncrementalPipeline``, and the CLI's hand-rolled
glue)::

    import repro

    spec = repro.RunSpec(
        workload=repro.WorkloadSpec("npgsql"),
        collection=repro.CollectionSpec(n_success=30, n_fail=30),
    )
    report = repro.run(spec)          # = repro.api.run(spec)
    print(report.explanation.render())
    payload = report.to_dict()        # versioned JSON schema

The pieces:

* :mod:`repro.api.spec` — the :class:`RunSpec` dataclass tree with
  dict/JSON/TOML round-trip and actionable validation;
* :mod:`repro.api.registry` — string-keyed plugin registries for
  workloads, backends, extractors, and precedence policies;
* :mod:`repro.api.events` — the :class:`Observer`/:class:`EventBus`
  protocol every phase emits progress through;
* :mod:`repro.api.runner` — :func:`run`, dispatching a spec to the
  right session (live, corpus-backed, or incremental) and returning a
  :class:`~repro.harness.session.SessionReport`.

Submodules load lazily (PEP 562): ``repro.api.events`` and
``repro.api.registry`` are dependency-light so inner subsystems can
import them without cycles, while :mod:`repro.api.runner` (which pulls
in the harness) only loads when first used.
"""

from __future__ import annotations

_EXPORTS = {
    # the front door
    "run": ("repro.api.runner", "run"),
    # spec tree
    "RunSpec": ("repro.api.spec", "RunSpec"),
    "WorkloadSpec": ("repro.api.spec", "WorkloadSpec"),
    "CollectionSpec": ("repro.api.spec", "CollectionSpec"),
    "EngineSpec": ("repro.api.spec", "EngineSpec"),
    "CorpusSpec": ("repro.api.spec", "CorpusSpec"),
    "AnalysisSpec": ("repro.api.spec", "AnalysisSpec"),
    "SpecError": ("repro.api.spec", "SpecError"),
    "SPEC_VERSION": ("repro.api.spec", "SPEC_VERSION"),
    # registries
    "Registry": ("repro.api.registry", "Registry"),
    "RegistryError": ("repro.api.registry", "RegistryError"),
    "workload_for_program": ("repro.api.registry", "workload_for_program"),
    # events
    "Event": ("repro.api.events", "Event"),
    "EventBus": ("repro.api.events", "EventBus"),
    "EventLog": ("repro.api.events", "EventLog"),
    "Observer": ("repro.api.events", "Observer"),
    # report schema (lives in repro.core.report; re-exported here)
    "REPORT_SCHEMA_VERSION": ("repro.core.report", "REPORT_SCHEMA_VERSION"),
    "validate_report_dict": ("repro.core.report", "validate_report_dict"),
}

__all__ = sorted(_EXPORTS) + ["events", "registry", "runner", "spec"]


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache for the next lookup
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
