"""The cross-run index: every JSONL run log folded into one catalog.

Role
----
A log directory accumulates one ``<run_id>.jsonl`` per run.  Answering
"what ran here, how long did each phase take, which runs share a spec"
by re-reading every log on every question does not scale to a
long-running service, so :class:`RunIndex` maintains
``<log_dir>/index.json``: one :func:`~repro.obs.summary.summary_dict`
record per run (the same versioned payload ``repro obs summary --json``
prints) plus the source file's name/size/mtime.

:meth:`RunIndex.refresh` is **incremental and idempotent**: a log whose
``(size, mtime)`` matches its indexed record is skipped, a changed or
new log is re-summarized, and records whose log vanished are dropped —
so refreshing twice in a row is a no-op and a full rebuild
(:meth:`RunIndex.rebuild`) produces byte-identical ``index.json``
content.  Unreadable or foreign ``.jsonl`` files are catalogued as
``outcome: "unreadable"`` rather than failing the whole index — one
corrupt log must not blind the service to the healthy ones.

The serve daemon folds this catalog into ``GET /v1/runs`` (merged with
its in-memory live runs) and ``GET /v1/runs/{run_id}``; the CLI twin is
``repro obs index DIR``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from .runlog import RunLogError, read_run_log
from .summary import SUMMARY_SCHEMA_VERSION, summarize, summary_dict

#: bump on any backwards-incompatible change to index.json's shape
INDEX_SCHEMA_VERSION = 1

INDEX_FILENAME = "index.json"


@dataclass
class IndexStats:
    """What one :meth:`RunIndex.refresh` did."""

    added: int = 0
    updated: int = 0
    removed: int = 0
    unchanged: int = 0

    @property
    def changed(self) -> bool:
        return bool(self.added or self.updated or self.removed)


class RunIndex:
    """The queryable catalog over a directory of JSONL run logs.

    ``entries`` maps ``run_id`` to a record::

        {**summary_dict(run), "file": name, "size": int, "mtime": float}

    Records are keyed by run id; two log files claiming the same run id
    resolve to the newer file (mtime), which cannot happen with
    :class:`~repro.obs.runlog.JsonlRunLog`-written logs but keeps hand-
    copied directories deterministic.
    """

    def __init__(self, log_dir) -> None:
        self.dir = Path(log_dir)
        self.path = self.dir / INDEX_FILENAME
        self.entries: dict[str, dict] = {}
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError):
            return
        if (
            isinstance(payload, dict)
            and payload.get("schema") == INDEX_SCHEMA_VERSION
            and isinstance(payload.get("runs"), dict)
        ):
            self.entries = payload["runs"]

    def to_dict(self) -> dict:
        return {
            "schema": INDEX_SCHEMA_VERSION,
            "summary_schema": SUMMARY_SCHEMA_VERSION,
            "runs": {k: self.entries[k] for k in sorted(self.entries)},
        }

    def save(self) -> None:
        self.path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    def refresh(self, save: bool = True) -> IndexStats:
        """Fold new/changed logs in, drop records of deleted logs."""
        stats = IndexStats()
        by_file = {
            entry["file"]: (run_id, entry)
            for run_id, entry in self.entries.items()
        }
        seen_files = set()
        for path in sorted(self.dir.glob("*.jsonl")):
            seen_files.add(path.name)
            stat = path.stat()
            known = by_file.get(path.name)
            if (
                known is not None
                and known[1].get("size") == stat.st_size
                and known[1].get("mtime") == stat.st_mtime
            ):
                stats.unchanged += 1
                continue
            entry = self._index_one(path, stat)
            run_id = entry["run_id"]
            previous = self.entries.get(run_id)
            if previous is not None and previous.get("file") != path.name:
                # duplicate run id across files: newer mtime wins
                other = self.dir / previous["file"]
                if other.exists() and other.stat().st_mtime > stat.st_mtime:
                    continue
            if known is not None or previous is not None:
                stats.updated += 1
            else:
                stats.added += 1
            self.entries[run_id] = entry
        for run_id in [
            rid
            for rid, entry in self.entries.items()
            if entry["file"] not in seen_files
        ]:
            del self.entries[run_id]
            stats.removed += 1
        if save and stats.changed:
            self.save()
        return stats

    def rebuild(self, save: bool = True) -> IndexStats:
        """Drop every record and re-summarize from scratch; produces
        the same ``index.json`` as any refresh sequence (asserted in
        tests — the idempotency contract)."""
        self.entries = {}
        return self.refresh(save=save)

    def _index_one(self, path: Path, stat) -> dict:
        try:
            record = summary_dict(summarize(read_run_log(path)))
        except (RunLogError, OSError) as exc:
            record = {
                "schema": SUMMARY_SCHEMA_VERSION,
                "run_id": path.stem,
                "outcome": "unreadable",
                "error": str(exc),
            }
        record["file"] = path.name
        record["size"] = stat.st_size
        record["mtime"] = stat.st_mtime
        return record

    # -- queries ---------------------------------------------------------

    def get(self, run_id: str) -> Optional[dict]:
        return self.entries.get(run_id)

    def rows(self) -> list[dict]:
        """Every record, newest first (created, then run id)."""
        return sorted(
            self.entries.values(),
            key=lambda e: (-(e.get("created") or 0), e.get("run_id", "")),
        )

    def __len__(self) -> int:
        return len(self.entries)


def render_index(index: RunIndex) -> str:
    """The ``repro obs index`` text table."""
    lines = [
        f"{index.dir}: {len(index)} indexed run(s)",
        f"  {'run_id':<24} {'program':<12} {'mode':<12} "
        f"{'total':>9} {'events':>7}  outcome",
    ]
    for entry in index.rows():
        total = entry.get("total")
        lines.append(
            f"  {entry.get('run_id', '?'):<24} "
            f"{(entry.get('program') or '-'):<12} "
            f"{(entry.get('mode') or '-'):<12} "
            f"{(f'{total:.3f}s' if total is not None else '-'):>9} "
            f"{(entry.get('n_events') if entry.get('n_events') is not None else '-'):>7}  "
            f"{entry.get('outcome', '?')}"
        )
    return "\n".join(lines)
