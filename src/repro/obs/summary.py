"""Offline run inspection: phase-timing breakdowns from a JSONL log.

Everything here works from a :class:`~repro.obs.runlog.RunLogReplay` —
no live bus, no session objects — which is the point: a run that
finished (or crashed) on another machine is fully explainable from its
``runs/<run_id>.jsonl`` alone.  ``repro obs summary`` renders one run,
``repro obs compare`` sets two side by side (the tool the BENCH_eval
parallel-discovery regression needed: *which phase* ate the
wall-clock).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .metrics import render_snapshot
from .runlog import RunLogReplay


@dataclass
class PhaseTiming:
    """One closed span, in start order."""

    name: str
    duration: float
    depth: int
    parent: Optional[str]
    started: float


@dataclass
class RunSummary:
    """The offline reconstruction of one run's shape and cost."""

    run_id: str
    schema: int
    program: Optional[str]
    mode: Optional[str]
    approach: Optional[str]
    n_events: int
    #: seconds from the first to the last enveloped event
    total: float
    #: spans in start order (parents precede children)
    phases: list[PhaseTiming]
    metrics: Optional[dict]
    finished: bool


def summarize(replay: RunLogReplay) -> RunSummary:
    """Fold a replay into a :class:`RunSummary`."""
    started = replay.events.first("run-started")
    phases = [
        PhaseTiming(
            name=event.name,
            duration=event.duration,
            depth=event.depth,
            parent=event.parent,
            started=event.started,
        )
        for event in replay.events.of_kind("span-closed")
    ]
    phases.sort(key=lambda p: p.started)
    times = [row["t"] for row in replay.records]
    return RunSummary(
        run_id=replay.run_id,
        schema=replay.schema,
        program=getattr(started, "program", None),
        mode=getattr(started, "mode", None),
        approach=getattr(started, "approach", None),
        n_events=len(replay.records),
        total=(max(times) - min(times)) if times else 0.0,
        phases=phases,
        metrics=replay.metrics,
        finished=replay.events.first("run-finished") is not None,
    )


def render_summary(summary: RunSummary, metrics: bool = True) -> str:
    """The ``repro obs summary`` text block."""
    lines = [
        f"run      : {summary.run_id} (log schema {summary.schema}, "
        f"{summary.n_events} events"
        + ("" if summary.finished else ", UNFINISHED")
        + ")",
    ]
    details = [
        part
        for part in (
            f"program={summary.program}" if summary.program else None,
            f"mode={summary.mode}" if summary.mode else None,
            f"approach={summary.approach}" if summary.approach else None,
        )
        if part
    ]
    if details:
        lines.append(f"spec     : {' '.join(details)}")
    lines.append(f"duration : {summary.total:.3f}s (first to last event)")
    if summary.phases:
        lines.append("phases   :")
        for phase in summary.phases:
            share = (
                f"{phase.duration / summary.total:6.1%}"
                if summary.total > 0
                else "   n/a"
            )
            indent = "  " * phase.depth
            lines.append(
                f"  {indent}{phase.name:<24.24} {phase.duration:9.3f}s {share}"
            )
    else:
        lines.append("phases   : none recorded (log predates span tracing?)")
    if metrics and summary.metrics is not None:
        lines.append(render_snapshot(summary.metrics))
    return "\n".join(lines)


def render_compare(a: RunSummary, b: RunSummary) -> str:
    """The ``repro obs compare`` table: phase-by-phase A vs B."""

    def top_level(summary: RunSummary) -> dict[str, float]:
        # Per-round child spans vary in count between runs; compare the
        # stable top-level phases and total the rest under their parent.
        return {p.name: p.duration for p in summary.phases if p.depth == 0}

    phases_a, phases_b = top_level(a), top_level(b)
    names = list(phases_a) + [n for n in phases_b if n not in phases_a]
    lines = [
        f"A: {a.run_id} ({a.total:.3f}s)",
        f"B: {b.run_id} ({b.total:.3f}s)",
        "",
        f"  {'phase':<24} {'A':>10} {'B':>10} {'B/A':>7}",
    ]
    for name in names:
        da, db = phases_a.get(name), phases_b.get(name)
        cell_a = f"{da:9.3f}s" if da is not None else "        -"
        cell_b = f"{db:9.3f}s" if db is not None else "        -"
        ratio = f"{db / da:6.2f}x" if da and db is not None else "      -"
        lines.append(f"  {name:<24} {cell_a:>10} {cell_b:>10} {ratio:>7}")
    ratio = f"{b.total / a.total:6.2f}x" if a.total > 0 else "      -"
    lines.append(
        f"  {'TOTAL':<24} {a.total:9.3f}s {b.total:9.3f}s {ratio:>7}"
    )
    metrics_a = (a.metrics or {}).get("gauges", {})
    metrics_b = (b.metrics or {}).get("gauges", {})
    shared = [k for k in metrics_a if k in metrics_b]
    diff = [k for k in shared if metrics_a[k] != metrics_b[k]]
    if diff:
        lines.append("")
        lines.append("gauges that differ:")
        for key in diff:
            lines.append(f"  {key}: {metrics_a[key]} -> {metrics_b[key]}")
    return "\n".join(lines)
