"""Offline run inspection: phase-timing breakdowns from a JSONL log.

Everything here works from a :class:`~repro.obs.runlog.RunLogReplay` —
no live bus, no session objects — which is the point: a run that
finished (or crashed) on another machine is fully explainable from its
``runs/<run_id>.jsonl`` alone.  ``repro obs summary`` renders one run,
``repro obs compare`` sets two side by side (the tool the BENCH_eval
parallel-discovery regression needed: *which phase* ate the
wall-clock), and ``repro obs spans`` renders the span tree.

:func:`summary_dict` / :func:`compare_dict` are the machine-readable
twins (``--json``), versioned by :data:`SUMMARY_SCHEMA_VERSION`; the
per-run dict is **the same payload** the cross-run index
(:mod:`repro.obs.index`) stores per run and the serve daemon returns
from ``GET /v1/runs/{run_id}`` — one summarizer feeds the CLI, the
index, and the service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .metrics import render_snapshot
from .runlog import RunLogReplay

#: bump on any backwards-incompatible change to summary_dict's shape
SUMMARY_SCHEMA_VERSION = 1


@dataclass
class PhaseTiming:
    """One closed span, in start order."""

    name: str
    duration: float
    depth: int
    parent: Optional[str]
    started: float


@dataclass
class RunSummary:
    """The offline reconstruction of one run's shape and cost."""

    run_id: str
    schema: int
    program: Optional[str]
    mode: Optional[str]
    approach: Optional[str]
    n_events: int
    #: seconds from the first to the last enveloped event
    total: float
    #: spans in start order (parents precede children)
    phases: list[PhaseTiming]
    metrics: Optional[dict]
    finished: bool
    #: sha256 of the submitted spec's canonical JSON, when the log
    #: writer stamped one into the header (the serve daemon does)
    spec_digest: Optional[str] = None
    #: unix time the log's first line was written
    created: Optional[float] = None


def summarize(replay: RunLogReplay) -> RunSummary:
    """Fold a replay into a :class:`RunSummary`."""
    started = replay.events.first("run-started")
    phases = [
        PhaseTiming(
            name=event.name,
            duration=event.duration,
            depth=event.depth,
            parent=event.parent,
            started=event.started,
        )
        for event in replay.events.of_kind("span-closed")
    ]
    phases.sort(key=lambda p: p.started)
    times = [row["t"] for row in replay.records]
    return RunSummary(
        run_id=replay.run_id,
        schema=replay.schema,
        program=getattr(started, "program", None),
        mode=getattr(started, "mode", None),
        approach=getattr(started, "approach", None),
        n_events=len(replay.records),
        total=(max(times) - min(times)) if times else 0.0,
        phases=phases,
        metrics=replay.metrics,
        finished=replay.events.first("run-finished") is not None,
        spec_digest=replay.header.get("spec_digest"),
        created=replay.created,
    )


def summary_dict(summary: RunSummary) -> dict:
    """A :class:`RunSummary` as the versioned, JSON-able payload.

    This is the exact per-run record :class:`repro.obs.index.RunIndex`
    stores and ``repro obs summary --json`` prints.  ``durations`` maps
    each top-level phase to its seconds (the stable comparison keys);
    ``outcome`` is ``"finished"`` or ``"unfinished"``.
    """
    return {
        "schema": SUMMARY_SCHEMA_VERSION,
        "run_id": summary.run_id,
        "run_log_schema": summary.schema,
        "spec_digest": summary.spec_digest,
        "program": summary.program,
        "mode": summary.mode,
        "approach": summary.approach,
        "created": summary.created,
        "n_events": summary.n_events,
        "total": round(summary.total, 6),
        "outcome": "finished" if summary.finished else "unfinished",
        "durations": {
            p.name: round(p.duration, 6)
            for p in summary.phases
            if p.depth == 0
        },
        "phases": [
            {
                "name": p.name,
                "duration": round(p.duration, 6),
                "depth": p.depth,
                "parent": p.parent,
                "started": round(p.started, 6),
            }
            for p in summary.phases
        ],
        "metrics": summary.metrics,
    }


def compare_dict(a: RunSummary, b: RunSummary) -> dict:
    """Two runs side by side as a versioned payload (``compare --json``)."""
    durations_a = summary_dict(a)["durations"]
    durations_b = summary_dict(b)["durations"]
    names = list(durations_a) + [
        n for n in durations_b if n not in durations_a
    ]
    gauges_a = (a.metrics or {}).get("gauges", {})
    gauges_b = (b.metrics or {}).get("gauges", {})
    return {
        "schema": SUMMARY_SCHEMA_VERSION,
        "a": summary_dict(a),
        "b": summary_dict(b),
        "phases": [
            {
                "name": name,
                "a": durations_a.get(name),
                "b": durations_b.get(name),
                "ratio": (
                    round(durations_b[name] / durations_a[name], 6)
                    if durations_a.get(name) and name in durations_b
                    else None
                ),
            }
            for name in names
        ],
        "total_ratio": (
            round(b.total / a.total, 6) if a.total > 0 else None
        ),
        "gauges_differ": {
            key: [gauges_a[key], gauges_b[key]]
            for key in sorted(gauges_a)
            if key in gauges_b and gauges_a[key] != gauges_b[key]
        },
    }


def render_span_tree(summary: RunSummary) -> str:
    """The ``repro obs spans`` ASCII tree: every closed span with its
    duration and share of its parent (top-level spans: share of the
    run's first-to-last-event total).

    Phases arrive in start order with parents preceding children
    (:func:`summarize` sorts by ``started``), so a depth-indexed stack
    of durations recovers the nesting without span ids.
    """
    if not summary.phases:
        return "(no spans recorded — log predates span tracing?)"
    width = max(
        2 * p.depth + len(p.name) for p in summary.phases
    )
    lines = [f"{summary.run_id}: {summary.total:.3f}s total"]
    #: duration of the open span at each depth (parents precede children)
    open_at_depth: list[float] = []
    for phase in summary.phases:
        del open_at_depth[phase.depth:]
        parent_duration = (
            open_at_depth[phase.depth - 1]
            if 0 < phase.depth <= len(open_at_depth)
            else summary.total
        )
        share = (
            f"{phase.duration / parent_duration:6.1%}"
            if parent_duration > 0
            else "   n/a"
        )
        label = "  " * phase.depth + phase.name
        lines.append(f"  {label:<{width}} {phase.duration:9.3f}s {share}")
        open_at_depth.append(phase.duration)
    return "\n".join(lines)


def render_summary(summary: RunSummary, metrics: bool = True) -> str:
    """The ``repro obs summary`` text block."""
    lines = [
        f"run      : {summary.run_id} (log schema {summary.schema}, "
        f"{summary.n_events} events"
        + ("" if summary.finished else ", UNFINISHED")
        + ")",
    ]
    details = [
        part
        for part in (
            f"program={summary.program}" if summary.program else None,
            f"mode={summary.mode}" if summary.mode else None,
            f"approach={summary.approach}" if summary.approach else None,
        )
        if part
    ]
    if details:
        lines.append(f"spec     : {' '.join(details)}")
    lines.append(f"duration : {summary.total:.3f}s (first to last event)")
    if summary.phases:
        lines.append("phases   :")
        for phase in summary.phases:
            share = (
                f"{phase.duration / summary.total:6.1%}"
                if summary.total > 0
                else "   n/a"
            )
            indent = "  " * phase.depth
            lines.append(
                f"  {indent}{phase.name:<24.24} {phase.duration:9.3f}s {share}"
            )
    else:
        lines.append("phases   : none recorded (log predates span tracing?)")
    if metrics and summary.metrics is not None:
        lines.append(render_snapshot(summary.metrics))
    return "\n".join(lines)


def render_compare(a: RunSummary, b: RunSummary) -> str:
    """The ``repro obs compare`` table: phase-by-phase A vs B."""

    def top_level(summary: RunSummary) -> dict[str, float]:
        # Per-round child spans vary in count between runs; compare the
        # stable top-level phases and total the rest under their parent.
        return {p.name: p.duration for p in summary.phases if p.depth == 0}

    phases_a, phases_b = top_level(a), top_level(b)
    names = list(phases_a) + [n for n in phases_b if n not in phases_a]
    lines = [
        f"A: {a.run_id} ({a.total:.3f}s)",
        f"B: {b.run_id} ({b.total:.3f}s)",
        "",
        f"  {'phase':<24} {'A':>10} {'B':>10} {'B/A':>7}",
    ]
    for name in names:
        da, db = phases_a.get(name), phases_b.get(name)
        cell_a = f"{da:9.3f}s" if da is not None else "        -"
        cell_b = f"{db:9.3f}s" if db is not None else "        -"
        ratio = f"{db / da:6.2f}x" if da and db is not None else "      -"
        lines.append(f"  {name:<24} {cell_a:>10} {cell_b:>10} {ratio:>7}")
    ratio = f"{b.total / a.total:6.2f}x" if a.total > 0 else "      -"
    lines.append(
        f"  {'TOTAL':<24} {a.total:9.3f}s {b.total:9.3f}s {ratio:>7}"
    )
    metrics_a = (a.metrics or {}).get("gauges", {})
    metrics_b = (b.metrics or {}).get("gauges", {})
    shared = [k for k in metrics_a if k in metrics_b]
    diff = [k for k in shared if metrics_a[k] != metrics_b[k]]
    if diff:
        lines.append("")
        lines.append("gauges that differ:")
        for key in diff:
            lines.append(f"  {key}: {metrics_a[key]} -> {metrics_b[key]}")
    return "\n".join(lines)
