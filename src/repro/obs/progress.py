"""The stderr progress line: one human-readable row per run event.

An enveloped observer (it wants the bus timestamps) that narrates a run
as it happens — what ``--progress`` turns on.  Purely cosmetic: it
reads event payloads and writes to a stream, nothing else.
"""

from __future__ import annotations

import sys
from typing import Optional, TextIO

from ..api.events import Envelope, Event


def describe_event(event: Event) -> Optional[str]:
    """A one-line description of an event, or ``None`` to stay quiet."""
    kind = event.kind
    if kind == "run-started":
        return (
            f"run started: {event.program or '(corpus program)'} "
            f"[{event.mode}"
            + (f", {event.approach}]" if event.approach else "]")
        )
    if kind == "collection-started":
        return (
            f"collecting {event.n_success}+{event.n_fail} traces "
            f"of {event.program}"
        )
    if kind == "collection-finished":
        return (
            f"collected {event.n_success} pass / {event.n_fail} fail "
            f"(signature {event.signature})"
        )
    if kind == "corpus-loaded":
        return (
            f"corpus loaded: {event.n_traces} traces "
            f"({event.n_pass} pass / {event.n_fail} fail)"
        )
    if kind == "suite-frozen":
        return f"suite frozen: {event.n_predicates} predicates ({event.source})"
    if kind == "logs-evaluated":
        parts = [f"evaluated {event.n_logs} logs"]
        if event.fresh is not None or event.memoized is not None:
            parts.append(
                f"({event.fresh or 0} fresh, {event.memoized or 0} memoized)"
            )
        return " ".join(parts)
    if kind == "dag-built":
        return f"AC-DAG built: {event.n_nodes} nodes, {event.n_edges} edges"
    if kind == "intervention-round":
        return f"intervention round {event.index} ({event.phase})"
    if kind == "dag-patched":
        removed = (
            f", -{len(event.removed_pids)} pids" if event.removed_pids else ""
        )
        return f"ingested {event.fingerprint[:12]}{removed}"
    if kind == "span-closed":
        indent = "  " * event.depth
        return f"{indent}{event.name} took {event.duration:.3f}s"
    if kind == "engine-finished":
        return (
            f"engine finished: {event.executed} executed, "
            f"{event.cached} cached"
        )
    if kind == "run-finished":
        return "run finished"
    return None


class ProgressLine:
    """Writes ``[ +t] description`` to stderr (or a given stream)."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self._stream = stream

    def on_enveloped(self, envelope: Envelope) -> None:
        text = describe_event(envelope.event)
        if text is None:
            return
        stream = self._stream if self._stream is not None else sys.stderr
        print(f"[{envelope.t:8.3f}s] {text}", file=stream, flush=True)
