"""The metrics registry: counters, gauges, and timers for one run.

Role
----
The hot paths already count things ad hoc — :class:`~repro.exec.stats.
ExecStats` tracks executed/cached runs, the eval matrix tracks fresh
vs. memoized (predicate, trace) pairs and its single-pass kernel
batches, sessions know their collection sizes.  This module gives those
numbers one home: a :class:`MetricsRegistry` snapshotted into the JSONL
run log and (when observability is enabled) into the versioned report.

Two feeds fill the registry:

* :class:`MetricsObserver` subscribes to the run's
  :class:`~repro.api.events.EventBus` and folds every event's payload
  into counters/gauges (and every ``span-closed`` into a timer) — no
  new increments in any inner loop;
* **providers** are callables polled once at snapshot time for gauges
  whose source of truth lives elsewhere (the execution engine's
  :class:`~repro.exec.stats.ExecStats` registers one).

Invariants
----------
* :meth:`MetricsRegistry.snapshot` is deterministic in *shape*: keys
  sort, timers reduce to ``{count, total, mean}``; values involving
  wall-clock are of course not reproducible run to run, which is why
  the report only carries a snapshot when observability is explicitly
  enabled (see :mod:`repro.core.report`);
* observing never affects results — the registry is write-only until
  snapshot and nothing reads it back into the pipeline.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from ..api.events import Event

#: metric name -> numeric value, what a provider returns
MetricProvider = Callable[[], Mapping[str, float]]


class MetricsRegistry:
    """Counters (monotonic ints), gauges (last-write-wins numbers), and
    timers (count/total/mean of observed durations)."""

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        #: name -> [count, total_seconds]
        self._timers: dict[str, list] = {}
        self._providers: list[MetricProvider] = []

    def count(self, name: str, increment: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + increment

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def time(self, name: str, seconds: float) -> None:
        entry = self._timers.get(name)
        if entry is None:
            self._timers[name] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    def register_provider(self, provider: MetricProvider) -> None:
        """Polled once per :meth:`snapshot`, merged into the gauges."""
        self._providers.append(provider)

    def merge_snapshot(self, snapshot: Mapping) -> None:
        """Fold another registry's :meth:`snapshot` into this one —
        counters and timers accumulate, gauges last-write-win.  The
        serve daemon aggregates every finished run's snapshot into one
        fleet registry this way for its ``/metrics`` endpoint."""
        for name, value in (snapshot.get("counters") or {}).items():
            self.count(name, value)
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauge(name, value)
        for name, cell in (snapshot.get("timers") or {}).items():
            entry = self._timers.setdefault(name, [0, 0.0])
            entry[0] += cell.get("count", 0)
            entry[1] += cell.get("total", 0.0)

    def snapshot(self) -> dict:
        """The registry as one sorted, JSON-able dict."""
        gauges = dict(self._gauges)
        for provider in self._providers:
            gauges.update(provider())
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: gauges[k] for k in sorted(gauges)},
            "timers": {
                name: {
                    "count": count,
                    "total": round(total, 6),
                    "mean": round(total / count, 6),
                }
                for name, (count, total) in sorted(self._timers.items())
            },
        }


def render_snapshot(snapshot: Mapping, title: str = "metrics") -> str:
    """A snapshot as the indented text block ``--metrics`` prints."""
    lines = [f"{title}:"]
    for section in ("counters", "gauges"):
        values = snapshot.get(section) or {}
        if values:
            lines.append(f"  {section}:")
            for name, value in values.items():
                lines.append(f"    {name} = {value}")
    timers = snapshot.get("timers") or {}
    if timers:
        lines.append("  timers:")
        for name, cell in timers.items():
            lines.append(
                f"    {name} = {cell['count']} x "
                f"{cell['mean']:.3f}s (total {cell['total']:.3f}s)"
            )
    if len(lines) == 1:
        lines.append("  (empty)")
    return "\n".join(lines)


class MetricsObserver:
    """Folds the event stream into a registry.

    Every branch below reads numbers the emitting subsystem already
    maintained; the observer adds no counting to any hot path.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def on_event(self, event: Event) -> None:
        registry = self.registry
        registry.count("events.total")
        kind = event.kind
        if kind == "collection-finished":
            registry.gauge("collection.n_success", event.n_success)
            registry.gauge("collection.n_fail", event.n_fail)
        elif kind == "corpus-loaded":
            registry.gauge("corpus.traces", event.n_traces)
            registry.gauge("corpus.pass", event.n_pass)
            registry.gauge("corpus.fail", event.n_fail)
        elif kind == "suite-frozen":
            registry.gauge("suite.predicates", event.n_predicates)
            registry.count(f"suite.source.{event.source}")
        elif kind == "logs-evaluated":
            registry.gauge("eval.logs", event.n_logs)
            if event.fresh is not None:
                registry.gauge("eval.fresh_pairs", event.fresh)
            if event.memoized is not None:
                registry.gauge("eval.memoized_pairs", event.memoized)
            if event.kernel_calls is not None:
                registry.gauge("eval.kernel_calls", event.kernel_calls)
                if event.kernel_calls:
                    registry.gauge(
                        "eval.kernel_batch_mean",
                        round((event.fresh or 0) / event.kernel_calls, 3),
                    )
            total = (event.fresh or 0) + (event.memoized or 0)
            if total:
                registry.gauge(
                    "eval.memo_hit_rate",
                    round((event.memoized or 0) / total, 6),
                )
        elif kind == "dag-built":
            registry.gauge("dag.nodes", event.n_nodes)
            registry.gauge("dag.edges", event.n_edges)
        elif kind == "dag-patched":
            registry.count("ingest.patched")
            if event.removed_pids:
                registry.count("ingest.removed_pids", len(event.removed_pids))
        elif kind == "intervention-round":
            registry.count(f"rounds.{event.phase}")
        elif kind == "span-closed":
            # Collapse per-round span names (round:giwp#3) to one timer
            # per phase, keeping timer cardinality bounded.
            registry.time(f"span.{event.name.split('#')[0]}", event.duration)
        elif kind == "engine-finished":
            registry.gauge("exec.executed", event.executed)
            registry.gauge("exec.cached", event.cached)
