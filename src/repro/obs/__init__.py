"""repro.obs — durable run telemetry over the observer seam.

Role
----
Everything a long-running or remote ``repro`` needs to explain itself
after the fact, built entirely on :mod:`repro.api.events` (observers
never affect results):

* :class:`JsonlRunLog` — a schema-versioned ``runs/<run_id>.jsonl``
  per run, replayable offline via :func:`read_run_log`;
* :class:`MetricsRegistry` / :class:`MetricsObserver` — counters,
  gauges, and per-phase timers snapshotted into the log and (when
  enabled) the versioned report;
* :class:`ProgressLine` — the ``--progress`` stderr narrator;
* span tracing itself lives on the bus (:meth:`repro.api.events.
  EventBus.span`); this package consumes the ``span-closed`` stream;
* :class:`ObsContext` — the one wiring point: built from the CLI's
  ``--log-dir/--progress/--metrics/--profile`` flags (or directly in
  library code) and handed to :func:`repro.api.run`.

Invariant: a run with an :class:`ObsContext` attached produces a report
byte-identical to one without — except the report's additive ``meta``
key, which gains the run id and the metrics snapshot (asserted in
tests and re-checked by ``benchmarks/bench_obs.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TextIO

from ..api.events import EventBus
from .index import INDEX_SCHEMA_VERSION, IndexStats, RunIndex, render_index
from .metrics import MetricsObserver, MetricsRegistry, render_snapshot
from .progress import ProgressLine, describe_event
from .runlog import (
    RUN_LOG_SCHEMA_VERSION,
    JsonlCursor,
    JsonlRunLog,
    RunLogError,
    RunLogReplay,
    latest_run_log,
    read_run_log,
)
from .summary import (
    SUMMARY_SCHEMA_VERSION,
    RunSummary,
    compare_dict,
    render_compare,
    render_span_tree,
    render_summary,
    summarize,
    summary_dict,
)

__all__ = [
    "INDEX_SCHEMA_VERSION",
    "RUN_LOG_SCHEMA_VERSION",
    "SUMMARY_SCHEMA_VERSION",
    "IndexStats",
    "JsonlCursor",
    "JsonlRunLog",
    "MetricsObserver",
    "MetricsRegistry",
    "ObsContext",
    "ObsOptions",
    "ProgressLine",
    "RunIndex",
    "RunLogError",
    "RunLogReplay",
    "RunSummary",
    "compare_dict",
    "describe_event",
    "latest_run_log",
    "read_run_log",
    "render_compare",
    "render_index",
    "render_snapshot",
    "render_span_tree",
    "render_summary",
    "summarize",
    "summary_dict",
]


@dataclass
class ObsOptions:
    """What to observe — the CLI's ``--log-dir/--progress/--metrics/
    --profile`` flags as a value object."""

    log_dir: Optional[str] = None
    progress: bool = False
    metrics: bool = False
    profile: bool = False


class ObsContext:
    """Wires the observability stack onto one run's :class:`EventBus`.

    Lifecycle (``repro.api.run`` drives it)::

        obs = ObsContext(ObsOptions(log_dir="runs"))
        report = repro.api.run(spec, obs=obs)
        # obs.run_id / obs.log_path / obs.final_snapshot() now set

    ``install`` subscribes the observers; ``watch_engine`` registers the
    engine's stats as a metrics provider; ``stamp`` writes the run id
    and the final snapshot into the report (the additive ``meta`` key);
    ``close`` releases the log file if the run died before
    ``run-finished``.
    """

    def __init__(
        self,
        options: Optional[ObsOptions] = None,
        stream: Optional[TextIO] = None,
    ) -> None:
        self.options = options if options is not None else ObsOptions()
        self.registry = MetricsRegistry()
        #: extra fields for the run log's header line (e.g. the caller's
        #: ``spec_digest`` — ``repro.api.run`` stamps it before install)
        self.header_extra: dict = {}
        self.runlog: Optional[JsonlRunLog] = None
        self.run_id: Optional[str] = None
        self._stream = stream
        self._snapshot: Optional[dict] = None

    @property
    def log_path(self):
        """Path of the run log being written, once the first event lands."""
        return self.runlog.path if self.runlog is not None else None

    def install(self, bus: EventBus) -> None:
        self.run_id = bus.run_id
        bus.subscribe(MetricsObserver(self.registry))
        if self.options.log_dir is not None:
            self.runlog = JsonlRunLog(
                self.options.log_dir,
                metrics=self.final_snapshot,
                header=self.header_extra or None,
            )
            bus.subscribe(self.runlog)
            if self.options.profile:
                bus.profile_dir = str(self.runlog.dir)
        if self.options.progress:
            bus.subscribe(ProgressLine(self._stream))

    def watch_engine(self, engine) -> None:
        """Poll the engine's :class:`~repro.exec.stats.ExecStats` at
        snapshot time (gauges like ``exec.wall_time``)."""
        self.registry.register_provider(engine.stats.metrics)

    def final_snapshot(self) -> dict:
        """The metrics snapshot, computed once — the report and the run
        log's trailing metrics line carry the same numbers."""
        if self._snapshot is None:
            self._snapshot = self.registry.snapshot()
        return self._snapshot

    def stamp(self, report) -> None:
        """Write run id + snapshot into the report's ``meta`` fields."""
        report.run_id = self.run_id
        report.metrics = self.final_snapshot()

    def close(self) -> None:
        if self.runlog is not None:
            self.runlog.close()
