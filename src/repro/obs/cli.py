"""CLI glue for observability: shared flags and the ``repro obs`` verbs.

``add_obs_flags`` puts the same four flags on every pipeline command
(``run``, ``debug``, ``corpus analyze``), mirroring how
:meth:`repro.api.spec.EngineSpec.add_flags` shares the engine flags;
``obs_from_args`` turns a parsed namespace into the
:class:`~repro.obs.ObsContext` that :func:`repro.api.run` accepts (or
``None`` when nothing was requested, keeping the default path
observer-free).

The ``repro obs`` subcommand inspects logs after the fact:

* ``summary FILE|DIR [--json]`` — phase-timing breakdown + metrics of
  one run (``--json``: the versioned payload the cross-run index
  stores);
* ``compare A B [--json]`` — two runs side by side;
* ``spans FILE|DIR`` — the span tree (name, duration, % of parent);
* ``index DIR [--rebuild] [--json]`` — maintain/print the cross-run
  ``index.json`` catalog (see :mod:`repro.obs.index`);
* ``tail FILE|DIR [--follow]`` — the log as progress lines, optionally
  following a live run until its ``run-finished`` lands (the same
  cursor + rendering ``repro submit --follow`` streams over HTTP).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Optional, TextIO

from . import ObsContext, ObsOptions
from .index import RunIndex, render_index
from .runlog import JsonlCursor, RunLogError, latest_run_log, read_run_log
from .summary import (
    compare_dict,
    render_compare,
    render_span_tree,
    render_summary,
    summarize,
    summary_dict,
)


def add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """The shared observability flags (see module docstring)."""
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--log-dir", default=None, metavar="DIR",
        help="write a schema-versioned JSONL run log to DIR/<run_id>.jsonl "
        "(inspect it later with `repro obs summary DIR`)",
    )
    group.add_argument(
        "--progress", action="store_true",
        help="stream one progress line per pipeline event to stderr",
    )
    group.add_argument(
        "--metrics", action="store_true",
        help="print the final metrics snapshot (counters/gauges/timers) "
        "to stderr",
    )
    group.add_argument(
        "--profile", action="store_true",
        help="cProfile each top-level phase into DIR/<run_id>-<phase>.prof "
        "(requires --log-dir)",
    )


def obs_from_args(args: argparse.Namespace) -> Optional[ObsContext]:
    """An :class:`ObsContext` for the parsed flags, or ``None``."""
    options = ObsOptions(
        log_dir=getattr(args, "log_dir", None),
        progress=bool(getattr(args, "progress", False)),
        metrics=bool(getattr(args, "metrics", False)),
        profile=bool(getattr(args, "profile", False)),
    )
    if not (
        options.log_dir or options.progress or options.metrics
        or options.profile
    ):
        return None
    if options.profile and options.log_dir is None:
        raise SystemExit("repro: --profile requires --log-dir")
    return ObsContext(options)


def resolve_run_log(target: str) -> Path:
    """A run-log path from a CLI operand: a file, or a directory whose
    newest ``*.jsonl`` is meant."""
    path = Path(target)
    if path.is_dir():
        return latest_run_log(path)
    return path


def render_log_row(row: dict) -> str:
    """One parsed run-log row as the human progress line.

    The single rendering shared by ``repro obs tail`` (local file) and
    ``repro submit --follow`` (the daemon's NDJSON event stream) — both
    feeds carry the same rows, so they read identically.
    """
    if "seq" not in row:
        kind = "header" if "schema" in row else row.get("kind")
        return f"[{kind}] {json.dumps(row, sort_keys=True)}"
    return (
        f"[{row['t']:8.3f}s] #{row['seq']:<3} {row['kind']:<18} "
        f"{json.dumps(row['data'], sort_keys=True)}"
    )


def tail_run_log(
    path: Path,
    follow: bool = False,
    interval: float = 0.2,
    stream: Optional[TextIO] = None,
    timeout: Optional[float] = None,
) -> int:
    """Print a run log line by line; with ``follow``, poll for new lines
    until ``run-finished`` (or ``timeout`` seconds pass).

    Built on :class:`~repro.obs.runlog.JsonlCursor`, so following works
    against the flushed-per-line JSONL of a *live* run — including one
    whose log file has not been created yet (``--follow`` simply waits
    for the writer's first line).
    """
    out = stream if stream is not None else sys.stdout
    if not follow and not path.exists():
        raise RunLogError(f"no run log at {path}")
    deadline = time.monotonic() + timeout if timeout is not None else None
    cursor = JsonlCursor(path)
    while True:
        for _, row in cursor.poll():
            print(render_log_row(row), file=out)
        if cursor.finished or not follow:
            return 0
        if deadline is not None and time.monotonic() >= deadline:
            return 1
        time.sleep(interval)


def cmd_obs(args: argparse.Namespace) -> int:
    """Dispatch ``repro obs summary|compare|tail``."""
    try:
        return _cmd_obs(args)
    except BrokenPipeError:
        # `repro obs ... | head` is routine; a closed pipe is not an
        # error.  Point stdout at devnull so the interpreter's exit-time
        # flush does not raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    try:
        if args.obs_command == "summary":
            summary = summarize(read_run_log(resolve_run_log(args.run)))
            if args.json:
                print(json.dumps(summary_dict(summary), indent=2,
                                 sort_keys=True))
            else:
                print(render_summary(summary, metrics=not args.no_metrics))
            return 0
        if args.obs_command == "compare":
            first = summarize(read_run_log(resolve_run_log(args.run_a)))
            second = summarize(read_run_log(resolve_run_log(args.run_b)))
            if args.json:
                print(json.dumps(compare_dict(first, second), indent=2,
                                 sort_keys=True))
            else:
                print(render_compare(first, second))
            return 0
        if args.obs_command == "spans":
            summary = summarize(read_run_log(resolve_run_log(args.run)))
            print(render_span_tree(summary))
            return 0
        if args.obs_command == "index":
            index = RunIndex(args.dir)
            stats = index.rebuild() if args.rebuild else index.refresh()
            if args.json:
                print(json.dumps(index.to_dict(), indent=2, sort_keys=True))
            else:
                print(render_index(index))
                print(
                    f"  ({stats.added} added, {stats.updated} updated, "
                    f"{stats.removed} removed, {stats.unchanged} unchanged "
                    f"-> {index.path})"
                )
            return 0
        if args.obs_command == "tail":
            return tail_run_log(
                resolve_run_log(args.run),
                follow=args.follow,
                interval=args.interval,
            )
    except RunLogError as exc:
        raise SystemExit(f"repro: obs: {exc}") from exc
    raise SystemExit(f"repro: obs: unknown command {args.obs_command!r}")


def add_obs_subcommand(sub: argparse._SubParsersAction) -> None:
    """Register ``repro obs`` and its verbs on the main parser."""
    obs = sub.add_parser(
        "obs",
        help="inspect durable run telemetry (JSONL run logs)",
    )
    osub = obs.add_subparsers(dest="obs_command", required=True)

    osummary = osub.add_parser(
        "summary",
        help="phase-timing breakdown and metrics of one logged run",
    )
    osummary.add_argument(
        "run",
        help="a runs/<run_id>.jsonl file, or a log dir (newest run wins)",
    )
    osummary.add_argument(
        "--no-metrics", action="store_true",
        help="omit the metrics snapshot block",
    )
    osummary.add_argument(
        "--json", action="store_true",
        help="print the versioned summary payload (the same record the "
        "cross-run index stores) instead of text",
    )

    ocompare = osub.add_parser(
        "compare", help="two logged runs side by side, phase by phase"
    )
    ocompare.add_argument("run_a", help="baseline run log (file or dir)")
    ocompare.add_argument("run_b", help="candidate run log (file or dir)")
    ocompare.add_argument(
        "--json", action="store_true",
        help="print the versioned comparison payload instead of text",
    )

    ospans = osub.add_parser(
        "spans",
        help="render the span tree of one run: name, duration, share "
        "of parent",
    )
    ospans.add_argument(
        "run",
        help="a runs/<run_id>.jsonl file, or a log dir (newest run wins)",
    )

    oindex = osub.add_parser(
        "index",
        help="maintain the cross-run index.json catalog over a log dir "
        "(incremental: only new/changed logs are re-read)",
    )
    oindex.add_argument("dir", help="the log directory to index")
    oindex.add_argument(
        "--rebuild", action="store_true",
        help="drop the existing index and re-summarize every log",
    )
    oindex.add_argument(
        "--json", action="store_true",
        help="print the full index payload instead of the table",
    )

    otail = osub.add_parser(
        "tail", help="print a run log as progress lines"
    )
    otail.add_argument("run", help="run log file or log dir (newest run)")
    otail.add_argument(
        "--follow", action="store_true",
        help="keep polling for new lines until the run finishes",
    )
    otail.add_argument(
        "--interval", type=float, default=0.2, metavar="SECONDS",
        help="poll interval for --follow (default 0.2)",
    )
