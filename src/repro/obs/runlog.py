"""Durable run telemetry: the schema-versioned JSONL run log.

Role
----
:class:`JsonlRunLog` is an enveloped observer (see
:class:`~repro.api.events.Envelope`) that writes one
``<log_dir>/<run_id>.jsonl`` per run:

* line 1 — the **header**: ``{"schema": N, "run_id": ..., "created":
  unix-time}``;
* one line per enveloped event: ``{"seq", "t", "wall", "kind",
  "data"}`` where ``data`` is the event's dataclass payload
  (``span-closed`` lines carry the span timings, ``run-finished``
  carries the full versioned report dict);
* after ``run-finished`` — an optional trailing **metrics** line
  ``{"kind": "metrics", "data": <registry snapshot>}``.

Each line is flushed as written, so ``repro obs tail --follow`` can
watch a live run.

:func:`read_run_log` round-trips a log back into typed events — a
:class:`~repro.api.events.EventLog` replays offline exactly as the live
observers saw the run — and **rejects** logs written by a future schema
(:class:`RunLogError`), mirroring the report-schema versioning policy.

Invariants
----------
* writing is append-only and line-buffered; a crashed run leaves a
  valid prefix (every line is a complete JSON object);
* replay preserves emission order, payloads, and envelope context
  (``seq``/``t``/``wall`` survive in the raw records);
* the only lossy hop is ``run-finished``: the live event carries the
  report *object*, the replayed one carries its ``to_dict()`` payload.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Optional

from ..api import events as _events
from ..api.events import Envelope, Event, EventLog

#: bump on any backwards-incompatible change to the line shapes above
RUN_LOG_SCHEMA_VERSION = 1

#: event kind -> dataclass, rebuilt from the event catalogue so new
#: event types round-trip without touching this module
EVENT_TYPES: dict[str, type] = {
    cls.kind: cls
    for cls in vars(_events).values()
    if isinstance(cls, type)
    and issubclass(cls, Event)
    and cls is not Event
    and dataclasses.is_dataclass(cls)
}


class RunLogError(RuntimeError):
    """A run log that cannot be read (not a log, or a future schema)."""


def _event_payload(event: Event) -> dict:
    """An event's fields as a JSON-able dict (``kind`` is a ClassVar
    and rides outside the payload)."""
    data = {}
    for field in dataclasses.fields(event):
        value = getattr(event, field.name)
        if isinstance(value, frozenset):
            value = sorted(value)
        elif hasattr(value, "to_dict"):
            value = value.to_dict()
        data[field.name] = value
    return data


def _event_from(kind: str, data: dict) -> Event:
    """Rebuild the typed event a log line describes."""
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise RunLogError(f"unknown event kind {kind!r}")
    kwargs = dict(data)
    for field in dataclasses.fields(cls):
        if "frozenset" in str(field.type) and isinstance(
            kwargs.get(field.name), list
        ):
            kwargs[field.name] = frozenset(kwargs[field.name])
    return cls(**kwargs)


class JsonlRunLog:
    """Observer writing the durable JSONL run log described above.

    ``metrics`` is an optional zero-argument callable returning the
    final registry snapshot; it is polled once, right after the
    ``run-finished`` line lands (:class:`repro.obs.ObsContext` wires
    the registry's cached snapshot in here so the log and the report
    carry the same numbers).

    ``header`` merges extra keys into the header line — the serve
    daemon stamps the submitted spec's digest there so the cross-run
    index (:mod:`repro.obs.index`) can group runs by spec without the
    log carrying the whole spec.  Reserved keys (``schema``/``run_id``/
    ``created``) cannot be overridden.
    """

    def __init__(
        self,
        log_dir,
        metrics: Optional[callable] = None,
        header: Optional[dict] = None,
    ) -> None:
        self.dir = Path(log_dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        self._metrics = metrics
        self._header_extra = dict(header or {})
        self._handle = None
        self.path: Optional[Path] = None

    def on_enveloped(self, envelope: Envelope) -> None:
        if self._handle is None:
            self.path = self.dir / f"{envelope.run_id}.jsonl"
            self._handle = self.path.open("w")
            self._write(
                {
                    **self._header_extra,
                    "schema": RUN_LOG_SCHEMA_VERSION,
                    "run_id": envelope.run_id,
                    "created": envelope.wall,
                }
            )
        self._write(
            {
                "seq": envelope.seq,
                "t": round(envelope.t, 6),
                "wall": envelope.wall,
                "kind": envelope.event.kind,
                "data": _event_payload(envelope.event),
            }
        )
        if envelope.event.kind == "run-finished":
            if self._metrics is not None:
                snapshot = self._metrics()
                if snapshot is not None:
                    self._write({"kind": "metrics", "data": snapshot})
            self.close()

    def _write(self, obj: dict) -> None:
        json.dump(obj, self._handle, sort_keys=True, default=str)
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


@dataclasses.dataclass
class RunLogReplay:
    """One run log read back: typed events plus the raw envelope rows."""

    path: Path
    run_id: str
    schema: int
    created: Optional[float]
    #: raw per-event rows, each ``{"seq", "t", "wall", "kind", "data"}``
    records: list[dict]
    #: the same events, replayed through the reference observer
    events: EventLog
    #: the trailing metrics snapshot, if the run wrote one
    metrics: Optional[dict]
    #: the raw header line (carries writer extras like ``spec_digest``)
    header: dict = dataclasses.field(default_factory=dict)


def read_run_log(path) -> RunLogReplay:
    """Parse a JSONL run log back into typed events.

    Raises :class:`RunLogError` on a missing/garbled header, a schema
    newer than :data:`RUN_LOG_SCHEMA_VERSION`, or an unknown event kind.
    """
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise RunLogError(f"cannot read {path}: {exc}") from exc
    rows = []
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise RunLogError(f"{path}:{i + 1}: not JSON: {exc}") from exc
    if not rows or not isinstance(rows[0], dict) or "schema" not in rows[0]:
        raise RunLogError(f"{path}: not a run log (missing schema header)")
    header = rows[0]
    schema = header["schema"]
    if not isinstance(schema, int) or schema > RUN_LOG_SCHEMA_VERSION:
        raise RunLogError(
            f"{path}: written by run-log schema {schema!r}; this build "
            f"reads versions <= {RUN_LOG_SCHEMA_VERSION}"
        )
    events = EventLog()
    records: list[dict] = []
    metrics: Optional[dict] = None
    for row in rows[1:]:
        if row.get("kind") == "metrics" and "seq" not in row:
            metrics = row.get("data")
            continue
        events.on_event(_event_from(row["kind"], row["data"]))
        records.append(row)
    return RunLogReplay(
        path=path,
        run_id=header.get("run_id", path.stem),
        schema=schema,
        created=header.get("created"),
        records=records,
        events=events,
        metrics=metrics,
        header=header,
    )


class JsonlCursor:
    """Incremental reader over a live, line-flushed JSONL file.

    Every pipeline writer flushes whole lines (:class:`JsonlRunLog`
    invariant), so polling the file and splitting on newlines yields
    only complete JSON objects — a writer caught mid-line stays
    buffered until its newline lands.  One cursor backs every follower:
    ``repro obs tail --follow``, the serve daemon's SSE/NDJSON event
    stream, and replay-from-seq reconnects.

    ``from_seq`` skips rows whose envelope ``seq`` is ≤ the given value
    *and* the header line (a reconnecting client already holds both);
    seq-less trailing rows (the metrics line) always pass, since they
    only appear after the last event a dropped connection could have
    delivered.
    """

    def __init__(self, path, from_seq: int = 0) -> None:
        self.path = Path(path)
        self.from_seq = from_seq
        self._position = 0
        self._buffer = ""
        #: True once a ``run-finished`` row has been returned
        self.finished = False

    def poll(self) -> list[tuple[str, dict]]:
        """Every complete ``(raw_line, parsed_row)`` appended since the
        last poll, filtered by ``from_seq``.  A missing file is simply
        "no new lines yet" — the writer may not have started."""
        try:
            with self.path.open() as handle:
                handle.seek(self._position)
                chunk = handle.read()
                self._position = handle.tell()
        except FileNotFoundError:
            return []
        self._buffer += chunk
        rows: list[tuple[str, dict]] = []
        while "\n" in self._buffer:
            line, self._buffer = self._buffer.split("\n", 1)
            if not line.strip():
                continue
            row = json.loads(line)
            if "seq" in row:
                if row["seq"] <= self.from_seq:
                    continue
                if row.get("kind") == "run-finished":
                    self.finished = True
            elif "schema" in row and self.from_seq > 0:
                continue  # header: the reconnecting client has it
            rows.append((line, row))
        return rows


def latest_run_log(log_dir) -> Path:
    """The newest ``*.jsonl`` in a log directory (most recent mtime)."""
    log_dir = Path(log_dir)
    candidates = sorted(
        log_dir.glob("*.jsonl"), key=lambda p: (p.stat().st_mtime, p.name)
    )
    if not candidates:
        raise RunLogError(f"no .jsonl run logs in {log_dir}")
    return candidates[-1]
