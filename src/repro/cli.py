"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the bundled case-study workloads with their paper references.
``debug <workload> [--approach AID] [--seed N]``
    Run the full AID pipeline on a case study and print the explanation.
``figure7`` / ``figure8`` / ``figure6`` / ``example3``
    Regenerate the paper's evaluation artifacts as text tables.
``trace <workload> --seed N [--out FILE]``
    Run one execution and dump its trace as JSON (Figure 9(b) schema).

The intervention-heavy commands (``debug``, ``figure7``, ``figure8``)
accept execution-engine flags: ``--jobs N`` / ``--backend
{serial,thread,process}`` pick where intervened re-executions run, and
``--cache FILE`` persists intervention outcomes so a repeated sweep
replays from memoization instead of re-executing.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from .core.variants import Approach
from .exec import ExecutionEngine, OutcomeCache, make_backend
from .harness.experiments import (
    example3_report,
    figure6_report,
    figure7,
    figure7_report,
    figure8,
    figure8_report,
)
from .harness.session import AIDSession, SessionConfig
from .harness.tables import render_table
from .sim.scheduler import Simulator
from .sim.serialize import trace_to_json
from .workloads.common import REGISTRY


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="parallel intervened executions (default 1; >1 implies "
        "--backend thread unless given)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=["serial", "thread", "process"],
        help="execution backend for intervened runs (default serial)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="FILE",
        help="JSON outcome cache; loaded if present, saved on exit",
    )


def _make_engine(args: argparse.Namespace) -> ExecutionEngine:
    if args.cache is not None:
        # Fail before the sweep, not at save time after all the work.
        parent = os.path.dirname(os.path.abspath(args.cache))
        if not os.path.isdir(parent):
            raise SystemExit(
                f"repro: --cache: directory {parent} does not exist"
            )
    try:
        cache = OutcomeCache(path=args.cache)
    except ValueError as exc:
        raise SystemExit(f"repro: --cache: {exc}") from exc
    return ExecutionEngine(
        backend=make_backend(args.backend, args.jobs), cache=cache
    )


def _finish_engine(engine: ExecutionEngine) -> None:
    saved = engine.flush()
    engine.close()
    print()
    print(engine.stats.report())
    if saved is not None:
        print(f"outcome cache: {len(engine.cache)} entries -> {saved}")


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for name in REGISTRY.names():
        workload = REGISTRY.build(name)
        rows.append(
            [
                name,
                workload.paper.github_issue,
                workload.description,
            ]
        )
    print(render_table(["workload", "issue", "bug"], rows))
    return 0


def _cmd_debug(args: argparse.Namespace) -> int:
    workload = REGISTRY.build(args.workload)
    engine = _make_engine(args)
    try:
        config = SessionConfig(
            n_success=args.runs, n_fail=args.runs, rng_seed=args.seed,
            engine=engine,
        )
        session = AIDSession(workload.program, config)
        report = session.run(Approach(args.approach))
        print(f"workload : {workload.name} ({workload.paper.github_issue})")
        print(f"approach : {report.approach.value}")
        print(
            f"predicates: {report.n_sd_predicates} fully discriminative "
            f"(paper: {workload.paper.sd_predicates})"
        )
        print(
            f"rounds   : {report.n_rounds} intervention rounds, "
            f"{report.discovery.n_executions} executions"
        )
        print()
        print(report.explanation.render())
        if args.dot:
            print()
            print(report.dag.to_dot())
    finally:
        # An interrupted sweep still persists the outcomes it paid for.
        _finish_engine(engine)
    return 0


def _cmd_figure7(args: argparse.Namespace) -> int:
    engine = _make_engine(args)
    try:
        results = figure7(engine=engine)
        print(figure7_report(results))
    finally:
        _finish_engine(engine)
    return 0 if all(r.matches_ground_truth for r in results) else 1


def _cmd_figure8(args: argparse.Namespace) -> int:
    engine = _make_engine(args)
    try:
        result = figure8(
            apps_per_setting=args.apps, seed=args.seed, engine=engine
        )
        print(figure8_report(result))
        print(f"\napps per setting: {result.n_apps}; "
              f"exact recovery everywhere: {result.all_exact}")
    finally:
        _finish_engine(engine)
    return 0 if result.all_exact else 1


def _cmd_figure6(args: argparse.Namespace) -> int:
    print(figure6_report(args.junctions, args.branches, args.chain,
                         args.causal, args.s1, args.s2))
    return 0


def _cmd_example3(args: argparse.Namespace) -> int:
    print(example3_report())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    workload = REGISTRY.build(args.workload)
    result = Simulator(workload.program).run(args.seed)
    text = trace_to_json(result.trace, indent=2)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        status = "FAILED" if result.failed else "ok"
        print(f"wrote {args.out} (seed {args.seed}, {status})")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Causality-Guided Adaptive Interventional Debugging (AID)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list bundled case-study workloads")

    debug = sub.add_parser("debug", help="debug a case study with AID")
    debug.add_argument("workload", choices=REGISTRY.names())
    debug.add_argument(
        "--approach",
        default="AID",
        choices=[a.value for a in Approach],
    )
    debug.add_argument("--runs", type=int, default=50,
                       help="successful/failed executions to collect")
    debug.add_argument("--seed", type=int, default=0)
    debug.add_argument("--dot", action="store_true",
                       help="also print the AC-DAG in Graphviz format")
    _add_engine_flags(debug)

    fig7 = sub.add_parser("figure7", help="regenerate the case-study table")
    _add_engine_flags(fig7)

    fig8 = sub.add_parser("figure8", help="regenerate the synthetic sweep")
    fig8.add_argument("--apps", type=int, default=100)
    fig8.add_argument("--seed", type=int, default=7)
    _add_engine_flags(fig8)

    fig6 = sub.add_parser("figure6", help="regenerate the theory table")
    fig6.add_argument("--junctions", type=int, default=3)
    fig6.add_argument("--branches", type=int, default=4)
    fig6.add_argument("--chain", type=int, default=3)
    fig6.add_argument("--causal", type=int, default=4)
    fig6.add_argument("--s1", type=int, default=2)
    fig6.add_argument("--s2", type=int, default=2)

    sub.add_parser("example3", help="the Example 3 search-space table")

    trace = sub.add_parser("trace", help="dump one execution trace as JSON")
    trace.add_argument("workload", choices=REGISTRY.names())
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", default=None)

    return parser


_COMMANDS = {
    "list": _cmd_list,
    "debug": _cmd_debug,
    "figure7": _cmd_figure7,
    "figure8": _cmd_figure8,
    "figure6": _cmd_figure6,
    "example3": _cmd_example3,
    "trace": _cmd_trace,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
