"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the bundled case-study workloads with their paper references.
``run <SPEC.toml|SPEC.json> [--json]``
    Execute a declarative :class:`~repro.api.spec.RunSpec` file — the
    same front door the library exposes as ``repro.run(spec)``.  With
    ``--json`` the versioned report schema is printed instead of text.
``debug <workload> [--approach AID] [--seed N]``
    Run the full AID pipeline on a case study and print the explanation.
``figure7`` / ``figure8`` / ``figure6`` / ``example3``
    Regenerate the paper's evaluation artifacts as text tables.
``trace <workload> --seed N [-o FILE]``
    Run one execution and dump its trace as JSON (Figure 9(b) schema).
``corpus init|ingest|stats|shard-stats|analyze|compact|reshard``
    Manage a persistent trace-corpus store: content-addressed ingestion
    (dedup by trace fingerprint), corpus and per-shard statistics, the
    offline analysis phase with memoized predicate evaluation
    (``analyze --jobs N`` runs one evaluation task per shard; a warm
    corpus also reuses its persisted predicate suite and skips extractor
    rediscovery), compaction of shadowed matrix rows, and in-place
    resharding (``reshard DIR --width W``) preserving every memoized
    pair.  ``debug --corpus DIR`` then debugs from the stored logs
    instead of re-running the collection sweep.  ``stats --json``
    emits a versioned machine-readable payload.
``obs summary|compare|spans|index|tail``
    Inspect durable run telemetry: the schema-versioned JSONL run logs
    that ``run``/``debug``/``corpus analyze`` write under ``--log-dir``
    (see :mod:`repro.obs`), the ASCII span tree of one run, and the
    cross-run ``index.json`` catalog.
``serve [--host H] [--port P] [--log-dir DIR]``
    The live telemetry daemon: ``POST /v1/runs`` accepts RunSpec JSON
    and returns the versioned report, ``GET /v1/runs/{id}/events``
    streams the run live as SSE/NDJSON, ``/healthz`` and ``/metrics``
    expose service state (see :mod:`repro.serve`).
``submit SPEC [--server URL] [--follow]``
    The client half: POST a spec file to a running daemon and print the
    report; ``--follow`` streams live progress to stderr first.

Every subcommand that runs the pipeline builds a
:class:`~repro.api.spec.RunSpec` internally and dispatches through
:func:`repro.api.run`; the intervention-heavy commands (``debug``,
``figure7``, ``figure8``, ``run``) share one engine-flag code path
(``--jobs/--backend/--cache``, see
:meth:`~repro.api.spec.EngineSpec.add_flags`) and the pipeline
commands share one observability-flag code path
(``--log-dir/--progress/--metrics/--profile``, see
:func:`repro.obs.cli.add_obs_flags`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import TYPE_CHECKING, Optional, Sequence

from .api import registry as registries
from .api.events import EventLog
from .api.runner import run as api_run
from .api.spec import (
    AnalysisSpec,
    CollectionSpec,
    CorpusSpec,
    EngineSpec,
    RunSpec,
    SpecError,
    WorkloadSpec,
)
from .core.variants import Approach
from .corpus import CorpusError, IncrementalPipeline, TraceStore
from .corpus.store import STORE_VERSION
from .harness.experiments import (
    example3_report,
    figure6_report,
    figure7,
    figure7_report,
    figure8,
    figure8_report,
)
from .harness.tables import render_table
from .obs.cli import add_obs_flags, add_obs_subcommand, cmd_obs, obs_from_args
from .obs.metrics import render_snapshot
from .sim.schedule import ReplayStrategy, Schedule, ScheduleError
from .sim.scheduler import Simulator
from .sim.serialize import trace_to_json
from .workloads.common import REGISTRY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .exec import ExecutionEngine


def _spec_exit(exc: SpecError, context: str = "") -> "SystemExit":
    """A :class:`SpecError` as the CLI's flag-style error message."""
    if exc.path:
        flag = "--" + exc.path.split(".")[-1]
        return SystemExit(f"repro: {flag}: {exc.detail}")
    prefix = f"repro: {context}: " if context else "repro: "
    return SystemExit(f"{prefix}{exc.detail}")


def _build_engine(spec: RunSpec) -> ExecutionEngine:
    """Build just the engine of a spec (figure sweeps drive many
    sessions through one engine, outside :func:`repro.api.run`)."""
    try:
        return spec.engine.build()
    except SpecError as exc:
        raise _spec_exit(exc) from exc


def _print_engine_summary(log: EventLog) -> None:
    """The engine accounting block every intervention command prints."""
    finished = log.first("engine-finished")
    if finished is not None:
        print()
        print(finished.summary)


def _print_session_report(
    args: argparse.Namespace,
    log: EventLog,
    report,
    workload_name: Optional[str] = None,
) -> None:
    """The ``debug``-style text rendering of a session report."""
    loaded = log.first("corpus-loaded")
    evaluated = log.first("logs-evaluated")
    if loaded is not None and evaluated is not None:
        print(
            f"corpus   : {loaded.n_traces} stored traces "
            f"({loaded.n_pass} pass / {loaded.n_fail} fail); "
            f"{evaluated.fresh} fresh predicate "
            f"evaluations, {evaluated.memoized} memoized"
        )
    workload = REGISTRY.build(workload_name) if workload_name else None
    if workload is not None:
        print(f"workload : {workload.name} ({workload.paper.github_issue})")
    print(f"approach : {report.approach.value}")
    paper_note = (
        f" (paper: {workload.paper.sd_predicates})" if workload else ""
    )
    print(
        f"predicates: {report.n_sd_predicates} fully discriminative"
        f"{paper_note}"
    )
    print(
        f"rounds   : {report.n_rounds} intervention rounds, "
        f"{report.discovery.n_executions} executions"
    )
    print()
    print(report.explanation.render())
    if getattr(args, "dot", False):
        print()
        print(report.dag.to_dot())


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for name in REGISTRY.names():
        workload = REGISTRY.build(name)
        rows.append(
            [
                name,
                workload.paper.github_issue,
                workload.description,
            ]
        )
    print(render_table(["workload", "issue", "bug"], rows))
    return 0


def _run_spec(
    spec: RunSpec, log: EventLog, corpus_flag: bool = False, obs=None
):
    """Dispatch through :func:`repro.api.run` with CLI error wrapping."""
    try:
        return api_run(spec, observers=[log], obs=obs)
    except SpecError as exc:
        raise _spec_exit(exc) from exc
    except CorpusError as exc:
        _print_engine_summary(log)
        flag = "--corpus" if corpus_flag else "corpus"
        raise SystemExit(f"repro: {flag}: {exc}") from exc


def _finish_obs(args: argparse.Namespace, obs) -> None:
    """The post-run observability epilogue: where the log landed, and
    the ``--metrics`` snapshot — on stderr, so ``--json`` stdout stays
    machine-clean."""
    if obs is None:
        return
    if obs.log_path is not None:
        print(f"run log  : {obs.log_path}", file=sys.stderr)
    if getattr(args, "metrics", False):
        print(render_snapshot(obs.final_snapshot()), file=sys.stderr)


def _coerce_param(raw: str):
    """A ``--strategy-param`` value as the scalar it spells."""
    if raw.lower() in ("true", "false"):
        return raw.lower() == "true"
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    return raw


def _parse_strategy_params(pairs: Optional[Sequence[str]]) -> dict:
    """Repeated ``KEY=VALUE`` flags as a strategy-params dict."""
    params: dict = {}
    for pair in pairs or ():
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"repro: --strategy-param: expected KEY=VALUE, got {pair!r}"
            )
        params[key] = _coerce_param(raw)
    return params


def _cmd_debug(args: argparse.Namespace) -> int:
    spec = RunSpec(
        workload=WorkloadSpec(name=args.workload),
        collection=CollectionSpec(
            n_success=args.runs,
            n_fail=args.runs,
            strategy=args.strategy,
            strategy_params=(
                _parse_strategy_params(args.strategy_param) or None
            ),
        ),
        engine=EngineSpec.from_args(args),
        corpus=CorpusSpec(dir=args.corpus),
        analysis=AnalysisSpec(approach=args.approach, rng_seed=args.seed),
    )
    log = EventLog()
    obs = obs_from_args(args)
    report = _run_spec(spec, log, corpus_flag=True, obs=obs)
    _print_session_report(args, log, report, workload_name=args.workload)
    _print_engine_summary(log)
    _finish_obs(args, obs)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        spec = RunSpec.load(args.spec)
    except SpecError as exc:
        raise SystemExit(f"repro: run: {exc}") from exc
    log = EventLog()
    obs = obs_from_args(args)
    report = _run_spec(spec, log, obs=obs)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        _finish_obs(args, obs)
        return 0
    if report.discovery is not None:
        _print_session_report(
            args, log, report,
            workload_name=spec.workload.name if spec.workload else None,
        )
        _print_engine_summary(log)
    else:
        _print_analysis_report(args, log, report)
    _finish_obs(args, obs)
    return 0


def _cmd_figure7(args: argparse.Namespace) -> int:
    spec = RunSpec(engine=EngineSpec.from_args(args))
    engine = _build_engine(spec)
    try:
        results = figure7(engine=engine)
        print(figure7_report(results))
    finally:
        # An interrupted sweep still persists the outcomes it paid for.
        print()
        print(engine.finish())
    return 0 if all(r.matches_ground_truth for r in results) else 1


def _cmd_figure8(args: argparse.Namespace) -> int:
    spec = RunSpec(
        engine=EngineSpec.from_args(args),
        analysis=AnalysisSpec(rng_seed=args.seed),
    )
    engine = _build_engine(spec)
    try:
        result = figure8(
            apps_per_setting=args.apps,
            seed=spec.analysis.rng_seed,
            engine=engine,
        )
        print(figure8_report(result))
        print(f"\napps per setting: {result.n_apps}; "
              f"exact recovery everywhere: {result.all_exact}")
    finally:
        print()
        print(engine.finish())
    return 0 if result.all_exact else 1


def _cmd_figure6(args: argparse.Namespace) -> int:
    print(figure6_report(args.junctions, args.branches, args.chain,
                         args.causal, args.s1, args.s2))
    return 0


def _cmd_example3(args: argparse.Namespace) -> int:
    print(example3_report())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    workload = REGISTRY.build(args.workload)
    seed = args.seed
    if args.schedule is not None:
        try:
            schedule = Schedule.load(args.schedule)
        except ScheduleError as exc:
            raise SystemExit(f"repro: --schedule: {exc}") from exc
        if schedule.program != workload.program.name:
            raise SystemExit(
                f"repro: --schedule: {args.schedule} records program "
                f"{schedule.program!r}, not {workload.program.name!r}"
            )
        strategy = ReplayStrategy(schedule=schedule)
        seed = schedule.seed  # the recording pins its own seed
        result = Simulator(workload.program).run(seed, strategy=strategy)
        if strategy.diverged:
            print(
                f"repro: warning: replay of {args.schedule} diverged "
                "(program or interventions changed since the recording)",
                file=sys.stderr,
            )
    else:
        result = Simulator(workload.program).run(seed)
    text = trace_to_json(result.trace, indent=2)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        status = "FAILED" if result.failed else "ok"
        print(f"wrote {args.out} (seed {seed}, {status})")
    else:
        print(text)
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from .explore import ExplorationDriver, ExploreConfig

    target = args.target
    strategy = args.strategy
    params = _parse_strategy_params(args.strategy_param)
    start_seed = args.seed
    max_steps = None
    if target in REGISTRY:
        workload_name = target
    else:
        try:
            spec = RunSpec.load(target)
        except SpecError as exc:
            raise SystemExit(f"repro: explore: {exc}") from exc
        if spec.workload is None or not spec.workload.name:
            raise SystemExit(
                f"repro: explore: {target} names no workload"
            )
        problems = spec.workload.problems() + spec.collection.problems()
        if problems:
            raise SystemExit(f"repro: explore: {problems[0]}")
        workload_name = spec.workload.name
        max_steps = spec.collection.max_steps
        if strategy is None and spec.collection.strategy is not None:
            strategy = spec.collection.strategy
            params = dict(spec.collection.strategy_params or {}) | params
        if start_seed is None:
            start_seed = spec.collection.start_seed
    workload = REGISTRY.build(workload_name)

    store = None
    if args.corpus is not None:
        try:
            from pathlib import Path as _Path

            if (_Path(args.corpus) / "manifest.json").exists():
                store = TraceStore.open(args.corpus)
            else:
                store = TraceStore.init(
                    args.corpus, program=workload.program.name
                )
        except CorpusError as exc:
            raise SystemExit(f"repro: --corpus: {exc}") from exc

    log = EventLog()
    from .api.events import EventBus

    bus = EventBus([log])
    obs = obs_from_args(args)
    if obs is not None:
        obs.install(bus)
    config = ExploreConfig(
        budget=args.budget,
        strategy=strategy or "random",
        strategy_params=params,
        start_seed=start_seed or 0,
        schedule_dir=args.schedule_dir,
        wave=args.wave,
        jobs=args.jobs,
        backend=args.backend,
        partial_order=not args.no_partial_order,
        **({"max_steps": max_steps} if max_steps is not None else {}),
    )
    try:
        result = ExplorationDriver(
            workload.program, config=config, store=store, bus=bus
        ).run()
    except (registries.RegistryError, ScheduleError, ValueError) as exc:
        raise SystemExit(f"repro: explore: {exc}") from exc
    finally:
        if obs is not None:
            obs.close()
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        _finish_obs(args, obs)
        return 0
    print(
        f"explored {result.executions} executions of "
        f"{workload.program.name} under {result.strategy}"
    )
    print(
        f"coverage : {result.coverage_edges} handoff edges, "
        f"{result.distinct_signatures} distinct schedules, "
        f"frontier {result.frontier_size}"
    )
    print(
        f"failures : {result.n_failed} failing executions, "
        f"{result.distinct_failing_signatures} distinct failing schedules"
    )
    if result.partial_order:
        print(
            f"pruning  : {result.distinct_canonical} equivalence "
            f"classes, {result.pruned_equivalent} equivalent "
            f"executions pruned from the search"
        )
    for failure in result.failures:
        verified = (
            "replay ok"
            if failure.replay_verified
            else (
                "REPLAY DIVERGED"
                if failure.replay_verified is False
                else "unverified"
            )
        )
        where = f"  -> {failure.path}" if failure.path else ""
        print(
            f"  {failure.signature}  seed {failure.seed}  "
            f"{failure.failure_signature}  ({verified}){where}"
        )
    if store is not None:
        print(
            f"corpus   : {args.corpus} now {store.n_pass} pass / "
            f"{store.n_fail} fail "
            f"(+{result.ingested_pass}/+{result.ingested_fail} this run)"
        )
    _finish_obs(args, obs)
    return 0


def _build_pipeline(args: argparse.Namespace) -> IncrementalPipeline:
    """Open the store and wire the analysis pipeline, with the live
    program attached when the manifest names a bundled workload (needed
    for the Section 3.3 safe-intervention filter)."""
    store = TraceStore.open(args.dir)
    workload = registries.workload_for_program(store.program)
    return IncrementalPipeline(
        store, program=workload.program if workload else None
    )


def _cmd_corpus_init(args: argparse.Namespace) -> int:
    program = None
    if args.workload is not None:
        program = REGISTRY.build(args.workload).program.name
    store = TraceStore.init(
        args.dir, program=program, shard_width=args.shard_width
    )
    pinned = f" (pinned to {store.program})" if store.program else ""
    n_shards = 16 ** store.shard_width if store.shard_width else 1
    print(
        f"initialized empty corpus at {args.dir}{pinned} "
        f"(shard width {store.shard_width}: up to {n_shards} shards)"
    )
    return 0


def _cmd_corpus_ingest(args: argparse.Namespace) -> int:
    store = TraceStore.open(args.dir)
    added = duplicates = 0
    try:
        for path in args.files:
            try:
                with open(path) as handle:
                    payload = json.load(handle)
            except OSError as exc:
                raise SystemExit(f"repro: corpus: cannot read {path}: {exc}")
            except json.JSONDecodeError as exc:
                raise SystemExit(
                    f"repro: corpus: {path} is not a trace file: {exc}"
                )
            fp, was_added = store.ingest_payload(payload)
            tag = "added" if was_added else "duplicate"
            print(f"  {fp}  {tag}  {path}")
            added += was_added
            duplicates += not was_added
        if args.runs:
            from .harness.runner import collect

            if store.program is None:
                raise SystemExit(
                    "repro: corpus ingest --runs needs a program: ingest a "
                    "trace file first or init with --workload"
                )
            workload = registries.workload_for_program(store.program)
            if workload is None:
                raise SystemExit(
                    f"repro: corpus program {store.program!r} is not a "
                    "bundled workload; ingest trace files instead"
                )
            start_seed = args.start_seed
            if start_seed is None:
                # Sweep past what the corpus already holds: the simulator
                # is deterministic per seed, so restarting at 0 would
                # only re-collect known traces.
                start_seed = max(
                    (e.seed for e in store.entries.values()), default=-1
                ) + 1
            corpus = collect(
                workload.program,
                n_success=args.runs,
                n_fail=args.runs,
                start_seed=start_seed,
            )
            for trace in corpus.successes + corpus.failures:
                _, was_added = store.ingest(trace)
                added += was_added
                duplicates += not was_added
    finally:
        # A mid-batch failure must not orphan the traces already added.
        store.save()
    print(
        f"ingested {added} new, {duplicates} duplicate; corpus now "
        f"{store.n_pass} pass / {store.n_fail} fail"
    )
    return 0


def _cmd_corpus_stats(args: argparse.Namespace) -> int:
    store = TraceStore.open(args.dir)
    if args.json:
        print(json.dumps(store.stats_dict(), indent=2, sort_keys=True))
        return 0
    print(f"corpus   : {args.dir}")
    print(f"program  : {store.program or '(unpinned)'}")
    print(f"traces   : {len(store)} ({store.n_pass} pass / {store.n_fail} fail)")
    print(
        f"shards   : {len(store.shard_ids)} populated "
        f"(width {store.shard_width})"
    )
    for signature, count in sorted(store.signature_counts().items()):
        print(f"  failure signature {signature}: {count}")
    schedules = store.schedule_counts()
    if any(schedules.values()):
        print(
            f"schedules: {schedules['fail']} distinct failing / "
            f"{schedules['pass']} distinct passing interleavings recorded"
        )
        for signature, count in sorted(
            store.schedule_counts_by_signature().items()
        ):
            print(f"  failure signature {signature}: {count} schedules")
    matrix = store.eval_matrix()
    if matrix.n_traces:
        print(
            f"eval matrix: {matrix.n_pids} predicates x "
            f"{matrix.n_traces} traces, {matrix.n_pairs} pairs "
            f"memoized ({matrix.coverage():.0%} of the matrix)"
        )
    else:
        print("eval matrix: empty (run `repro corpus analyze`)")
    return 0


def _cmd_corpus_shard_stats(args: argparse.Namespace) -> int:
    store = TraceStore.open(args.dir)
    matrix = store.eval_matrix()
    matrix.load_all()
    rows = []
    for sid in store.shard_ids:
        entries = store.shard_entries(sid)
        n_fail = sum(1 for e in entries.values() if e.failed)
        shard_matrix = matrix.shard(sid)
        shard_dir = store.shard_dir(sid)
        size = sum(
            p.stat().st_size for p in shard_dir.rglob("*") if p.is_file()
        )
        table = store.columnar_table(sid, build=False)
        if table is not None:
            columnar = f"{table.n_calls} calls"
        elif store.columnar_path(sid).exists():
            columnar = "stale"
        else:
            columnar = "-"
        rows.append(
            [
                sid,
                str(len(entries)),
                f"{len(entries) - n_fail}/{n_fail}",
                str(shard_matrix.n_pairs),
                f"{size:,}",
                columnar,
            ]
        )
    print(
        f"corpus {args.dir}: {len(store)} traces across "
        f"{len(store.shard_ids)} shards (width {store.shard_width})"
    )
    print(
        render_table(
            ["shard", "traces", "pass/fail", "memo pairs", "bytes",
             "columnar"],
            rows,
        )
    )
    return 0


def _cmd_corpus_migrate_columnar(args: argparse.Namespace) -> int:
    store = TraceStore.open(args.dir)  # v1/v2 manifests migrate here
    rows = []
    fresh = 0
    for sid in store.shard_ids:
        table = store.columnar_table(sid)
        if table is None:
            rows.append([sid, "-", "-", "unsupported payloads"])
            continue
        fresh += 1
        size = store.columnar_path(sid).stat().st_size
        rows.append([sid, str(table.n_traces), str(table.n_calls), f"{size:,}"])
    print(
        f"corpus {args.dir}: store version {STORE_VERSION}, columnar "
        f"tables fresh for {fresh}/{len(store.shard_ids)} shards"
    )
    if rows:
        print(render_table(["shard", "traces", "calls", "bytes"], rows))
    suite = store.load_suite(program=store.program)
    if suite is not None:
        covered = suite.columnar_pids()
        print(
            f"suite coverage: {len(covered)}/{len(suite)} predicates "
            f"sweep columnar (the rest use the per-trace path)"
        )
    return 0


def _print_analysis_report(
    args: argparse.Namespace, log: EventLog, report
) -> None:
    """The ``corpus analyze``-style text rendering."""
    n_logs = (report.n_success or 0) + (report.n_fail or 0)
    print(
        f"analyzed {n_logs} stored logs "
        f"(failure signature {report.signature})"
    )
    print(
        f"predicates: {len(report.suite)} extracted, "
        f"{len(report.fully_discriminative)} fully discriminative"
    )
    for pid in report.fully_discriminative:
        print(f"  {pid}: {report.dag.describe(pid)}")
    print(
        f"AC-DAG   : {len(report.dag)} nodes, "
        f"{report.dag.graph.number_of_edges()} edges "
        f"(over {report.dag.n_failed_logs} failed logs)"
    )
    evaluated = log.first("logs-evaluated")
    if evaluated is not None:
        print(
            f"evaluation: {evaluated.fresh} fresh, "
            f"{evaluated.memoized} answered from the matrix"
        )
    frozen = log.first("suite-frozen")
    if frozen is not None and frozen.source == "persisted":
        print(
            f"suite    : {frozen.n_predicates} predicates reused from "
            "the persisted freeze (extractor rediscovery skipped)"
        )
    if getattr(args, "dot", False):
        print()
        print(report.dag.to_dot())


def _cmd_corpus_analyze(args: argparse.Namespace) -> int:
    spec = RunSpec(
        corpus=CorpusSpec(dir=args.dir, mode="incremental"),
        engine=EngineSpec(jobs=args.jobs, backend=args.backend),
    )
    log = EventLog()
    obs = obs_from_args(args)
    report = _run_spec(spec, log, obs=obs)
    _print_analysis_report(args, log, report)
    _finish_obs(args, obs)
    return 0


def _cmd_corpus_compact(args: argparse.Namespace) -> int:
    pipeline = _build_pipeline(args)
    pipeline.bootstrap()
    stats = pipeline.compact()
    pipeline.store.save()
    print(
        f"compacted {args.dir}: dropped {stats.dropped_rows} shadowed "
        f"predicate rows and {stats.dropped_columns} evicted trace columns"
    )
    print(
        f"matrix bytes: {stats.bytes_before:,} -> {stats.bytes_after:,} "
        f"({stats.bytes_reclaimed:,} reclaimed)"
    )
    return 0


def _cmd_corpus_reshard(args: argparse.Namespace) -> int:
    store = TraceStore.open(args.dir)
    width_before = store.shard_width
    stats = store.reshard(args.width)
    if width_before == args.width:
        print(
            f"corpus {args.dir} already has shard width {args.width}; "
            "nothing to do"
        )
        return 0
    print(
        f"resharded {args.dir}: width {width_before} -> {args.width}, "
        f"{stats['n_traces']} traces across "
        f"{stats['shards_before']} -> {stats['shards_after']} shards"
    )
    print(
        f"eval matrix: {stats['pairs_preserved']} memoized pairs preserved"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ReproServer

    try:
        server = ReproServer(
            log_dir=args.log_dir,
            host=args.host,
            port=args.port,
            verbose=args.verbose,
        )
    except OSError as exc:
        raise SystemExit(
            f"repro: serve: cannot bind {args.host}:{args.port}: {exc}"
        ) from exc
    print(
        f"repro serve: listening on {server.url} "
        f"(run logs in {server.registry.log_dir})",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    finally:
        server.server_close()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .serve import submit

    return submit(args.server, args.spec, follow=args.follow)


def _cmd_corpus(args: argparse.Namespace) -> int:
    handlers = {
        "init": _cmd_corpus_init,
        "ingest": _cmd_corpus_ingest,
        "stats": _cmd_corpus_stats,
        "shard-stats": _cmd_corpus_shard_stats,
        "analyze": _cmd_corpus_analyze,
        "compact": _cmd_corpus_compact,
        "reshard": _cmd_corpus_reshard,
        "migrate-columnar": _cmd_corpus_migrate_columnar,
    }
    try:
        return handlers[args.corpus_command](args)
    except CorpusError as exc:
        raise SystemExit(f"repro: corpus: {exc}") from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Causality-Guided Adaptive Interventional Debugging (AID)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list bundled case-study workloads")

    runp = sub.add_parser(
        "run",
        help="execute a declarative RunSpec file (TOML or JSON)",
    )
    runp.add_argument("spec", metavar="SPEC",
                      help="path to a RunSpec .toml/.json file")
    runp.add_argument(
        "--json", action="store_true",
        help="print the versioned report JSON instead of text",
    )
    runp.add_argument("--dot", action="store_true",
                      help="also print the AC-DAG in Graphviz format")
    add_obs_flags(runp)

    debug = sub.add_parser("debug", help="debug a case study with AID")
    debug.add_argument("workload", choices=REGISTRY.names())
    debug.add_argument(
        "--approach",
        default="AID",
        choices=[a.value for a in Approach],
    )
    debug.add_argument("--runs", type=int, default=50,
                       help="successful/failed executions to collect")
    debug.add_argument("--seed", type=int, default=0)
    debug.add_argument("--dot", action="store_true",
                       help="also print the AC-DAG in Graphviz format")
    debug.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="debug from the stored logs in a corpus directory instead "
        "of re-running the collection sweep (predicate evaluation is "
        "memoized across invocations)",
    )
    debug.add_argument(
        "--strategy",
        default=None,
        choices=registries.strategies.names(),
        help="scheduler strategy for collection and intervention "
        "re-execution (default: the seeded-uniform picker)",
    )
    debug.add_argument(
        "--strategy-param",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="strategy constructor parameter (repeatable), e.g. "
        "--strategy-param depth=3",
    )
    EngineSpec.add_flags(debug)
    add_obs_flags(debug)

    fig7 = sub.add_parser("figure7", help="regenerate the case-study table")
    EngineSpec.add_flags(fig7)

    fig8 = sub.add_parser("figure8", help="regenerate the synthetic sweep")
    fig8.add_argument("--apps", type=int, default=100)
    fig8.add_argument("--seed", type=int, default=7)
    EngineSpec.add_flags(fig8)

    fig6 = sub.add_parser("figure6", help="regenerate the theory table")
    fig6.add_argument("--junctions", type=int, default=3)
    fig6.add_argument("--branches", type=int, default=4)
    fig6.add_argument("--chain", type=int, default=3)
    fig6.add_argument("--causal", type=int, default=4)
    fig6.add_argument("--s1", type=int, default=2)
    fig6.add_argument("--s2", type=int, default=2)

    sub.add_parser("example3", help="the Example 3 search-space table")

    trace = sub.add_parser("trace", help="dump one execution trace as JSON")
    trace.add_argument("workload", choices=REGISTRY.names())
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "-o", "--out", default=None, metavar="FILE",
        help="write the trace JSON to FILE instead of stdout "
        "(handy for building corpora: repro corpus ingest DIR FILE)",
    )
    trace.add_argument(
        "--schedule", default=None, metavar="FILE",
        help="replay a recorded schedule file (from `repro explore "
        "--schedule-dir`) instead of running a fresh seed; the "
        "recording pins the seed, so --seed is ignored",
    )

    explore = sub.add_parser(
        "explore",
        help="coverage-guided schedule-space exploration: fuzz "
        "interleavings, record replayable schedules for every novel "
        "failure, optionally ingest them into a corpus",
    )
    explore.add_argument(
        "target", metavar="TARGET",
        help="a workload name (see `repro list`) or a RunSpec "
        ".toml/.json file (its workload and collection.strategy apply)",
    )
    explore.add_argument(
        "--budget", type=int, default=200, metavar="N",
        help="executions to spend (default 200)",
    )
    explore.add_argument(
        "--strategy", default=None,
        choices=registries.strategies.names(),
        help="strategy for fresh (non-mutated) executions (default "
        "random, or the spec's collection.strategy)",
    )
    explore.add_argument(
        "--strategy-param",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="strategy constructor parameter (repeatable), e.g. "
        "--strategy-param depth=3",
    )
    explore.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="ingest novel traces into this corpus directory "
        "(initialized if empty; analysis views patch incrementally "
        "once both labels exist)",
    )
    explore.add_argument(
        "--schedule-dir", default=None, metavar="DIR",
        help="save one replayable <signature>.json schedule per novel "
        "failure (replay with `repro trace W --schedule FILE`)",
    )
    explore.add_argument(
        "--seed", type=int, default=None,
        help="first execution seed (default 0, or the spec's "
        "collection.start_seed)",
    )
    explore.add_argument(
        "--wave", type=int, default=16, metavar="N",
        help="executions planned per dispatch wave (default 16); a "
        "search knob, fixed independently of --jobs so results never "
        "depend on the parallelism",
    )
    explore.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker count for wave execution (default 1); a pure "
        "throughput knob — the payload is byte-identical for any value",
    )
    explore.add_argument(
        "--backend", default=None,
        choices=("serial", "thread", "process"),
        help="execution backend (default: serial when --jobs 1, "
        "threads otherwise); never affects the payload",
    )
    explore.add_argument(
        "--no-partial-order", action="store_true",
        help="disable Mazurkiewicz-class pruning: dedupe frontier "
        "admission, mutation energy, and pass-ingestion by exact "
        "interleaving instead of equivalence class",
    )
    explore.add_argument(
        "--json", action="store_true",
        help="print the versioned exploration payload instead of text",
    )
    add_obs_flags(explore)

    corpus = sub.add_parser(
        "corpus", help="manage a persistent trace-corpus store"
    )
    csub = corpus.add_subparsers(dest="corpus_command", required=True)

    cinit = csub.add_parser("init", help="create an empty corpus directory")
    cinit.add_argument("dir")
    cinit.add_argument(
        "--workload", default=None, choices=REGISTRY.names(),
        help="pin the corpus to one workload's program up front",
    )
    cinit.add_argument(
        "--shard-width", type=int, default=2, choices=range(0, 5),
        metavar="W",
        help="hex chars of the trace fingerprint used as the shard id "
        "(default 2: up to 256 shards; 0 disables sharding)",
    )

    cingest = csub.add_parser(
        "ingest",
        help="add trace JSON files (content-addressed: duplicates are "
        "stored once)",
    )
    cingest.add_argument("dir")
    cingest.add_argument("files", nargs="*", metavar="FILE",
                         help="trace JSON files (from `repro trace -o`)")
    cingest.add_argument(
        "--runs", type=int, default=0, metavar="N",
        help="also run the pinned workload until N successful and N "
        "failed fresh traces are collected and ingested",
    )
    cingest.add_argument(
        "--start-seed", type=int, default=None,
        help="first seed for --runs (default: continue past the highest "
        "seed already in the corpus)",
    )

    cstats = csub.add_parser("stats", help="corpus and eval-matrix summary")
    cstats.add_argument("dir")
    cstats.add_argument(
        "--json", action="store_true",
        help="print a versioned machine-readable stats payload instead "
        "of text (for service health checks)",
    )

    cshards = csub.add_parser(
        "shard-stats",
        help="per-shard breakdown: traces, labels, memoized pairs, bytes, "
        "columnar-table freshness",
    )
    cshards.add_argument("dir")

    cmigrate = csub.add_parser(
        "migrate-columnar",
        help="migrate the store to v3 and build every shard's columnar "
        "trace table eagerly (idempotent; analyze otherwise builds them "
        "lazily)",
    )
    cmigrate.add_argument("dir")

    canalyze = csub.add_parser(
        "analyze",
        help="offline phase over the stored logs: predicates -> SD -> "
        "AC-DAG, with evaluation memoized in the corpus (one task per "
        "shard with --jobs) and the frozen suite persisted for warm "
        "restarts",
    )
    canalyze.add_argument("dir")
    canalyze.add_argument("--dot", action="store_true",
                          help="also print the AC-DAG in Graphviz format")
    canalyze.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="evaluate corpus shards in parallel on N workers (the "
        "merged result is identical for any job count)",
    )
    canalyze.add_argument(
        "--backend", default=None, choices=registries.backends.names(),
        help="where shard evaluation runs (default serial; --jobs N>1 "
        "implies thread)",
    )
    add_obs_flags(canalyze)

    ccompact = csub.add_parser(
        "compact",
        help="reclaim eval-matrix rows shadowed by predicate drift and "
        "columns of evicted traces",
    )
    ccompact.add_argument("dir")

    creshard = csub.add_parser(
        "reshard",
        help="rewrite the corpus under a new shard width, in place, "
        "preserving every memoized (predicate, trace) pair",
    )
    creshard.add_argument("dir")
    creshard.add_argument(
        "--width", type=int, required=True, choices=range(0, 5),
        metavar="W",
        help="new shard width (hex chars of the fingerprint, 0-4; "
        "0 disables sharding)",
    )

    add_obs_subcommand(sub)

    serve = sub.add_parser(
        "serve",
        help="run the live telemetry daemon: HTTP run submission, SSE "
        "event streaming, health/metrics endpoints",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8642,
        help="bind port (default 8642; 0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--log-dir", default="runs", metavar="DIR",
        help="where per-run JSONL logs and the cross-run index live "
        "(default: runs)",
    )
    serve.add_argument(
        "--verbose", action="store_true",
        help="log one stderr line per HTTP request",
    )

    submitp = sub.add_parser(
        "submit",
        help="POST a RunSpec file to a running `repro serve` daemon and "
        "print the versioned report",
    )
    submitp.add_argument("spec", metavar="SPEC",
                         help="path to a RunSpec .toml/.json file")
    submitp.add_argument(
        "--server", default="http://127.0.0.1:8642", metavar="URL",
        help="daemon base URL (default http://127.0.0.1:8642)",
    )
    submitp.add_argument(
        "--follow", action="store_true",
        help="submit asynchronously and stream the run's event feed to "
        "stderr while it executes (report still lands on stdout)",
    )

    return parser


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "debug": _cmd_debug,
    "figure7": _cmd_figure7,
    "figure8": _cmd_figure8,
    "figure6": _cmd_figure6,
    "example3": _cmd_example3,
    "trace": _cmd_trace,
    "explore": _cmd_explore,
    "corpus": _cmd_corpus,
    "obs": cmd_obs,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
