"""Execution-trace schema: the contract between simulator and AID core.

The paper's instrumentation (Appendix A, Figure 9b) records, per executed
method: start/end time, thread id, ids of accessed objects with access
type, return value, and whether it threw an exception.  AID's predicate
extraction consumes only this trace — it never looks inside the program.
This module defines exactly that schema for the simulator.

A trace is append-only during execution and post-processed once into
:class:`MethodExecution` records (the "method execution signature list"
of Figure 9b) by :meth:`ExecutionTrace.method_executions`.

Reading is index-backed: the first read after a write builds one cached
index (start-time order, by-key map, by-method map) that every
subsequent ``lookup`` / ``method_executions`` / ``executions_of`` call
answers in O(1)/O(copy) instead of rescanning or re-sorting the call
list.  Any completed call invalidates the index, so interleaved
record/read sequences stay correct — the evaluation kernel
(:mod:`repro.core.evalkernel`) leans on this contract.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Mapping, Optional


class AccessType(str, Enum):
    READ = "R"
    WRITE = "W"


@dataclass(frozen=True)
class Access:
    """One read or write of a shared object."""

    obj: str
    access_type: AccessType
    thread: str
    method: str
    call_id: int
    time: int
    lamport: int
    locks_held: frozenset[str]

    @property
    def is_write(self) -> bool:
        return self.access_type is AccessType.WRITE


@dataclass(frozen=True)
class MethodExecution:
    """One completed (or crashed) invocation of a simulated method.

    ``occurrence`` is the 0-based index of this invocation among all
    invocations of ``method`` by the same thread, in program order.  The
    paper maps repeated executions of the same statement to separate
    predicates by relative order of appearance (Section 4); occurrence
    numbers are the simulator's realization of that.
    """

    call_id: int
    method: str
    thread: str
    occurrence: int
    start_time: int
    end_time: int
    start_lamport: int
    end_lamport: int
    parent_call_id: Optional[int]
    return_value: object
    exception: Optional[str]
    accesses: tuple[Access, ...] = ()
    #: True when a skip-body intervention replaced the method's body.
    body_skipped: bool = False

    @property
    def duration(self) -> int:
        return self.end_time - self.start_time

    @property
    def failed(self) -> bool:
        return self.exception is not None

    @property
    def key(self) -> "MethodKey":
        return MethodKey(self.method, self.thread, self.occurrence)

    def overlaps(self, other: "MethodExecution") -> bool:
        """Whether the two method windows overlap in virtual time."""
        return self.start_time < other.end_time and other.start_time < self.end_time


@dataclass(frozen=True, order=True)
class MethodKey:
    """Stable cross-execution identity of a method invocation."""

    method: str
    thread: str
    occurrence: int

    def __str__(self) -> str:
        return f"{self.thread}:{self.method}#{self.occurrence}"


@dataclass(frozen=True)
class FailureInfo:
    """Signature of a failed execution.

    Failures with the same signature are assumed to share a root cause
    (paper Section 5.1: failure trackers group by signature); AID runs
    against one signature at a time.
    """

    mode: str  # SimulationFault.* value
    exception: Optional[str]  # simulated exception kind, if a crash
    method: Optional[str]  # method in which the failure surfaced
    thread: Optional[str]
    time: int = 0

    @property
    def signature(self) -> str:
        parts = [self.mode]
        if self.exception:
            parts.append(self.exception)
        if self.method:
            parts.append(self.method)
        return "/".join(parts)


class _TraceIndex:
    """Derived read structures over a trace's completed calls.

    Built lazily on first read, thrown away on the next write (a
    completed call), so readers never observe a stale view.
    """

    __slots__ = ("ordered", "by_key", "by_method")

    def __init__(self, completed: list[MethodExecution]) -> None:
        self.ordered = sorted(completed, key=lambda m: (m.start_time, m.call_id))
        self.by_key: dict[MethodKey, MethodExecution] = {}
        self.by_method: dict[str, list[MethodExecution]] = {}
        for m in self.ordered:
            self.by_key[m.key] = m
            self.by_method.setdefault(m.method, []).append(m)


class ExecutionTrace:
    """Raw event log of one simulated execution."""

    def __init__(self, program_name: str, seed: int) -> None:
        self.program_name = program_name
        self.seed = seed
        self._call_ids = itertools.count()
        self._open_calls: dict[int, dict] = {}
        self._occurrences: dict[tuple[str, str], int] = {}
        self._completed: list[MethodExecution] = []
        self._accesses_by_call: dict[int, list[Access]] = {}
        self._index: Optional[_TraceIndex] = None
        self.failure: Optional[FailureInfo] = None
        self.end_time: int = 0

    # -- recording -----------------------------------------------------

    def begin_call(
        self,
        method: str,
        thread: str,
        time: int,
        lamport: int,
        parent_call_id: Optional[int],
    ) -> int:
        call_id = next(self._call_ids)
        occurrence = self._occurrences.get((thread, method), 0)
        self._occurrences[(thread, method)] = occurrence + 1
        self._open_calls[call_id] = {
            "method": method,
            "thread": thread,
            "occurrence": occurrence,
            "start_time": time,
            "start_lamport": lamport,
            "parent": parent_call_id,
        }
        self._accesses_by_call[call_id] = []
        return call_id

    def peek_occurrence(self, thread: str, method: str) -> int:
        """The occurrence index the *next* call of ``method`` will get."""
        return self._occurrences.get((thread, method), 0)

    def end_call(
        self,
        call_id: int,
        time: int,
        lamport: int,
        return_value: object,
        exception: Optional[str],
        body_skipped: bool = False,
    ) -> MethodExecution:
        info = self._open_calls.pop(call_id)
        record = MethodExecution(
            call_id=call_id,
            method=info["method"],
            thread=info["thread"],
            occurrence=info["occurrence"],
            start_time=info["start_time"],
            end_time=time,
            start_lamport=info["start_lamport"],
            end_lamport=lamport,
            parent_call_id=info["parent"],
            return_value=return_value,
            exception=exception,
            accesses=tuple(self._accesses_by_call.pop(call_id)),
            body_skipped=body_skipped,
        )
        self._completed.append(record)
        self._index = None  # write-invalidate the read index
        return record

    def record_access(self, access: Access) -> None:
        if access.call_id in self._accesses_by_call:
            self._accesses_by_call[access.call_id].append(access)

    def abort_open_calls(self, time: int, lamport: int, exception: str) -> None:
        """Close any still-open frames when a thread dies abruptly."""
        for call_id in sorted(self._open_calls, reverse=True):
            self.end_call(call_id, time, lamport, None, exception)

    def record_failure(self, failure: FailureInfo) -> None:
        # Keep the earliest failure; a crash may cascade.
        if self.failure is None:
            self.failure = failure

    # -- reading -------------------------------------------------------

    @property
    def failed(self) -> bool:
        return self.failure is not None

    def _indexed(self) -> _TraceIndex:
        index = self._index
        if index is None:
            index = self._index = _TraceIndex(self._completed)
        return index

    def method_executions(self) -> list[MethodExecution]:
        """The signature list of Figure 9b, ordered by start time."""
        return list(self._indexed().ordered)

    def executions_of(self, method: str) -> Iterator[MethodExecution]:
        return iter(self._indexed().by_method.get(method, ()))

    def executions_by_key(self) -> Mapping[MethodKey, MethodExecution]:
        """Completed calls keyed by :class:`MethodKey` (keys are unique
        per trace: the occurrence counter disambiguates re-invocations).
        The returned mapping is the live index — treat it as read-only;
        it is replaced wholesale when the trace records another call."""
        return self._indexed().by_key

    def lookup(self, key: MethodKey) -> Optional[MethodExecution]:
        return self._indexed().by_key.get(key)

    def accesses(self) -> Iterator[Access]:
        for m in self._indexed().ordered:
            yield from m.accesses

    def objects_accessed(self) -> set[str]:
        return {a.obj for a in self.accesses()}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        status = f"FAILED({self.failure.signature})" if self.failed else "ok"
        return (
            f"<ExecutionTrace {self.program_name} seed={self.seed} "
            f"{len(self._completed)} calls {status}>"
        )


@dataclass
class ExecutionResult:
    """Outcome of one simulated execution.

    ``schedule`` is the recorded decision list
    (:class:`repro.sim.schedule.Schedule`): replaying it under the same
    ``(program, interventions, seed)`` reproduces ``trace`` exactly.
    """

    trace: ExecutionTrace
    steps: int
    schedule: Optional[object] = None
    #: per-decision resource footprints, parallel to
    #: ``schedule.decisions`` — the independence information
    #: :meth:`~repro.sim.schedule.Schedule.canonical_signature` consumes
    footprints: tuple = ()

    @property
    def failed(self) -> bool:
        return self.trace.failed

    @property
    def failure(self) -> Optional[FailureInfo]:
        return self.trace.failure
