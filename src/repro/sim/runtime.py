"""Shared-state runtime for one simulated execution.

The :class:`Runtime` owns everything threads share: the variable store,
locks (both program locks and injected intervention locks), the virtual
clock, Lamport bookkeeping, the execution trace, and the registry of
completed method invocations (used by order-forcing interventions).

The scheduler (:mod:`repro.sim.scheduler`) drives threads; each primitive
action a thread yields is executed here via :meth:`Runtime.perform`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from .clock import LamportClock, LamportRegistry, VirtualClock
from .errors import LockProtocolError
from .faults import InterventionSet, MethodSelector
from .program import (
    AcquireAction,
    Action,
    JoinAction,
    Program,
    ReadAction,
    ReleaseAction,
    SleepAction,
    SpawnAction,
    WaitCompletedAction,
    WriteAction,
)
from .tracing import Access, AccessType, ExecutionTrace, MethodKey


@dataclass
class Blocked:
    """Signal from :meth:`Runtime.perform` that the thread must wait."""

    reason: str  # "lock" | "join" | "event"
    lock: Optional[str] = None
    thread: Optional[str] = None
    selector: Optional[MethodSelector] = None


class Runtime:
    """Mutable world state for a single execution."""

    def __init__(
        self,
        program: Program,
        interventions: InterventionSet,
        seed: int,
        trace: ExecutionTrace,
    ) -> None:
        self.program = program
        self.interventions = interventions
        self.seed = seed
        self.trace = trace
        self.clock = VirtualClock()
        self.shared: dict[str, Any] = {k: v for k, v in program.shared.items()}
        self.lock_owner: dict[str, Optional[str]] = {}
        self.locks_held: dict[str, list[str]] = {}  # thread -> lock names
        self.lamport: dict[str, LamportClock] = {}
        self.registry = LamportRegistry()
        self.completed: list[MethodKey] = []
        self.finished_threads: set[str] = set()
        self._stacks: dict[str, list[tuple[int, str]]] = {}  # thread -> frames

    # -- thread lifecycle ------------------------------------------------

    def register_thread(self, thread: str, spawned_by: Optional[str]) -> None:
        self.lamport[thread] = LamportClock()
        self.locks_held.setdefault(thread, [])
        self._stacks.setdefault(thread, [])
        if spawned_by is not None:
            self.registry.observe(f"thread:{thread}", self.lamport[thread])

    def thread_finished(self, thread: str) -> None:
        self.finished_threads.add(thread)
        self.registry.stamp(f"thread-done:{thread}", self.lamport[thread])

    def abort_thread_calls(self, thread: str, exception: str) -> None:
        """Close open frames of a crashing thread, innermost first.

        Each unwound frame gets its own tick so the nesting order stays
        visible in end times (inner calls fail strictly before their
        callers), and the process-level failure — recorded by the
        scheduler after this returns — lands at or after the outermost
        frame's end.
        """
        stack = self._stacks.get(thread, [])
        while stack:
            call_id, __ = stack.pop()
            self.clock.advance(1)
            self.trace.end_call(
                call_id, self.clock.now, self.lamport[thread].time, None, exception
            )

    def current_method(self, thread: str) -> Optional[str]:
        stack = self._stacks.get(thread)
        return stack[-1][1] if stack else None

    # -- method tracing ----------------------------------------------------

    def begin_method(self, thread: str, method: str) -> int:
        # Call bookkeeping costs one tick: consecutive method boundaries
        # in a synchronous chain (return → next call, or an exception
        # unwinding through frames) get strictly increasing timestamps,
        # which temporal precedence depends on.
        self.clock.advance(1)
        lamport = self.lamport[thread].tick()
        parent = self._stacks[thread][-1][0] if self._stacks[thread] else None
        call_id = self.trace.begin_call(
            method, thread, self.clock.now, lamport, parent
        )
        self._stacks[thread].append((call_id, method))
        return call_id

    def end_method(
        self,
        thread: str,
        call_id: int,
        return_value: Any,
        exception: Optional[str],
        body_skipped: bool = False,
    ) -> None:
        self.clock.advance(1)  # return bookkeeping (see begin_method)
        lamport = self.lamport[thread].tick()
        record = self.trace.end_call(
            call_id, self.clock.now, lamport, return_value, exception, body_skipped
        )
        frames = self._stacks[thread]
        if frames and frames[-1][0] == call_id:
            frames.pop()
        self.completed.append(record.key)
        self.registry.stamp(f"done:{record.key}", self.lamport[thread])

    def is_completed(self, selector: MethodSelector) -> bool:
        return any(selector.matches_key(key) for key in self.completed)

    # -- primitive actions -------------------------------------------------

    def perform(self, thread: str, action: Action) -> tuple[Any, Optional[Blocked]]:
        """Execute one primitive action for ``thread``.

        Returns ``(result, blocked)``.  If ``blocked`` is not None the
        action did *not* run; the scheduler must retry it once the wait
        condition clears.  Virtual time is owned by the scheduler: the
        action's effects are stamped at the current clock value, and the
        scheduler keeps the thread busy for the action's remaining cost.
        """
        if isinstance(action, AcquireAction):
            owner = self.lock_owner.get(action.lock)
            if owner is not None and owner != thread:
                return None, Blocked(reason="lock", lock=action.lock)
            if owner == thread:
                raise LockProtocolError(
                    f"{thread} re-acquired non-reentrant lock {action.lock!r}"
                )
            self.lock_owner[action.lock] = thread
            self.locks_held[thread].append(action.lock)
            self.registry.observe(f"lock:{action.lock}", self.lamport[thread])
            return None, None

        if isinstance(action, JoinAction):
            if action.thread not in self.finished_threads:
                return None, Blocked(reason="join", thread=action.thread)
            self.registry.observe(
                f"thread-done:{action.thread}", self.lamport[thread]
            )
            return None, None

        if isinstance(action, WaitCompletedAction):
            if not self.is_completed(action.selector):
                return None, Blocked(reason="event", selector=action.selector)
            self.lamport[thread].tick()
            return None, None

        if isinstance(action, ReadAction):
            value = self.shared.get(action.var)
            lamport = self.registry.observe(f"var:{action.var}", self.lamport[thread])
            self._record_access(thread, action.var, AccessType.READ, lamport)
            return value, None

        if isinstance(action, WriteAction):
            self.shared[action.var] = action.value
            lamport = self.registry.stamp(f"var:{action.var}", self.lamport[thread])
            self._record_access(thread, action.var, AccessType.WRITE, lamport)
            return None, None

        if isinstance(action, ReleaseAction):
            if self.lock_owner.get(action.lock) != thread:
                raise LockProtocolError(
                    f"{thread} released lock {action.lock!r} it does not hold"
                )
            self.lock_owner[action.lock] = None
            self.locks_held[thread].remove(action.lock)
            self.registry.stamp(f"lock:{action.lock}", self.lamport[thread])
            return None, None

        if isinstance(action, SleepAction):
            self.lamport[thread].tick()
            return None, None

        if isinstance(action, SpawnAction):
            # The scheduler creates the thread; we only stamp causality.
            self.registry.stamp(f"thread:{action.thread}", self.lamport[thread])
            return None, None

        raise TypeError(f"unknown action {action!r}")

    def _record_access(
        self, thread: str, var: str, access_type: AccessType, lamport: int
    ) -> None:
        frames = self._stacks[thread]
        if not frames:
            return
        call_id, method = frames[-1]
        self.trace.record_access(
            Access(
                obj=var,
                access_type=access_type,
                thread=thread,
                method=method,
                call_id=call_id,
                time=self.clock.now,
                lamport=lamport,
                locks_held=frozenset(self.locks_held[thread]),
            )
        )

    def release_all(self, thread: str) -> None:
        """Free locks held by a crashed/finished thread (crash hygiene)."""
        for lock in list(self.locks_held.get(thread, [])):
            self.lock_owner[lock] = None
            self.locks_held[thread].remove(lock)
