"""The simulated-program DSL: programs, methods, and the thread context.

A simulated program is a table of *methods*.  A method is a Python
generator function taking a :class:`SimContext` first:

.. code-block:: python

    def try_get_value(ctx, key):
        slot = yield from ctx.read("_nextSlot")
        yield from ctx.work(2)                 # local computation
        pools = yield from ctx.read("_pools")
        return pools[slot] if slot < len(pools) else None

    def main(ctx):
        yield from ctx.spawn("t1", "TryGetValue", "db1")
        yield from ctx.call("GetOrAdd", "db1")
        yield from ctx.join("t1")

    program = Program(
        name="demo",
        methods={"TryGetValue": try_get_value, "GetOrAdd": get_or_add,
                 "Main": main},
        main="Main",
        shared={"_nextSlot": 0, "_pools": ()},
    )

Every interaction with the outside world — shared variables, locks, time,
thread management, nested calls — goes through ``yield from ctx.<op>()``.
The yields bubble primitive :class:`Action` objects up to the scheduler,
which executes them one at a time under a seeded interleaving.  This is
what makes executions (a) fully deterministic given a seed, and (b)
nondeterministic *across* seeds, reproducing the intermittent failures
AID targets.

Method calls are traced (start/end time, accesses, return value,
exception — the Figure 9b schema) and are the unit of fault injection:
the context consults the runtime's :class:`~repro.sim.faults.InterventionSet`
at every method entry and exit.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Mapping, Optional, TYPE_CHECKING

from .errors import SimulatedError, UnknownMethodError
from .faults import MethodSelector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .runtime import Runtime

MethodFn = Callable[..., Generator]


# ---------------------------------------------------------------------------
# Primitive actions (the scheduler's instruction set)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Action:
    """Base class for primitive actions; ``duration`` is in virtual ticks."""

    duration: int = field(default=1, init=False)


@dataclass(frozen=True)
class ReadAction(Action):
    var: str


@dataclass(frozen=True)
class WriteAction(Action):
    var: str
    value: Any


@dataclass(frozen=True)
class AcquireAction(Action):
    lock: str


@dataclass(frozen=True)
class ReleaseAction(Action):
    lock: str


@dataclass(frozen=True)
class SleepAction(Action):
    ticks: int

    @property
    def cost(self) -> int:
        return self.ticks


@dataclass(frozen=True)
class SpawnAction(Action):
    thread: str
    method: str
    args: tuple


@dataclass(frozen=True)
class JoinAction(Action):
    thread: str


@dataclass(frozen=True)
class WaitCompletedAction(Action):
    """Block until a method invocation matching ``selector`` completes."""

    selector: MethodSelector


def action_cost(action: Action) -> int:
    """Virtual-time cost of executing one action."""
    if isinstance(action, SleepAction):
        return action.ticks
    return 1


def action_footprint(action: Optional[Action], thread: str) -> frozenset:
    """The resources one scheduling decision touches, as
    ``(key, is_write)`` pairs — the independence relation partial-order
    pruning is built on (see
    :func:`repro.sim.schedule.canonical_decisions`).

    Every decision writes its own ``thread:`` key (program order; also
    what thread completion — ``action is None`` — amounts to), reads or
    writes the shared variable / lock / peer-thread key its action
    names, and a :class:`WaitCompletedAction` writes the global barrier
    key ``"*"`` (its wake-up condition can depend on any thread's
    progress, so it commutes with nothing).
    """
    keys: set[tuple[str, bool]] = {(f"thread:{thread}", True)}
    if isinstance(action, ReadAction):
        keys.add((f"var:{action.var}", False))
    elif isinstance(action, WriteAction):
        keys.add((f"var:{action.var}", True))
    elif isinstance(action, (AcquireAction, ReleaseAction)):
        keys.add((f"lock:{action.lock}", True))
    elif isinstance(action, SpawnAction):
        keys.add((f"thread:{action.thread}", True))
    elif isinstance(action, JoinAction):
        keys.add((f"thread:{action.thread}", False))
    elif isinstance(action, WaitCompletedAction):
        keys.add(("*", True))
    return frozenset(keys)


# ---------------------------------------------------------------------------
# Program definition
# ---------------------------------------------------------------------------


@dataclass
class Program:
    """A complete simulated application.

    Parameters
    ----------
    name:
        Identifier used on traces and in reports.
    methods:
        Method table; keys are the names used by ``ctx.call`` /
        ``ctx.spawn`` and by predicates and interventions.
    main:
        Name of the entry method, run on the ``main`` thread.
    shared:
        Initial values of the shared (traced) variables.  Each key is an
        "object id" in the paper's sense; reads and writes of these are
        what the data-race detector sees.
    params:
        Free-form workload parameters, readable via ``ctx.param``.
    readonly_methods:
        Methods that do not mutate shared or external state.  Only these
        may receive return-value or exception-handling interventions
        (the paper's *safe intervention* restriction, Section 3.3).
    """

    name: str
    methods: Mapping[str, MethodFn]
    main: str
    shared: Mapping[str, Any] = field(default_factory=dict)
    params: Mapping[str, Any] = field(default_factory=dict)
    readonly_methods: frozenset[str] = frozenset()
    description: str = ""

    def __post_init__(self) -> None:
        if self.main not in self.methods:
            raise UnknownMethodError(self.main)

    def method(self, name: str) -> MethodFn:
        try:
            return self.methods[name]
        except KeyError:
            raise UnknownMethodError(name) from None


def _stable_seed(seed: int, label: str) -> int:
    """Derive a per-thread RNG seed that is stable across runs.

    ``hash()`` is salted per process, so we derive from md5 instead.
    """
    digest = hashlib.md5(f"{seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


# ---------------------------------------------------------------------------
# SimContext: the API surface visible to simulated methods
# ---------------------------------------------------------------------------


class SimContext:
    """Per-thread handle through which simulated code acts on the world.

    All operations are generators and must be invoked as
    ``yield from ctx.<op>(...)`` so the primitive actions reach the
    scheduler.  The few exceptions (``rand``, ``now``, ``param``,
    ``throw``) are pure/local and documented as such.
    """

    def __init__(self, runtime: "Runtime", thread: str) -> None:
        self.runtime = runtime
        self.thread = thread
        self.program = runtime.program
        self._rng = random.Random(_stable_seed(runtime.seed, thread))

    # -- local (non-yielding) helpers -----------------------------------

    def rand(self) -> float:
        """Thread-local deterministic RNG (stable across interleavings)."""
        return self._rng.random()

    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def now(self) -> int:
        """Current virtual time (no cost)."""
        return self.runtime.clock.now

    def param(self, name: str, default: Any = None) -> Any:
        return self.program.params.get(name, default)

    def throw(self, kind: str, message: str = "") -> None:
        """Raise a simulated exception (crashes the thread if uncaught)."""
        raise SimulatedError(kind, message)

    def fail(self, message: str = "") -> None:
        """Fail an application-level assertion."""
        raise SimulatedError("AssertionFailure", message)

    # -- traced primitives ----------------------------------------------

    def read(self, var: str):
        """Read a shared variable (traced as an ``R`` access)."""
        value = yield ReadAction(var)
        return value

    def write(self, var: str, value: Any):
        """Write a shared variable (traced as a ``W`` access)."""
        yield WriteAction(var, value)

    def update(self, var: str, fn: Callable[[Any], Any]):
        """Read-modify-write *without* atomicity (two separate accesses).

        This is deliberately racy: the value may change between the read
        and the write — the classic lost-update window.
        """
        value = yield ReadAction(var)
        yield WriteAction(var, fn(value))
        return fn(value)

    def sleep(self, ticks: int):
        if ticks > 0:
            yield SleepAction(ticks)

    def work(self, ticks: int = 1):
        """Local computation: advances time, touches nothing shared."""
        if ticks > 0:
            yield SleepAction(ticks)

    def acquire(self, lock: str):
        yield AcquireAction(lock)

    def release(self, lock: str):
        yield ReleaseAction(lock)

    def spawn(self, thread: str, method: str, *args: Any):
        """Start ``method`` on a new thread named ``thread``."""
        self.program.method(method)  # validate early
        yield SpawnAction(thread=thread, method=method, args=args)

    def join(self, thread: str):
        yield JoinAction(thread=thread)

    def peek(self, var: str) -> Any:
        """Untraced read of shared state (harness plumbing, zero cost).

        Use only for workload orchestration that must not generate
        predicates (e.g. checking a scenario flag).
        """
        return self.runtime.shared.get(var)

    def poke(self, var: str, value: Any) -> None:
        """Untraced write of shared state (harness plumbing, zero cost)."""
        self.runtime.shared[var] = value

    # -- method calls (traced + intervention points) ---------------------

    def call(self, name: str, *args: Any, **kwargs: Any):
        """Invoke a program method, recording it on the trace.

        This is the heart of fault injection: entry and exit plans from
        the active :class:`~repro.sim.faults.InterventionSet` are applied
        around the body.
        """
        fn = self.program.method(name)
        runtime = self.runtime
        occurrence = runtime.trace.peek_occurrence(self.thread, name)
        entry = runtime.interventions.entry_plan(name, self.thread, occurrence)
        exit_ = runtime.interventions.exit_plan(name, self.thread, occurrence)

        for selector in entry.wait_for:
            yield WaitCompletedAction(selector=selector)
        for lock in entry.locks:
            yield AcquireAction(lock)
        if entry.delays:
            yield SleepAction(entry.delays)

        call_id = runtime.begin_method(self.thread, name)
        body_skipped = entry.force_return is not None
        try:
            # One tick of call overhead: guarantees every window has
            # positive width so cross-thread overlap is well defined.
            yield SleepAction(1)
            if body_skipped:
                ret: Any = entry.force_return.value
            else:
                ret = yield from fn(self, *args, **kwargs)
        except SimulatedError as exc:
            if exit_.catch is not None:
                ret = exit_.catch.fallback
            else:
                runtime.end_method(self.thread, call_id, None, exc.kind)
                for lock in reversed(entry.locks):
                    yield ReleaseAction(lock)
                raise
        if exit_.delays:
            yield SleepAction(exit_.delays)
        if exit_.force_return is not None:
            ret = exit_.force_return.value
        runtime.end_method(self.thread, call_id, ret, None, body_skipped)
        for lock in reversed(entry.locks):
            yield ReleaseAction(lock)
        return ret
