"""``repro.sim`` — deterministic concurrent-program simulator.

This package is the substrate that replaces the paper's real,
CLR-instrumented applications (see DESIGN.md, substitution table).  It
provides:

* a generator-based cooperative threading model with seeded random
  interleaving (:mod:`repro.sim.scheduler`);
* shared variables, non-reentrant locks, virtual time, and Lamport
  clocks (:mod:`repro.sim.runtime`, :mod:`repro.sim.clock`);
* execution traces with the paper's Figure 9b schema
  (:mod:`repro.sim.tracing`);
* declarative fault injection for all Figure 2 intervention types
  (:mod:`repro.sim.faults`).
"""

from .clock import LamportClock, LamportRegistry, VirtualClock
from .errors import (
    LockProtocolError,
    SimHarnessError,
    SimulatedError,
    SimulationFault,
    UnknownMethodError,
)
from .faults import (
    CatchException,
    DelayBefore,
    DelayReturn,
    ForceOrder,
    ForceReturn,
    Intervention,
    InterventionSet,
    MethodSelector,
    SerializeMethods,
)
from .program import MethodFn, Program, SimContext
from .schedule import (
    RandomStrategy,
    ReplayStrategy,
    Schedule,
    ScheduleError,
    SchedulePoint,
    SchedulerStrategy,
)
from .scheduler import DEFAULT_MAX_STEPS, Simulator, run_program
from .serialize import (
    ImportedTrace,
    trace_from_dict,
    trace_from_json,
    trace_to_dict,
    trace_to_json,
)
from .tracing import (
    Access,
    AccessType,
    ExecutionResult,
    ExecutionTrace,
    FailureInfo,
    MethodExecution,
    MethodKey,
)

__all__ = [
    "Access",
    "AccessType",
    "CatchException",
    "DEFAULT_MAX_STEPS",
    "DelayBefore",
    "DelayReturn",
    "ExecutionResult",
    "ExecutionTrace",
    "FailureInfo",
    "ForceOrder",
    "ForceReturn",
    "ImportedTrace",
    "Intervention",
    "InterventionSet",
    "LamportClock",
    "LamportRegistry",
    "LockProtocolError",
    "MethodExecution",
    "MethodFn",
    "MethodKey",
    "MethodSelector",
    "Program",
    "RandomStrategy",
    "ReplayStrategy",
    "Schedule",
    "ScheduleError",
    "SchedulePoint",
    "SchedulerStrategy",
    "SerializeMethods",
    "SimContext",
    "SimHarnessError",
    "Simulator",
    "SimulatedError",
    "SimulationFault",
    "UnknownMethodError",
    "VirtualClock",
    "run_program",
    "trace_from_dict",
    "trace_from_json",
    "trace_to_dict",
    "trace_to_json",
]
