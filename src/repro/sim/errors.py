"""Exception and failure types for the concurrent-program simulator.

The simulator distinguishes three layers of "going wrong":

* :class:`SimulatedError` — an exception *inside* the simulated program.
  It propagates through simulated call frames exactly like a real
  exception would, can be caught by simulated ``try/except`` blocks, and
  crashes the simulated thread if unhandled.
* :class:`SimulationFault` — the simulated *execution* as a whole failed
  (crash, deadlock, hang).  These are reported as
  :class:`~repro.sim.tracing.FailureInfo` records on the trace rather than
  raised to the caller.
* :class:`SimHarnessError` — a bug in how the simulator is being *used*
  (e.g. an unknown method name, releasing a lock that is not held).
  These always raise: they indicate a broken workload, not a simulated
  failure.
"""

from __future__ import annotations


class SimHarnessError(Exception):
    """Misuse of the simulator API by a workload or the harness itself."""


class UnknownMethodError(SimHarnessError):
    """A simulated call referenced a method name not in the program table."""

    def __init__(self, method: str) -> None:
        super().__init__(f"program has no method named {method!r}")
        self.method = method


class LockProtocolError(SimHarnessError):
    """A thread released a lock it does not hold, or re-acquired one."""


class SchedulerExhaustedError(SimHarnessError):
    """The scheduler ran out of step budget with threads still runnable.

    This is surfaced as a *hang* failure on the execution result rather
    than raised, unless the budget is exceeded in a way that suggests a
    harness bug (see :mod:`repro.sim.scheduler`).
    """


class SimulatedError(Exception):
    """An exception raised inside the simulated program.

    Simulated exceptions carry a symbolic ``kind`` (e.g.
    ``"IndexOutOfRange"``, ``"ObjectDisposed"``) because predicates and
    failure signatures match on the kind string, not on a Python class
    hierarchy.
    """

    def __init__(self, kind: str, message: str = "") -> None:
        super().__init__(f"{kind}: {message}" if message else kind)
        self.kind = kind
        self.message = message


class SimulationFault:
    """Symbolic names for whole-execution failure modes."""

    CRASH = "crash"
    DEADLOCK = "deadlock"
    HANG = "hang"
    ASSERTION = "assertion"
