"""Scheduling strategies and first-class recorded schedules.

Role
----
The simulator's *only* nondeterminism is which ready thread runs next.
This module names that choice: every decision flows through a
:class:`SchedulerStrategy` (ready-set in, chosen thread out), and every
execution records its full decision list as a :class:`Schedule` — a
serializable, content-addressed artifact that replays deterministically
via :class:`ReplayStrategy`.

That seam is what makes schedule-space exploration possible
(:mod:`repro.explore`): systematic strategies (PCT, delay bounding)
plug in where the seeded-uniform picker used to be hard-wired, and any
failing interleaving a fuzzer finds is reproducible from its recorded
schedule alone.

Invariants
----------
* :class:`RandomStrategy` consumes its RNG exactly like the historical
  in-line ``rng.choice`` did, so every existing
  ``(program, interventions, seed)`` triple produces a byte-identical
  trace (asserted against golden fixtures);
* a strategy must return a member of ``point.candidates`` — the
  simulator rejects anything else with a :class:`ScheduleError`;
* ``Schedule.from_dict(s.to_dict()) == s`` and replaying a schedule
  under the same ``(program, interventions, seed)`` reproduces the
  recording's trace byte-for-byte (asserted in tests);
* :meth:`Schedule.signature` identifies the *interleaving* (program +
  decision sequence), deliberately excluding the seed: two seeds that
  induce the same decisions are the same schedule.

Persistence: one JSON document per schedule
(:meth:`Schedule.save`/:meth:`Schedule.load`), schema-versioned like
trace files.
"""

from __future__ import annotations

import heapq
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from random import Random
from typing import Optional, Protocol, Sequence, runtime_checkable

from .serialize import stable_digest

SCHEDULE_SCHEMA_VERSION = 1

#: One decision's resource touches: ``(key, is_write)`` pairs.  Two
#: decisions *conflict* when they share a key and at least one writes
#: it; adjacent non-conflicting decisions commute (Mazurkiewicz trace
#: equivalence), which is what partial-order pruning exploits.
Footprint = frozenset


def footprints_conflict(a: Footprint, b: Footprint) -> bool:
    """Whether two decisions are dependent (do not commute)."""
    if not a or not b:
        return False
    for key, is_write in a:
        if is_write:
            if any(k == key for k, _ in b):
                return True
        elif (key, True) in b:
            return True
    return False


def canonical_decisions(
    decisions: Sequence[str], footprints: Sequence[Footprint]
) -> tuple[str, ...]:
    """The lexicographically-minimal linearization of the decisions'
    dependence partial order — a normal form shared by every member of
    the schedule's Mazurkiewicz equivalence class.

    Dependence edges come from three sources, all derivable from the
    per-decision footprints the simulator records:

    * program order — consecutive decisions of the same thread (every
      footprint writes its own ``thread:`` key);
    * data/lock conflicts — a write to a key depends on the previous
      write and on every read since it; a read depends on the previous
      write (reads of the same key commute);
    * barriers — a decision writing the global key ``"*"`` conflicts
      with everything (every footprint implicitly reads ``"*"``).

    The normal form is computed greedily (Kahn's algorithm, always
    releasing the smallest ready thread name); same-thread decisions are
    chained, so at most one decision per thread is ever ready and the
    tie-break is total.  Two recorded schedules whose executions differ
    only by commuting adjacent independent decisions canonicalize to
    the same tuple; schedules with different dependence structure keep
    distinct normal forms.
    """
    n = len(decisions)
    if n != len(footprints):
        raise ValueError(
            f"{n} decisions but {len(footprints)} footprints"
        )
    succs: list[list[int]] = [[] for _ in range(n)]
    indegree = [0] * n
    edges: set[tuple[int, int]] = set()

    def add_edge(src: int, dst: int) -> None:
        if src == dst or (src, dst) in edges:
            return
        edges.add((src, dst))
        succs[src].append(dst)
        indegree[dst] += 1

    last_write: dict[str, int] = {}
    readers_since: dict[str, list[int]] = {}
    for i, fp in enumerate(footprints):
        for key, is_write in sorted(fp):
            if is_write:
                prev = last_write.get(key)
                if prev is not None:
                    add_edge(prev, i)
                for reader in readers_since.get(key, ()):
                    add_edge(reader, i)
                last_write[key] = i
                readers_since[key] = []
            else:
                prev = last_write.get(key)
                if prev is not None:
                    add_edge(prev, i)
                readers_since.setdefault(key, []).append(i)
        # Every decision implicitly reads the barrier key, so a
        # barrier write ("*", True) orders against all neighbours.
        prev = last_write.get("*")
        if prev is not None and ("*", True) not in fp:
            add_edge(prev, i)
        if ("*", True) not in fp:
            readers_since.setdefault("*", []).append(i)

    ready = [
        (decisions[i], i) for i in range(n) if indegree[i] == 0
    ]
    heapq.heapify(ready)
    out: list[str] = []
    while ready:
        _, i = heapq.heappop(ready)
        out.append(decisions[i])
        for j in succs[i]:
            indegree[j] -= 1
            if indegree[j] == 0:
                heapq.heappush(ready, (decisions[j], j))
    if len(out) != n:  # pragma: no cover - the graph is acyclic by
        raise ValueError("dependence graph has a cycle")  # construction
    return tuple(out)


class ScheduleError(ValueError):
    """A schedule document or strategy decision is unusable."""


@dataclass(frozen=True)
class SchedulePoint:
    """One scheduling decision: who may run now.

    ``candidates`` is the ready set in canonical order (by thread spawn
    order), ``index`` is the 0-based position of this decision in the
    execution, and ``time`` is the virtual instant the chosen action
    will execute at.
    """

    index: int
    time: int
    candidates: tuple[str, ...]


@runtime_checkable
class SchedulerStrategy(Protocol):
    """Ready-set in, chosen thread out — the simulator's one seam."""

    def choose(self, point: SchedulePoint) -> str:
        ...  # pragma: no cover - protocol


@dataclass
class RandomStrategy:
    """The status-quo picker: seeded uniform choice among the ready set.

    Draws exactly one ``Random.choice`` per decision — including
    singleton ready sets — which is precisely what the historical
    in-line scheduler RNG did, so the default path stays byte-identical.
    """

    seed: int
    rng: Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.rng = Random(self.seed)

    def choose(self, point: SchedulePoint) -> str:
        return self.rng.choice(point.candidates)


@dataclass(frozen=True)
class Schedule:
    """A recorded decision list: the reproducible identity of one
    interleaving of ``program``.

    ``decisions[i]`` is the thread chosen at the execution's *i*-th
    scheduling point.  ``seed`` is the simulator seed the recording ran
    under — replaying requires the same seed (fault draws and the trace
    header read it) plus the same program and interventions.
    """

    program: str
    seed: int
    decisions: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.decisions, tuple):
            object.__setattr__(self, "decisions", tuple(self.decisions))

    def __len__(self) -> int:
        return len(self.decisions)

    def signature(self) -> str:
        """Content address of the *interleaving* (seed excluded): the
        same fingerprint scheme every other repro artifact uses."""
        return stable_digest(
            {"program": self.program, "decisions": list(self.decisions)}
        )

    def canonical_signature(
        self, footprints: Optional[Sequence[Footprint]] = None
    ) -> str:
        """Content address of the schedule's Mazurkiewicz equivalence
        class: the :func:`canonical_decisions` normal form, hashed the
        same way :meth:`signature` hashes the raw decision list (under
        a distinct key, so the two namespaces never collide).

        Without footprints (or with a stale list that no longer lines
        up with the decisions) there is no independence information, so
        the canonical class degenerates to the exact interleaving.

        This is a *search* equivalence, not a semantic one: commuting
        independent decisions preserves the dependence structure but
        may still shift virtual timestamps, so exploration uses it to
        steer budget (frontier admission, mutation energy), never to
        drop failures — those stay deduplicated by exact signature.
        """
        if footprints is None or len(footprints) != len(self.decisions):
            normal: tuple[str, ...] = self.decisions
        else:
            normal = canonical_decisions(self.decisions, footprints)
        return stable_digest(
            {"program": self.program, "canonical": list(normal)}
        )

    def transitions(self) -> frozenset[tuple[str, str]]:
        """The thread-handoff edges this schedule exercised — the
        coverage alphabet :mod:`repro.explore` deduplicates against.
        Includes the virtual start edge ``("", first)``."""
        edges = set()
        prev = ""
        for chosen in self.decisions:
            edges.add((prev, chosen))
            prev = chosen
        return frozenset(edges)

    def truncate(self, length: int) -> "Schedule":
        """The first ``length`` decisions (mutation prefixes)."""
        return Schedule(
            program=self.program,
            seed=self.seed,
            decisions=self.decisions[:length],
        )

    # -- (de)serialization ------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": SCHEDULE_SCHEMA_VERSION,
            "program": self.program,
            "seed": self.seed,
            "decisions": list(self.decisions),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Schedule":
        if not isinstance(payload, dict):
            raise ScheduleError(
                f"expected a schedule object, got {type(payload).__name__}"
            )
        if payload.get("schema") != SCHEDULE_SCHEMA_VERSION:
            raise ScheduleError(
                f"unsupported schedule schema {payload.get('schema')!r} "
                f"(this build reads version {SCHEDULE_SCHEMA_VERSION})"
            )
        decisions = payload.get("decisions")
        if not isinstance(decisions, list) or not all(
            isinstance(d, str) for d in decisions
        ):
            raise ScheduleError("schedule decisions must be a list of "
                                "thread names")
        return cls(
            program=payload["program"],
            seed=payload["seed"],
            decisions=tuple(decisions),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Schedule":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScheduleError(f"not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "Schedule":
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ScheduleError(f"cannot read {path}: {exc}") from exc
        return cls.from_json(text)

    def save(self, path: str | os.PathLike) -> Path:
        path = Path(path)
        path.write_text(self.to_json(indent=2) + "\n")
        return path


@dataclass
class ReplayStrategy:
    """Deterministic replay of a recorded :class:`Schedule`.

    Replays ``schedule.decisions`` verbatim (optionally only the first
    ``prefix`` of them), then hands any remaining decisions to ``tail``
    (default: the first candidate in canonical order).  A recorded
    decision whose thread is not in the ready set — or an execution
    that outlives a full-length recording — marks the replay
    ``diverged``: the program or interventions no longer match the
    recording.
    """

    schedule: Schedule
    #: replay only the first N decisions (``None`` = all) — the
    #: exploration driver's mutation operator: frozen prefix, novel tail
    prefix: Optional[int] = None
    #: strategy for decisions past the replayed prefix
    tail: Optional[SchedulerStrategy] = None
    diverged: bool = field(default=False, init=False)
    replayed: int = field(default=0, init=False)

    def choose(self, point: SchedulePoint) -> str:
        limit = len(self.schedule.decisions)
        if self.prefix is not None:
            limit = min(limit, self.prefix)
        if point.index < limit:
            wanted = self.schedule.decisions[point.index]
            if wanted in point.candidates:
                self.replayed += 1
                return wanted
            self.diverged = True
        elif self.prefix is None:
            # A pure replay should end exactly when the recording does.
            self.diverged = True
        if self.tail is not None:
            return self.tail.choose(point)
        return point.candidates[0]
