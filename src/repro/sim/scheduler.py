"""The seeded nondeterministic discrete-event scheduler.

Threads are cooperative generators.  Execution is *duration-aware*:
every primitive action stamps its effects at the current virtual time
and then keeps its thread busy for the action's cost, so a thread inside
``work(200)`` genuinely lets other threads run for 200 ticks — exactly
like a real sleeping/computing thread.  At each step the scheduler asks
its :class:`~repro.sim.schedule.SchedulerStrategy` which of the
threads that are ready *now* runs next (the default strategy picks
uniformly at random from a seeded RNG); when none are ready, virtual
time jumps to the next ready instant.

The tie-breaking among simultaneously-ready threads is the *only*
source of nondeterminism in the simulator, and every decision is
recorded on the result as a replayable
:class:`~repro.sim.schedule.Schedule`, so:

* the same ``(program, interventions, seed)`` triple always reproduces
  the identical trace — interventions are diffable — and the same
  ``(program, interventions, schedule)`` triple replays it exactly;
* sweeping seeds reproduces the intermittent behaviour AID targets
  (some interleavings fail, most succeed — flaky by construction);
* every executed action gets a distinct timestamp (the clock advances by
  one serialization tick per action), which keeps temporal-precedence
  comparisons strict.

Failure modes recorded on the trace:

* ``crash`` — a :class:`~repro.sim.errors.SimulatedError` escaped a
  thread's outermost frame (any thread: an unhandled exception in a
  worker thread takes the process down, as in the paper's Kafka and
  Npgsql case studies);
* ``deadlock`` — no thread is runnable but some are blocked;
* ``hang`` — the step budget was exhausted (models unresponsiveness /
  test timeout).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional

from .errors import SimulatedError
from .faults import Intervention, InterventionSet
from .program import (
    Program,
    SimContext,
    SpawnAction,
    action_cost,
    action_footprint,
)
from .runtime import Blocked, Runtime
from .schedule import (
    RandomStrategy,
    Schedule,
    ScheduleError,
    SchedulePoint,
    SchedulerStrategy,
)
from .tracing import ExecutionResult, ExecutionTrace, FailureInfo

DEFAULT_MAX_STEPS = 50_000


class ThreadStatus(Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    DONE = "done"
    CRASHED = "crashed"


@dataclass
class _Thread:
    name: str
    gen: object  # generator of Actions
    ctx: SimContext
    status: ThreadStatus = ThreadStatus.RUNNABLE
    pending_send: object = None
    pending_action: object = None  # action to retry after unblocking
    blocked_on: Optional[Blocked] = None
    order: int = 0
    ready_at: int = 0  # busy until this virtual time (discrete-event)

    def runnable(self) -> bool:
        return self.status is ThreadStatus.RUNNABLE


@dataclass
class Simulator:
    """Executes a :class:`~repro.sim.program.Program` under a seed.

    Parameters
    ----------
    program:
        The simulated application.
    max_steps:
        Hang budget; exceeding it marks the execution as failed with the
        ``hang`` signature.
    strategy_factory:
        Builds the per-run :class:`~repro.sim.schedule.SchedulerStrategy`
        from the seed.  ``None`` (the default) uses the historical
        seeded-uniform :class:`~repro.sim.schedule.RandomStrategy` —
        byte-identical traces for every existing
        ``(program, interventions, seed)`` triple.
    """

    program: Program
    max_steps: int = DEFAULT_MAX_STEPS
    strategy_factory: Optional[Callable[[int], SchedulerStrategy]] = None
    _spawn_counter: int = field(default=0, init=False, repr=False)

    def run(
        self,
        seed: int,
        interventions: tuple[Intervention, ...] | InterventionSet = (),
        strategy: Optional[SchedulerStrategy] = None,
    ) -> ExecutionResult:
        """Run one execution and return its trace.

        ``strategy`` overrides the simulator's factory for this run
        (replay and exploration drivers pass one explicitly).
        """
        if not isinstance(interventions, InterventionSet):
            interventions = InterventionSet(tuple(interventions))
        if strategy is None:
            strategy = (
                self.strategy_factory(seed)
                if self.strategy_factory is not None
                else RandomStrategy(seed)
            )
        trace = ExecutionTrace(self.program.name, seed)
        runtime = Runtime(self.program, interventions, seed, trace)
        decisions: list[str] = []
        footprints: list[frozenset] = []

        threads: dict[str, _Thread] = {}
        spawn_order = 0

        def start_thread(name: str, method: str, args: tuple, parent: Optional[str]):
            nonlocal spawn_order
            if name in threads:
                raise ValueError(f"duplicate thread name {name!r}")
            runtime.register_thread(name, spawned_by=parent)
            ctx = SimContext(runtime, name)
            gen = ctx.call(method, *args)
            spawn_order += 1
            threads[name] = _Thread(
                name=name,
                gen=gen,
                ctx=ctx,
                order=spawn_order,
                ready_at=runtime.clock.now,
            )

        start_thread("main", self.program.main, (), parent=None)

        steps = 0
        while True:
            self._unblock(threads, runtime)
            runnable = [t for t in threads.values() if t.runnable()]
            if not runnable:
                blocked = [
                    t for t in threads.values() if t.status is ThreadStatus.BLOCKED
                ]
                if blocked:
                    trace.record_failure(
                        FailureInfo(
                            mode="deadlock",
                            exception=None,
                            method=runtime.current_method(blocked[0].name),
                            thread=blocked[0].name,
                            time=runtime.clock.now,
                        )
                    )
                break  # all done, or deadlocked
            if steps >= self.max_steps:
                trace.record_failure(
                    FailureInfo(
                        mode="hang",
                        exception=None,
                        method=None,
                        thread=None,
                        time=runtime.clock.now,
                    )
                )
                break
            steps += 1

            # Discrete-event step: one serialization tick, then run the
            # strategy's pick among threads whose busy period elapsed.
            execute_at = runtime.clock.now + 1
            eligible = [t for t in runnable if t.ready_at <= execute_at]
            if not eligible:
                next_ready = min(t.ready_at for t in runnable)
                runtime.clock.advance(next_ready - runtime.clock.now - 1)
                execute_at = runtime.clock.now + 1
                eligible = [t for t in runnable if t.ready_at <= execute_at]
            runtime.clock.advance(1)
            candidates = sorted(eligible, key=lambda t: t.order)
            point = SchedulePoint(
                index=len(decisions),
                time=execute_at,
                candidates=tuple(t.name for t in candidates),
            )
            chosen = strategy.choose(point)
            thread = next(
                (t for t in candidates if t.name == chosen), None
            )
            if thread is None:
                raise ScheduleError(
                    f"strategy chose {chosen!r}, not in the ready set "
                    f"{point.candidates} at decision {point.index}"
                )
            decisions.append(chosen)
            footprints.append(
                self._step(thread, threads, runtime, trace, start_thread)
            )

        for t in threads.values():
            if t.status not in (ThreadStatus.DONE, ThreadStatus.CRASHED):
                t.gen.close()
                runtime.abort_thread_calls(t.name, "Unfinished")
        trace.end_time = runtime.clock.now
        return ExecutionResult(
            trace=trace,
            steps=steps,
            schedule=Schedule(
                program=self.program.name,
                seed=seed,
                decisions=tuple(decisions),
            ),
            footprints=tuple(footprints),
        )

    # -- internals -------------------------------------------------------

    def _step(self, thread, threads, runtime, trace, start_thread) -> frozenset:
        """Advance one thread by one primitive action; returns the
        decision's resource footprint (see
        :func:`~repro.sim.program.action_footprint`)."""
        try:
            if thread.pending_action is not None:
                action = thread.pending_action
                thread.pending_action = None
            else:
                action = thread.gen.send(thread.pending_send)
                thread.pending_send = None
        except StopIteration:
            thread.status = ThreadStatus.DONE
            runtime.release_all(thread.name)
            runtime.thread_finished(thread.name)
            return action_footprint(None, thread.name)
        except SimulatedError as exc:
            self._crash(thread, exc, runtime, trace)
            return action_footprint(None, thread.name)

        if isinstance(action, SpawnAction):
            start_thread(action.thread, action.method, action.args, thread.name)

        result, blocked = runtime.perform(thread.name, action)
        if blocked is not None:
            thread.status = ThreadStatus.BLOCKED
            thread.blocked_on = blocked
            thread.pending_action = action
        else:
            thread.pending_send = result
            # The thread stays busy for the action's cost; its next
            # action executes no earlier than ready_at.
            thread.ready_at = runtime.clock.now + action_cost(action)
        return action_footprint(action, thread.name)

    def _crash(self, thread, exc: SimulatedError, runtime, trace) -> None:
        thread.status = ThreadStatus.CRASHED
        # The frames usually unwound already (ctx.call closes them as the
        # exception propagates), so recover the crash site — the
        # innermost frame that died with this exception — from the trace.
        method = runtime.current_method(thread.name)
        if method is None:
            dead = [
                m
                for m in trace.method_executions()
                if m.thread == thread.name and m.exception == exc.kind
            ]
            if dead:
                method = min(dead, key=lambda m: m.end_time).method
        runtime.abort_thread_calls(thread.name, exc.kind)
        runtime.release_all(thread.name)
        runtime.thread_finished(thread.name)
        trace.record_failure(
            FailureInfo(
                mode="crash",
                exception=exc.kind,
                method=method,
                thread=thread.name,
                time=runtime.clock.now,
            )
        )

    def _unblock(self, threads: dict, runtime: Runtime) -> None:
        """Move blocked threads whose wait condition cleared to runnable."""
        for t in threads.values():
            if t.status is not ThreadStatus.BLOCKED or t.blocked_on is None:
                continue
            b = t.blocked_on
            clear = False
            if b.reason == "lock":
                owner = runtime.lock_owner.get(b.lock)
                clear = owner is None
            elif b.reason == "join":
                clear = b.thread in runtime.finished_threads
            elif b.reason == "event":
                clear = runtime.is_completed(b.selector)
            if clear:
                t.status = ThreadStatus.RUNNABLE
                t.blocked_on = None


def run_program(
    program: Program,
    seed: int,
    interventions: tuple[Intervention, ...] = (),
    max_steps: int = DEFAULT_MAX_STEPS,
) -> ExecutionResult:
    """Convenience one-shot runner."""
    return Simulator(program, max_steps=max_steps).run(seed, interventions)
