"""Clocks for the simulator: a global virtual clock and Lamport clocks.

The paper (Section 4) notes that AID relies on computer clocks to decide
temporal precedence and that logical clocks such as Lamport's can address
granularity and multi-core skew issues.  The simulator provides both:

* :class:`VirtualClock` — a single global tick counter advanced by the
  scheduler.  Every action occupies an interval ``[start, start + dur)``.
  Because the scheduler serializes actions, two *events* never share a
  tick, but *method windows* (start..end of a call, spanning many
  interleaved actions) genuinely overlap across threads, which is what
  the data-race and overlap predicates measure.
* :class:`LamportClock` — a per-thread logical clock maintained alongside
  the virtual clock.  Sends/receives are modeled as lock hand-offs and
  shared-variable writes/reads.  Extractors may use Lamport timestamps
  as a conservative precedence policy (see
  :mod:`repro.core.precedence`).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class VirtualClock:
    """Global monotonically-increasing tick counter."""

    def __init__(self) -> None:
        self._now = 0

    @property
    def now(self) -> int:
        return self._now

    def advance(self, ticks: int) -> int:
        """Advance the clock and return the *new* time.

        ``ticks`` must be non-negative; zero-duration actions are allowed
        (they still get a distinct causal position via event sequence
        numbers on the trace).
        """
        if ticks < 0:
            raise ValueError(f"cannot advance clock by {ticks} ticks")
        self._now += ticks
        return self._now


@dataclass
class LamportClock:
    """A classic Lamport logical clock for one simulated thread."""

    time: int = 0

    def tick(self) -> int:
        """Local event: increment and return the new timestamp."""
        self.time += 1
        return self.time

    def merge(self, observed: int) -> int:
        """Receive event: merge an observed timestamp, then tick."""
        self.time = max(self.time, observed)
        return self.tick()


@dataclass
class LamportRegistry:
    """Tracks Lamport timestamps attached to shared channels.

    A "channel" is anything a happens-before edge can flow through in the
    simulator: a shared variable, a lock, or a thread spawn/join pair.
    Writers stamp the channel; readers merge from it.
    """

    channels: dict[str, int] = field(default_factory=dict)

    def stamp(self, channel: str, clock: LamportClock) -> int:
        ts = clock.tick()
        self.channels[channel] = max(self.channels.get(channel, 0), ts)
        return ts

    def observe(self, channel: str, clock: LamportClock) -> int:
        return clock.merge(self.channels.get(channel, 0))
