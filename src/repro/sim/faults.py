"""Fault injection: runtime interventions on the simulated program.

This is the simulator's counterpart of an LFI-style library-level fault
injector (paper Section 3.3 and Appendix B).  Each intervention type
corresponds to one row of Figure 2, column 3:

===============================  ==========================================
Predicate being repaired          Intervention
===============================  ==========================================
data race between M1 and M2       :class:`SerializeMethods` (inject a lock)
method M fails                    :class:`CatchException` (inject try/catch)
method M runs too fast            :class:`DelayReturn` (inject delay)
method M runs too slow            :class:`ForceReturn` with ``skip_body``
method M returns incorrect value  :class:`ForceReturn` (alter return stmt)
order violation between M1, M2    :class:`ForceOrder` (block until M1 done)
===============================  ==========================================

Interventions are *declarative*: the runtime consults the active
:class:`InterventionSet` at method boundaries, so applying a set of
interventions never requires editing workload code — exactly like a
binary-rewriting fault injector applied before execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .tracing import MethodKey


@dataclass(frozen=True)
class MethodSelector:
    """Matches method invocations, optionally pinned to thread/occurrence.

    ``thread=None`` or ``occurrence=None`` act as wildcards.  Selectors
    are how predicate-level interventions (which talk about "method M,
    k-th call, on thread T") address simulated invocations.
    """

    method: str
    thread: Optional[str] = None
    occurrence: Optional[int] = None

    def matches(self, method: str, thread: str, occurrence: int) -> bool:
        if self.method != method:
            return False
        if self.thread is not None and self.thread != thread:
            return False
        if self.occurrence is not None and self.occurrence != occurrence:
            return False
        return True

    def matches_key(self, key: MethodKey) -> bool:
        return self.matches(key.method, key.thread, key.occurrence)

    @classmethod
    def from_key(cls, key: MethodKey) -> "MethodSelector":
        return cls(method=key.method, thread=key.thread, occurrence=key.occurrence)

    def __str__(self) -> str:
        thread = self.thread or "*"
        occ = "*" if self.occurrence is None else str(self.occurrence)
        return f"{thread}:{self.method}#{occ}"


class Intervention:
    """Base class for all runtime interventions (marker only)."""

    def describe(self) -> str:
        return repr(self)


@dataclass(frozen=True)
class SerializeMethods(Intervention):
    """Put a (injected) lock around the bodies of the selected methods.

    Repairs data-race predicates: the racing methods can no longer
    overlap, so lockset-based race detection no longer fires.
    """

    selectors: tuple[MethodSelector, ...]
    lock_name: str = "__aid_race_lock__"

    def describe(self) -> str:
        subjects = ", ".join(str(s) for s in self.selectors)
        return f"serialize [{subjects}] with injected lock {self.lock_name}"


@dataclass(frozen=True)
class CatchException(Intervention):
    """Wrap the method in an injected try/catch.

    If the body raises, the exception is swallowed and ``fallback`` is
    returned instead — repairing "method M fails" predicates.
    """

    selector: MethodSelector
    fallback: object = None

    def describe(self) -> str:
        return f"catch exceptions in {self.selector}, return {self.fallback!r}"


@dataclass(frozen=True)
class DelayBefore(Intervention):
    """Inject a delay before the method body starts."""

    selector: MethodSelector
    ticks: int

    def describe(self) -> str:
        return f"delay {self.selector} start by {self.ticks} ticks"


@dataclass(frozen=True)
class DelayReturn(Intervention):
    """Inject a delay before the method returns.

    Repairs "method M runs too fast" by stretching its duration to at
    least the successful-execution minimum.
    """

    selector: MethodSelector
    ticks: int

    def describe(self) -> str:
        return f"delay {self.selector} return by {self.ticks} ticks"


@dataclass(frozen=True)
class ForceReturn(Intervention):
    """Force the method's return value.

    With ``skip_body=True`` the body never runs and the value is returned
    (almost) immediately — the paper's repair for "runs too slow".  With
    ``skip_body=False`` the body runs normally but the returned value is
    replaced — the repair for "returns incorrect value".

    Return-value interventions are only *safe* on methods that do not
    mutate shared state (paper Section 3.3); the safety check lives in
    :mod:`repro.core.intervention`, not here.
    """

    selector: MethodSelector
    value: object
    skip_body: bool = False

    def describe(self) -> str:
        how = "skip body and return" if self.skip_body else "override return with"
        return f"{how} {self.value!r} in {self.selector}"


@dataclass(frozen=True)
class ForceOrder(Intervention):
    """Block the start of ``then`` until ``first`` has completed.

    Repairs order-violation predicates by re-imposing the ordering seen
    in successful executions.
    """

    first: MethodSelector
    then: MethodSelector

    def describe(self) -> str:
        return f"force {self.first} to complete before {self.then} starts"


@dataclass
class MethodEntryPlan:
    """What the runtime must do when a matching method starts."""

    delays: int = 0
    locks: list[str] = field(default_factory=list)
    wait_for: list[MethodSelector] = field(default_factory=list)
    force_return: Optional[ForceReturn] = None  # only if skip_body


@dataclass
class MethodExitPlan:
    """What the runtime must do when a matching method finishes."""

    delays: int = 0
    locks: list[str] = field(default_factory=list)
    force_return: Optional[ForceReturn] = None
    catch: Optional[CatchException] = None


class InterventionSet:
    """The active interventions for one simulated execution."""

    def __init__(self, interventions: tuple[Intervention, ...] = ()) -> None:
        self.interventions = tuple(interventions)

    def __bool__(self) -> bool:
        return bool(self.interventions)

    def __len__(self) -> int:
        return len(self.interventions)

    def __iter__(self):
        return iter(self.interventions)

    def describe(self) -> list[str]:
        return [i.describe() for i in self.interventions]

    def entry_plan(self, method: str, thread: str, occurrence: int) -> MethodEntryPlan:
        plan = MethodEntryPlan()
        for item in self.interventions:
            if isinstance(item, DelayBefore) and item.selector.matches(
                method, thread, occurrence
            ):
                plan.delays += item.ticks
            elif isinstance(item, SerializeMethods):
                if any(s.matches(method, thread, occurrence) for s in item.selectors):
                    plan.locks.append(item.lock_name)
            elif isinstance(item, ForceOrder) and item.then.matches(
                method, thread, occurrence
            ):
                plan.wait_for.append(item.first)
            elif (
                isinstance(item, ForceReturn)
                and item.skip_body
                and item.selector.matches(method, thread, occurrence)
            ):
                plan.force_return = item
        # Deterministic lock order prevents deadlocks among injected locks.
        plan.locks = sorted(set(plan.locks))
        return plan

    def exit_plan(self, method: str, thread: str, occurrence: int) -> MethodExitPlan:
        plan = MethodExitPlan()
        for item in self.interventions:
            if isinstance(item, DelayReturn) and item.selector.matches(
                method, thread, occurrence
            ):
                plan.delays += item.ticks
            elif isinstance(item, SerializeMethods):
                if any(s.matches(method, thread, occurrence) for s in item.selectors):
                    plan.locks.append(item.lock_name)
            elif (
                isinstance(item, ForceReturn)
                and not item.skip_body
                and item.selector.matches(method, thread, occurrence)
            ):
                plan.force_return = item
            elif isinstance(item, CatchException) and item.selector.matches(
                method, thread, occurrence
            ):
                plan.catch = item
        plan.locks = sorted(set(plan.locks), reverse=True)
        return plan
