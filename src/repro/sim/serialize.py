"""Trace (de)serialization: JSON export/import of execution traces.

The paper's pipeline separates online instrumentation from offline
predicate extraction (Appendix A) — traces are collected once, shipped,
and analyzed later, possibly with predicates designed after the fact.
This module makes that workflow concrete: traces round-trip through a
stable JSON schema, and the imported form supports everything the
extraction layer needs (``method_executions``, ``lookup``, failure
metadata), so a corpus can be debugged without re-running the program.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional

from .tracing import (
    Access,
    AccessType,
    ExecutionTrace,
    FailureInfo,
    MethodExecution,
    MethodKey,
)

SCHEMA_VERSION = 1


def trace_to_dict(trace: ExecutionTrace) -> dict:
    """Serialize a trace to plain JSON-compatible data."""
    return {
        "schema": SCHEMA_VERSION,
        "program": trace.program_name,
        "seed": trace.seed,
        "end_time": trace.end_time,
        "failure": (
            None
            if trace.failure is None
            else {
                "mode": trace.failure.mode,
                "exception": trace.failure.exception,
                "method": trace.failure.method,
                "thread": trace.failure.thread,
                "time": trace.failure.time,
            }
        ),
        "calls": [
            {
                "call_id": m.call_id,
                "method": m.method,
                "thread": m.thread,
                "occurrence": m.occurrence,
                "start_time": m.start_time,
                "end_time": m.end_time,
                "start_lamport": m.start_lamport,
                "end_lamport": m.end_lamport,
                "parent_call_id": m.parent_call_id,
                "return_value": _jsonable(m.return_value),
                "exception": m.exception,
                "body_skipped": m.body_skipped,
                "accesses": [
                    {
                        "obj": a.obj,
                        "type": a.access_type.value,
                        "time": a.time,
                        "lamport": a.lamport,
                        "locks": sorted(a.locks_held),
                    }
                    for a in m.accesses
                ],
            }
            for m in trace.method_executions()
        ],
    }


def trace_to_json(trace: ExecutionTrace, indent: Optional[int] = None) -> str:
    return json.dumps(trace_to_dict(trace), indent=indent, sort_keys=True)


# -- content addressing ------------------------------------------------------
#
# One fingerprint scheme for the whole repo: the trace-corpus store, the
# eval-matrix memo keys, and the intervention outcome cache all derive
# identities from the same canonical-JSON digest, so "same content" means
# the same thing at every layer.

#: Hex digest length: 64 bits of SHA-256, plenty below corpus scales where
#: birthday collisions matter, short enough to be a filename and a log line.
DIGEST_CHARS = 16


def canonical_json(payload: object) -> str:
    """Deterministic JSON text: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def stable_digest(payload: object) -> str:
    """Stable hex fingerprint of JSON-compatible data."""
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()[:DIGEST_CHARS]


def trace_fingerprint(trace: ExecutionTrace) -> str:
    """Content address of a trace: digest of its serialized form.

    Two executions with identical observable behaviour (same calls,
    timings, accesses, failure) collide by design — that is the dedup
    the corpus store wants.
    """
    return stable_digest(trace_to_dict(trace))


class ImportedTrace:
    """A deserialized trace, API-compatible with :class:`ExecutionTrace`
    for everything the core pipeline reads."""

    def __init__(
        self,
        program_name: str,
        seed: int,
        end_time: int,
        failure: Optional[FailureInfo],
        calls: list[MethodExecution],
        fingerprint: Optional[str] = None,
    ) -> None:
        self.program_name = program_name
        self.seed = seed
        self.end_time = end_time
        self.failure = failure
        #: Content address when loaded from a corpus store (else ``None``).
        self.fingerprint = fingerprint
        self._calls = sorted(calls, key=lambda m: (m.start_time, m.call_id))
        self._by_key = {m.key: m for m in self._calls}
        self._by_method: dict[str, list[MethodExecution]] = {}
        for m in self._calls:
            self._by_method.setdefault(m.method, []).append(m)

    @property
    def failed(self) -> bool:
        return self.failure is not None

    def method_executions(self) -> list[MethodExecution]:
        return list(self._calls)

    def executions_of(self, method: str):
        return iter(self._by_method.get(method, ()))

    def executions_by_key(self):
        """Calls keyed by :class:`MethodKey` — the imported counterpart
        of :meth:`ExecutionTrace.executions_by_key` (read-only)."""
        return self._by_key

    def lookup(self, key: MethodKey) -> Optional[MethodExecution]:
        return self._by_key.get(key)

    def accesses(self):
        for m in self._calls:
            yield from m.accesses

    def objects_accessed(self) -> set[str]:
        return {a.obj for a in self.accesses()}


def trace_from_dict(
    payload: dict, fingerprint: Optional[str] = None
) -> ImportedTrace:
    """Rebuild a trace from :func:`trace_to_dict` output."""
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema {payload.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    failure = None
    if payload["failure"] is not None:
        f = payload["failure"]
        failure = FailureInfo(
            mode=f["mode"],
            exception=f["exception"],
            method=f["method"],
            thread=f["thread"],
            time=f["time"],
        )
    calls = []
    for c in payload["calls"]:
        accesses = tuple(
            Access(
                obj=a["obj"],
                access_type=AccessType(a["type"]),
                thread=c["thread"],
                method=c["method"],
                call_id=c["call_id"],
                time=a["time"],
                lamport=a["lamport"],
                locks_held=frozenset(a["locks"]),
            )
            for a in c["accesses"]
        )
        calls.append(
            MethodExecution(
                call_id=c["call_id"],
                method=c["method"],
                thread=c["thread"],
                occurrence=c["occurrence"],
                start_time=c["start_time"],
                end_time=c["end_time"],
                start_lamport=c["start_lamport"],
                end_lamport=c["end_lamport"],
                parent_call_id=c["parent_call_id"],
                return_value=c["return_value"],
                exception=c["exception"],
                accesses=accesses,
                body_skipped=c["body_skipped"],
            )
        )
    return ImportedTrace(
        program_name=payload["program"],
        seed=payload["seed"],
        end_time=payload["end_time"],
        failure=failure,
        calls=calls,
        fingerprint=fingerprint,
    )


def trace_from_json(text: str) -> ImportedTrace:
    return trace_from_dict(json.loads(text))


def _jsonable(value: object) -> object:
    """Return-value coercion: anything non-JSON becomes its repr."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return repr(value)
